//! Bound-guided schedule search with an exact simulator oracle.
//!
//! # Soundness of the front-preserving prune
//!
//! A candidate `c` is skipped only when some *already simulated* point
//! `P` strictly dominates `c`'s analytic lower-bound pair in both
//! objectives: `P.lat < bound_lat(c)` **and** `P.bw < bound_bw(c)`. The
//! bounds are admissible (`bound ≤ cost`, pinned by the
//! `synth-bound-soundness` guideline), so `c`'s true costs satisfy
//! `cost_lat(c) ≥ bound_lat(c) > P.lat` and `cost_bw(c) ≥ bound_bw(c) >
//! P.bw` — `P` strictly dominates `c`, hence `c` cannot sit on the
//! Pareto front. The front of the pruned search therefore equals the
//! front of the unpruned search exactly (the determinism test pins
//! `prune` on/off to bit-identical fronts).
//!
//! Menu candidates are never pruned or beamed: the emitted front always
//! contains the full Table-II sweep, which is what makes the
//! `synth-dominance` guideline (front winner never loses to the menu
//! winner) hold unconditionally.

use crate::pareto::{pareto_front, Front, FrontPoint};
use crate::space::{candidates, Candidate};
use han_colls::stack::Unsupported;
use han_colls::{Coll, MpiStack, TemplateStore};
use han_core::{Han, HanConfig};
use han_machine::{Machine, MachinePreset};
use han_mpi::{execute, ExecOpts, Program};
use han_sim::Time;
use han_tuner::{lower_bound, DeltaSim, LookupTable, SearchSpace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Knobs for [`synthesize`].
#[derive(Debug, Clone, Copy)]
pub struct SynthOpts {
    /// Skip extras whose bound pair is strictly dominated by a simulated
    /// point (front-preserving; see the module docs).
    pub prune: bool,
    /// Serve candidates by delta re-simulation (bit-identical results).
    pub delta: bool,
    /// Worker threads (`None` = available parallelism). The emitted
    /// fronts are bit-identical for every worker count.
    pub workers: Option<usize>,
    /// Beam width over the beyond-menu extras: when a group enumerates
    /// more extras than this, only the `beam` cheapest-bounded survive
    /// (menu candidates are exempt).
    pub beam: usize,
    /// The latency objective probes each schedule at
    /// `min(m, lat_probe)` bytes.
    pub lat_probe: u64,
}

impl Default for SynthOpts {
    fn default() -> Self {
        SynthOpts {
            prune: true,
            delta: true,
            workers: None,
            beam: 96,
            lat_probe: 4096,
        }
    }
}

/// One simulated schedule (kept for the verify guidelines and reports).
#[derive(Debug, Clone)]
pub struct SynthSample {
    pub coll: Coll,
    pub m: u64,
    pub cfg: HanConfig,
    pub menu: bool,
    /// Simulated cost at the latency probe size.
    pub lat: Time,
    /// Simulated cost at the full message size.
    pub bw: Time,
    /// Analytic lower bounds at the two sizes (when the model covers the
    /// collective) — `synth-bound-soundness` checks `bound ≤ cost`.
    pub bound_lat: Option<Time>,
    pub bound_bw: Option<Time>,
}

/// The synthesis outcome across every `(coll, m)` group.
#[derive(Debug)]
pub struct SynthResult {
    pub fronts: Vec<Front>,
    pub samples: Vec<SynthSample>,
    /// Candidates enumerated / simulated / bound-pruned / beam-dropped.
    pub candidates: u64,
    pub simulated: u64,
    pub pruned: u64,
    pub beamed: u64,
    pub skipped: Vec<Unsupported>,
}

impl SynthResult {
    pub fn front(&self, coll: Coll, m: u64) -> Option<&Front> {
        self.fronts.iter().find(|f| f.coll == coll && f.m == m)
    }

    /// Groups whose synthesized winner strictly beats the menu winner.
    pub fn strict_wins(&self) -> usize {
        self.fronts.iter().filter(|f| f.strict_win()).count()
    }

    /// Merge every front winner into a lookup table via
    /// [`LookupTable::upsert`] (never regressing an entry). Returns how
    /// many entries changed.
    pub fn apply_to(&self, table: &mut LookupTable) -> usize {
        let mut changed = 0;
        for f in &self.fronts {
            if let Some(w) = f.winner() {
                if table.upsert(f.coll, f.m, w.cfg, Time::from_ps(w.bw_ps)) {
                    changed += 1;
                }
            }
        }
        changed
    }

    /// A fresh lookup table holding only the synthesized winners.
    pub fn table_for(&self, preset: &MachinePreset) -> LookupTable {
        let mut t = LookupTable::for_topology(&preset.topology);
        self.apply_to(&mut t);
        t
    }
}

/// Simulate one schedule, template-specialized and (optionally) served
/// by delta re-simulation — bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn sim_cost(
    machine: &mut Machine,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
    cfg: HanConfig,
    templates: &TemplateStore,
    scratch: &mut Program,
    delta: Option<&mut DeltaSim>,
) -> Result<Time, Unsupported> {
    let han = Han::with_config(cfg);
    let key = templates.build_into(&han, preset, coll, m, 0, scratch)?;
    let opts = ExecOpts::timing(han.flavor().p2p());
    Ok(match delta {
        Some(ds) => ds.time(machine, scratch, &opts, key),
        None => execute(machine, scratch, &opts).makespan,
    })
}

struct GroupOut {
    samples: Vec<SynthSample>,
    pruned: u64,
    beamed: u64,
    skipped: Vec<Unsupported>,
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    machine: &mut Machine,
    scratch: &mut Program,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
    cands: &[Candidate],
    templates: &TemplateStore,
    mut delta: Option<&mut DeltaSim>,
    opts: &SynthOpts,
) -> GroupOut {
    let lat_m = m.min(opts.lat_probe).max(1);
    let mut out = GroupOut {
        samples: Vec::new(),
        pruned: 0,
        beamed: 0,
        skipped: Vec::new(),
    };
    // Menu candidates in enumeration order, then extras cheapest-bound
    // first (ties broken by index) — the fixed visit order keeps the
    // pruned set, and therefore the whole scan, deterministic.
    let menu_idx: Vec<usize> = cands
        .iter()
        .enumerate()
        .filter(|(_, c)| c.menu)
        .map(|(i, _)| i)
        .collect();
    let mut extras: Vec<(Option<Time>, usize)> = cands
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.menu)
        .map(|(i, c)| (lower_bound(preset, &c.cfg, coll, m), i))
        .collect();
    extras.sort_by_key(|&(b, i)| (b.unwrap_or(Time::ZERO), i));
    if extras.len() > opts.beam {
        out.beamed = (extras.len() - opts.beam) as u64;
        extras.truncate(opts.beam);
    }

    // Simulated (lat, bw) points — the dominance incumbents.
    let mut points: Vec<(Time, Time)> = Vec::new();
    let simulate = |i: usize,
                    bound_bw: Option<Time>,
                    machine: &mut Machine,
                    scratch: &mut Program,
                    delta: Option<&mut DeltaSim>,
                    out: &mut GroupOut,
                    points: &mut Vec<(Time, Time)>| {
        let Candidate { cfg, menu } = cands[i];
        let mut delta = delta;
        let bw = match sim_cost(
            machine,
            preset,
            coll,
            m,
            cfg,
            templates,
            scratch,
            delta.as_deref_mut(),
        ) {
            Ok(t) => t,
            Err(e) => {
                note_skip(&mut out.skipped, e);
                return;
            }
        };
        let lat = if lat_m == m {
            bw
        } else {
            match sim_cost(machine, preset, coll, lat_m, cfg, templates, scratch, delta) {
                Ok(t) => t,
                Err(e) => {
                    note_skip(&mut out.skipped, e);
                    return;
                }
            }
        };
        points.push((lat, bw));
        out.samples.push(SynthSample {
            coll,
            m,
            cfg,
            menu,
            lat,
            bw,
            bound_lat: lower_bound(preset, &cfg, coll, lat_m),
            bound_bw,
        });
    };

    for &i in &menu_idx {
        let b = lower_bound(preset, &cands[i].cfg, coll, m);
        simulate(
            i,
            b,
            machine,
            scratch,
            delta.as_deref_mut(),
            &mut out,
            &mut points,
        );
    }
    for &(bound_bw, i) in &extras {
        if opts.prune {
            let bound_lat = lower_bound(preset, &cands[i].cfg, coll, lat_m);
            if let (Some(bl), Some(bb)) = (bound_lat, bound_bw) {
                if points.iter().any(|&(pl, pb)| pl < bl && pb < bb) {
                    out.pruned += 1;
                    continue;
                }
            }
        }
        simulate(
            i,
            bound_bw,
            machine,
            scratch,
            delta.as_deref_mut(),
            &mut out,
            &mut points,
        );
    }
    out
}

fn note_skip(skipped: &mut Vec<Unsupported>, e: Unsupported) {
    if !skipped.contains(&e) {
        skipped.push(e);
    }
}

/// Synthesize schedules for every `(coll, m)` group of `space`,
/// returning the per-group Pareto fronts plus every simulated sample.
///
/// Parallelism is work-stealing over groups with per-worker simulator
/// state and an index-keyed merge (the [`han_tuner`] sweep pattern), so
/// the result is bit-identical for any worker count, with and without
/// delta re-simulation, and with pruning on or off.
pub fn synthesize(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    opts: SynthOpts,
) -> SynthResult {
    let mut groups: Vec<(Coll, u64, Vec<Candidate>)> = Vec::new();
    for &coll in colls {
        for &m in &space.msg_sizes {
            groups.push((coll, m, candidates(space, preset, coll, m)));
        }
    }
    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        })
        .min(groups.len().max(1))
        .max(1);

    let templates = TemplateStore::new();
    let delta_bases = DeltaSim::shared_bases();
    let next = AtomicUsize::new(0);
    let mut outcomes: Vec<GroupOut> = Vec::with_capacity(groups.len());
    std::thread::scope(|s| {
        let groups = &groups;
        let next = &next;
        let templates = &templates;
        let delta_bases = &delta_bases;
        let opts = &opts;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut machine = Machine::from_preset(preset);
                    let mut scratch = Program::default();
                    let mut ds = opts
                        .delta
                        .then(|| DeltaSim::with_shared(delta_bases.clone()));
                    let mut out: Vec<(usize, GroupOut)> = Vec::new();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        if g >= groups.len() {
                            break;
                        }
                        let (coll, m, cands) = &groups[g];
                        out.push((
                            g,
                            run_group(
                                &mut machine,
                                &mut scratch,
                                preset,
                                *coll,
                                *m,
                                cands,
                                templates,
                                ds.as_mut(),
                                opts,
                            ),
                        ));
                    }
                    out
                })
            })
            .collect();
        let mut merged: Vec<Option<GroupOut>> = (0..groups.len()).map(|_| None).collect();
        for h in handles {
            for (g, r) in h.join().unwrap() {
                merged[g] = Some(r);
            }
        }
        outcomes.extend(merged.into_iter().map(|r| r.expect("every group ran")));
    });

    let candidates_total = groups.iter().map(|(_, _, c)| c.len() as u64).sum();
    let mut result = SynthResult {
        fronts: Vec::new(),
        samples: Vec::new(),
        candidates: candidates_total,
        simulated: 0,
        pruned: 0,
        beamed: 0,
        skipped: Vec::new(),
    };
    for ((coll, m, _), group) in groups.iter().zip(outcomes) {
        result.pruned += group.pruned;
        result.beamed += group.beamed;
        result.simulated += group.samples.len() as u64;
        for e in group.skipped {
            note_skip(&mut result.skipped, e);
        }
        if group.samples.is_empty() {
            continue;
        }
        let menu_best_ps = group
            .samples
            .iter()
            .filter(|s| s.menu)
            .map(|s| s.bw.as_ps())
            .min();
        let points: Vec<FrontPoint> = group
            .samples
            .iter()
            .map(|s| FrontPoint {
                cfg: s.cfg,
                menu: s.menu,
                lat_ps: s.lat.as_ps(),
                bw_ps: s.bw.as_ps(),
            })
            .collect();
        result.fronts.push(Front {
            coll: *coll,
            m: *m,
            points: pareto_front(points),
            menu_best_ps,
        });
        result.samples.extend(group.samples);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::default_space;
    use han_machine::mini;

    #[test]
    fn fronts_cover_groups_and_dominate_menu() {
        let preset = mini(2, 2);
        let space = default_space();
        let colls = [Coll::Bcast, Coll::Allreduce];
        let r = synthesize(&preset, &space, &colls, SynthOpts::default());
        assert_eq!(r.fronts.len(), colls.len() * space.msg_sizes.len());
        for f in &r.fronts {
            assert!(!f.points.is_empty());
            let w = f.winner().unwrap();
            let mb = f.menu_best_ps.expect("menu simulated");
            assert!(w.bw_ps <= mb, "front winner lost to the menu at {}", f.m);
            // Front is sorted and strictly improving in bw.
            for pair in f.points.windows(2) {
                assert!(pair[0].lat_ps <= pair[1].lat_ps);
                assert!(pair[0].bw_ps > pair[1].bw_ps);
            }
        }
        assert!(r.simulated > 0);
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn winners_feed_lookup_tables() {
        let preset = mini(2, 2);
        let space = default_space();
        let r = synthesize(&preset, &space, &[Coll::Bcast], SynthOpts::default());
        let t = r.table_for(&preset);
        assert_eq!(t.entries.len(), r.fronts.len());
        for f in &r.fronts {
            let e = t.get(Coll::Bcast, f.m).unwrap();
            assert_eq!(e.cfg, f.winner().unwrap().cfg);
            assert_eq!(e.cost_ps, f.winner().unwrap().bw_ps);
        }
        // Re-applying is a fixpoint (upsert never regresses).
        let mut t2 = t.clone();
        assert_eq!(r.apply_to(&mut t2), 0);
    }

    #[test]
    fn beam_drops_extras_never_menu() {
        let preset = mini(2, 2);
        let space = default_space();
        let tight = SynthOpts {
            beam: 2,
            ..SynthOpts::default()
        };
        let r = synthesize(&preset, &space, &[Coll::Allreduce], tight);
        assert!(r.beamed > 0, "tight beam must drop extras");
        for f in &r.fronts {
            assert!(f.menu_best_ps.is_some(), "menu always simulated");
        }
    }
}
