//! Candidate enumeration: the Table-II menu plus the beyond-menu axes.

use han_colls::{Coll, InterAlg, InterModule};
use han_core::HanConfig;
use han_machine::MachinePreset;
use han_tuner::SearchSpace;

/// Segment/sub-segment sizes below this are pure overhead on the wire
/// model — synthesis never emits them.
pub const MIN_FS: u64 = 1024;

/// One synthesis candidate: a buildable configuration plus whether the
/// Table-II menu already enumerates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    pub cfg: HanConfig,
    pub menu: bool,
}

/// The reduced search space synthesis defaults to (tests, `repro synth`
/// smoke): three message sizes spanning latency- to bandwidth-bound,
/// two segment sizes, the full algorithm cross.
pub fn default_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![16 * 1024, 256 * 1024, 2 << 20],
        seg_sizes: vec![32 * 1024, 256 * 1024],
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: han_colls::IntraModule::ALL.to_vec(),
    }
}

/// Enumerate every candidate for one `(coll, m)` group: the unpruned
/// Table-II menu first (in menu order), then the beyond-menu extras,
/// deduplicated with the first occurrence winning (so a derived config
/// that collapses onto a menu entry keeps its `menu` flag).
///
/// Beyond-menu axes, each derived from a menu entry:
///
/// 1. decoupled `iralg != ibalg` for reductions (broadcast ignores
///    `iralg`, so splitting it there would only duplicate costs);
/// 2. explicit wire sub-segmentation `ibs = fs/2, fs/4` (and matching
///    `irs` for reductions), floored at [`MIN_FS`];
/// 3. segment routing for ADAPT broadcast phases with ≥ 2 segments:
///    primary window `pri ∈ {4, 6}` of the 8-segment route period, every
///    alternate tree shape (`Reduce` has no ib phase, so it is excluded);
/// 4. non-power-of-two segment sizes: exact k-way splits `⌈m/k⌉` for
///    `k ∈ {3, 5}`, attached to every max-`fs` menu entry.
pub fn candidates(
    space: &SearchSpace,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
) -> Vec<Candidate> {
    let menu = space.configs_for(m, &preset.topology, false);
    let mut out: Vec<Candidate> = menu
        .iter()
        .map(|&cfg| Candidate { cfg, menu: true })
        .collect();
    let reduces = matches!(coll, Coll::Allreduce | Coll::Reduce);
    let push = |out: &mut Vec<Candidate>, cfg: HanConfig| {
        if !out.iter().any(|c| c.cfg == cfg) {
            out.push(Candidate { cfg, menu: false });
        }
    };
    let base_list = out.clone();
    for c in &base_list {
        let base = c.cfg;
        // Axis 1: decoupled reduce tree.
        if reduces && base.imod == InterModule::Adapt {
            for alg in InterAlg::ALL {
                if alg != base.iralg {
                    let mut d = base;
                    d.iralg = alg;
                    push(&mut out, d);
                }
            }
        }
        // Axis 2: explicit wire sub-segmentation.
        for div in [2u64, 4] {
            let sub = base.fs / div;
            if sub >= MIN_FS {
                let mut d = base;
                d.ibs = Some(sub);
                if reduces {
                    d.irs = Some(sub);
                }
                push(&mut out, d);
            }
        }
        // Axis 3: segment routing (ib phase only — Reduce has none).
        if base.imod == InterModule::Adapt && coll != Coll::Reduce && base.segments(m) >= 2 {
            for pri in [4u8, 6] {
                for alt in InterAlg::ALL {
                    if alt != base.ibalg {
                        push(&mut out, base.with_route(pri, alt));
                    }
                }
            }
        }
    }
    // Axis 4: non-pow2 exact k-way splits, one per max-fs menu entry (the
    // max-fs slice carries exactly one entry per algorithm combination).
    let max_fs = menu.iter().map(|c| c.fs).max().unwrap_or(0);
    for k in [3u64, 5] {
        let fs = m.div_ceil(k);
        if fs < MIN_FS {
            continue;
        }
        for c in &base_list {
            if c.cfg.fs == max_fs {
                let mut d = c.cfg;
                d.fs = fs;
                push(&mut out, d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    #[test]
    fn menu_prefix_is_preserved() {
        let space = default_space();
        let preset = mini(4, 4);
        let m = 2 << 20;
        let menu = space.configs_for(m, &preset.topology, false);
        let cands = candidates(&space, &preset, Coll::Bcast, m);
        assert!(cands.len() > menu.len(), "synthesis must extend the menu");
        for (c, cfg) in cands.iter().zip(&menu) {
            assert!(c.menu);
            assert_eq!(c.cfg, *cfg);
        }
        // Everything after the menu prefix is genuinely new.
        for c in &cands[menu.len()..] {
            assert!(!c.menu);
            assert!(!menu.contains(&c.cfg));
        }
    }

    #[test]
    fn axes_respect_collective_shape() {
        let space = default_space();
        let preset = mini(4, 4);
        let m = 2 << 20;
        let bcast = candidates(&space, &preset, Coll::Bcast, m);
        // Broadcast ignores iralg: no decoupled-tree candidates.
        assert!(bcast
            .iter()
            .filter(|c| !c.menu && c.cfg.route.is_none())
            .all(|c| c.cfg.iralg == c.cfg.ibalg));
        // But it does route.
        assert!(bcast.iter().any(|c| c.cfg.route.is_some()));
        // Reduce has no ib phase: no routed candidates, but decoupled
        // trees appear.
        let reduce = candidates(&space, &preset, Coll::Reduce, m);
        assert!(reduce.iter().all(|c| c.cfg.route.is_none()));
        assert!(reduce.iter().any(|c| c.cfg.iralg != c.cfg.ibalg));
        // Non-pow2 splits appear for every collective.
        assert!(reduce.iter().any(|c| !c.cfg.fs.is_power_of_two()));
    }

    #[test]
    fn no_duplicates_and_floors_hold() {
        let space = default_space();
        let preset = mini(2, 2);
        for coll in [Coll::Bcast, Coll::Allreduce, Coll::Reduce] {
            for &m in &space.msg_sizes {
                let cands = candidates(&space, &preset, coll, m);
                for (i, a) in cands.iter().enumerate() {
                    assert!(a.cfg.ibs.map_or(true, |s| s >= MIN_FS));
                    assert!(a.cfg.fs >= MIN_FS || a.cfg.fs == m.min(a.cfg.fs));
                    for b in &cands[i + 1..] {
                        assert_ne!(a.cfg, b.cfg, "duplicate candidate at m={m}");
                    }
                }
            }
        }
    }
}
