//! Schedule synthesis beyond the Table-II menu.
//!
//! The autotuner ([`han_tuner`]) picks the best entry of a *fixed* menu:
//! the Table-II cross product of segment sizes and (submodule, algorithm)
//! pairs. SCCL-style synthesis searches the schedule space directly — it
//! composes schedules the menu never enumerates and keeps every point on
//! the latency/bandwidth Pareto frontier, not just the single
//! bandwidth-optimal winner.
//!
//! This crate searches three axes the menu ties together:
//!
//! * **Decoupled reduce/bcast trees** — the menu forces `iralg == ibalg`;
//!   synthesis splits them (a reduction can gather down a binomial tree
//!   and broadcast back down a chain).
//! * **Explicit sub-segmentation** — the menu leaves `ibs`/`irs` to the
//!   stack default; synthesis sweeps explicit wire sub-segment sizes.
//! * **Segment routing** ([`han_core::SegRoute`]) — a periodic split of
//!   the inter-node broadcast traffic across *two* tree shapes, so deep
//!   segments ride a pipeline-friendly chain while the head of the
//!   message takes the low-latency binomial tree.
//!
//! Plus non-power-of-two segment sizes (exact k-way splits of the
//! message), which the pow-2 menu cannot express.
//!
//! The search is branch-and-bound with the [`han_tuner::bound`] analytic
//! lower bound as an admissible heuristic and the delta-capable simulator
//! as the exact oracle; when the beyond-menu space outgrows
//! [`SynthOpts::beam`] it degrades to beam search over the
//! cheapest-bounded candidates (menu candidates are *always* simulated,
//! so the emitted front can never lose to the menu). See
//! [`search::synthesize`] for the pruning-soundness argument.
//!
//! Every emitted schedule is expected to pass the full-payload
//! correctness oracle ([`oracle::verify_schedule`]) and the `han-verify`
//! guideline wall; `repro synth` wires both gates.

pub mod oracle;
pub mod pareto;
pub mod search;
pub mod space;

pub use oracle::verify_schedule;
pub use pareto::{pareto_front, Front, FrontPoint};
pub use search::{synthesize, SynthOpts, SynthResult, SynthSample};
pub use space::{candidates, default_space, Candidate};
