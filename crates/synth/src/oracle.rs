//! Full-payload correctness oracle for synthesized schedules.
//!
//! Every schedule synthesis emits must move *bytes*, not just events: the
//! oracle executes the schedule in data mode ([`ExecOpts::with_data`]) on
//! deterministic payloads and compares every rank's buffer byte-for-byte
//! against a naive reference (the root's buffer for broadcast, the
//! elementwise sum for reductions).
//!
//! Reduction payloads are small-integer-valued `f32`s (every value and
//! every partial sum well under 2^24), so floating-point addition is
//! exact and order-independent — a byte-identical comparison is valid
//! for any reduction tree shape.

use han_colls::{BuildCtx, Coll, Frontier, MpiStack};
use han_core::{Han, HanConfig};
use han_machine::{Machine, MachinePreset};
use han_mpi::{execute_seeded, Comm, DataType, ExecOpts, ProgramBuilder, ReduceOp};

/// Deterministic per-rank payload: small-integer-valued f32 elements.
fn reduce_payload(rank: usize, nelem: usize) -> Vec<u8> {
    (0..nelem)
        .flat_map(|j| (((rank * 13 + j * 7) % 29) as f32).to_le_bytes())
        .collect()
}

/// Deterministic broadcast payload.
fn bcast_payload(bytes: u64) -> Vec<u8> {
    (0..bytes)
        .map(|i| (i.wrapping_mul(131).wrapping_add(17) % 251) as u8)
        .collect()
}

/// Execute `cfg`'s schedule for `coll` at `m` bytes with real data and
/// check every delivered buffer against the naive reference. `Ok(())`
/// means byte-identical delivery on every rank.
pub fn verify_schedule(
    preset: &MachinePreset,
    cfg: &HanConfig,
    coll: Coll,
    m: u64,
    root: usize,
) -> Result<(), String> {
    let han = Han::with_config(*cfg);
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    let deps = Frontier::empty(n);
    let mut cx = BuildCtx::new(&mut b, preset);
    let bufs = cx.b.alloc_all(m);
    match coll {
        Coll::Bcast => {
            han.bcast(&mut cx, &comm, root, &bufs, &deps);
        }
        Coll::Allreduce => {
            han.allreduce(
                &mut cx,
                &comm,
                &bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &deps,
            );
        }
        Coll::Reduce => {
            han.reduce(
                &mut cx,
                &comm,
                root,
                &bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &deps,
            )
            .map_err(|e| format!("{cfg}: reduce unsupported: {e:?}"))?;
        }
        other => return Err(format!("oracle does not model {}", other.name())),
    }
    let prog = b.build();
    let mut machine = Machine::from_preset(preset);
    let opts = ExecOpts::with_data(han.flavor().p2p());

    match coll {
        Coll::Bcast => {
            let data = bcast_payload(m);
            let root_buf = bufs[root];
            let (_, mem) = execute_seeded(&mut machine, &prog, &opts, |mm| {
                mm.write(root, root_buf, &data)
            });
            for (r, buf) in bufs.iter().enumerate() {
                if mem.read(r, *buf) != data.as_slice() {
                    return Err(format!(
                        "{cfg}: bcast m={m} root={root}: rank {r} buffer differs from root payload"
                    ));
                }
            }
        }
        _ => {
            if m % 4 != 0 {
                return Err(format!(
                    "reduction payload must be 4-byte aligned, got m={m}"
                ));
            }
            let nelem = (m / 4) as usize;
            let bufs2 = bufs.clone();
            let (_, mem) = execute_seeded(&mut machine, &prog, &opts, |mm| {
                for (r, buf) in bufs2.iter().enumerate() {
                    mm.write(r, *buf, &reduce_payload(r, nelem));
                }
            });
            let expect: Vec<u8> = (0..nelem)
                .flat_map(|j| {
                    let s: f32 = (0..n).map(|r| ((r * 13 + j * 7) % 29) as f32).sum();
                    s.to_le_bytes()
                })
                .collect();
            let ranks: Vec<usize> = if coll == Coll::Allreduce {
                (0..n).collect()
            } else {
                vec![root]
            };
            for r in ranks {
                if mem.read(r, bufs[r]) != expect.as_slice() {
                    return Err(format!(
                        "{cfg}: {} m={m}: rank {r} buffer differs from elementwise sum",
                        coll.name()
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    #[test]
    fn accepts_known_good_schedules() {
        let preset = mini(3, 2);
        for coll in [Coll::Bcast, Coll::Allreduce, Coll::Reduce] {
            verify_schedule(
                &preset,
                &HanConfig::default().with_fs(4096),
                coll,
                16 * 1024,
                0,
            )
            .unwrap();
        }
        // Routed + sub-segmented broadcast.
        let routed = HanConfig::default()
            .with_fs(2048)
            .with_route(4, han_colls::InterAlg::Chain);
        verify_schedule(&preset, &routed, Coll::Bcast, 16 * 1024, 3).unwrap();
    }

    #[test]
    fn rejects_unmodeled_collectives_and_misaligned_payloads() {
        let preset = mini(2, 2);
        let cfg = HanConfig::default();
        assert!(verify_schedule(&preset, &cfg, Coll::Barrier, 1024, 0).is_err());
        assert!(verify_schedule(&preset, &cfg, Coll::Allreduce, 1022, 0).is_err());
    }
}
