//! Pareto fronts over the (latency, bandwidth) objective pair.

use han_colls::Coll;
use han_core::HanConfig;

/// One nondominated schedule: its simulated cost at the latency probe
/// size (`lat_ps`) and at the full message size (`bw_ps`), both in
/// picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontPoint {
    pub cfg: HanConfig,
    /// Whether the Table-II menu already enumerates this schedule.
    pub menu: bool,
    pub lat_ps: u64,
    pub bw_ps: u64,
}

/// The Pareto front for one `(coll, m)` group, points sorted by
/// ascending latency (and therefore strictly descending bandwidth cost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Front {
    pub coll: Coll,
    pub m: u64,
    pub points: Vec<FrontPoint>,
    /// Best bandwidth cost among the *menu* candidates of this group
    /// (`None` when every menu candidate was unsupported) — the baseline
    /// the synthesized winner is measured against.
    pub menu_best_ps: Option<u64>,
}

impl Front {
    /// The bandwidth-optimal point — the entry a tuned lookup table
    /// serves for this `(coll, m)`.
    pub fn winner(&self) -> Option<&FrontPoint> {
        self.points.last()
    }

    /// Does the synthesized winner strictly beat the best menu schedule
    /// at the full message size?
    pub fn strict_win(&self) -> bool {
        match (self.winner(), self.menu_best_ps) {
            (Some(w), Some(mb)) => !w.menu && w.bw_ps < mb,
            _ => false,
        }
    }
}

/// Reduce a point cloud to its nondominated subset.
///
/// Points are stably sorted by `(lat_ps, bw_ps)` and swept keeping each
/// point whose bandwidth cost strictly improves on everything kept so
/// far; duplicates (identical cost pairs) collapse onto the first
/// occurrence in input order, so the front is deterministic under any
/// permutation-free input ordering.
pub fn pareto_front(mut points: Vec<FrontPoint>) -> Vec<FrontPoint> {
    points.sort_by_key(|p| (p.lat_ps, p.bw_ps));
    let mut front: Vec<FrontPoint> = Vec::new();
    for p in points {
        match front.last() {
            Some(last) if p.bw_ps >= last.bw_ps => {}
            _ => front.push(p),
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: u64, bw: u64) -> FrontPoint {
        FrontPoint {
            cfg: HanConfig::default(),
            menu: false,
            lat_ps: lat,
            bw_ps: bw,
        }
    }

    #[test]
    fn front_is_nondominated_and_sorted() {
        let f = pareto_front(vec![pt(5, 5), pt(1, 10), pt(3, 7), pt(2, 12), pt(4, 7)]);
        let pairs: Vec<_> = f.iter().map(|p| (p.lat_ps, p.bw_ps)).collect();
        // (2,12) dominated by (1,10); (4,7) dominated by (3,7).
        assert_eq!(pairs, vec![(1, 10), (3, 7), (5, 5)]);
    }

    #[test]
    fn duplicates_collapse_to_first() {
        let mut a = pt(1, 10);
        a.menu = true;
        let f = pareto_front(vec![a, pt(1, 10)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].menu, "first occurrence wins ties");
    }

    #[test]
    fn single_point_front() {
        let f = pareto_front(vec![pt(7, 7)]);
        assert_eq!(f.len(), 1);
        assert!(pareto_front(Vec::new()).is_empty());
    }
}
