//! Determinism wall: the emitted Pareto fronts are bit-identical across
//! worker counts, with and without delta re-simulation, and with the
//! front-preserving prune on or off.

use han_colls::{Coll, InterAlg, InterModule, IntraModule};
use han_machine::{mini, mini3, MachinePreset};
use han_synth::{synthesize, SynthOpts, SynthResult};
use han_tuner::SearchSpace;

fn space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![16 * 1024, 256 * 1024],
        seg_sizes: vec![16 * 1024, 128 * 1024],
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: vec![IntraModule::Sm, IntraModule::Solo],
    }
}

const COLLS: [Coll; 3] = [Coll::Bcast, Coll::Allreduce, Coll::Reduce];

fn run(preset: &MachinePreset, opts: SynthOpts) -> SynthResult {
    synthesize(preset, &space(), &COLLS, opts)
}

fn assert_same_fronts(a: &SynthResult, b: &SynthResult, what: &str) {
    assert_eq!(a.fronts.len(), b.fronts.len(), "{what}: front count");
    for (fa, fb) in a.fronts.iter().zip(&b.fronts) {
        assert_eq!(fa, fb, "{what}: front for ({:?}, {})", fa.coll, fa.m);
    }
}

#[test]
fn fronts_are_identical_across_worker_counts() {
    for preset in [mini(2, 2), mini3(2, 2, 2)] {
        let one = run(
            &preset,
            SynthOpts {
                workers: Some(1),
                ..SynthOpts::default()
            },
        );
        let many = run(
            &preset,
            SynthOpts {
                workers: Some(4),
                ..SynthOpts::default()
            },
        );
        assert_same_fronts(&one, &many, "1 vs 4 workers");
        // The scan itself is deterministic too, not just the front.
        assert_eq!(one.simulated, many.simulated);
        assert_eq!(one.pruned, many.pruned);
        assert_eq!(one.samples.len(), many.samples.len());
        for (sa, sb) in one.samples.iter().zip(&many.samples) {
            assert_eq!((sa.cfg, sa.lat, sa.bw), (sb.cfg, sb.lat, sb.bw));
        }
    }
}

#[test]
fn delta_resimulation_is_bit_identical() {
    let preset = mini(2, 2);
    let with = run(
        &preset,
        SynthOpts {
            workers: Some(1),
            delta: true,
            ..SynthOpts::default()
        },
    );
    let without = run(
        &preset,
        SynthOpts {
            workers: Some(1),
            delta: false,
            ..SynthOpts::default()
        },
    );
    assert_same_fronts(&with, &without, "delta vs no-delta");
    for (sa, sb) in with.samples.iter().zip(&without.samples) {
        assert_eq!((sa.lat, sa.bw), (sb.lat, sb.bw), "cost for {}", sa.cfg);
    }
}

#[test]
fn pruning_preserves_the_front_exactly() {
    for preset in [mini(2, 2), mini3(2, 2, 2)] {
        let pruned = run(
            &preset,
            SynthOpts {
                workers: Some(1),
                prune: true,
                ..SynthOpts::default()
            },
        );
        let full = run(
            &preset,
            SynthOpts {
                workers: Some(1),
                prune: false,
                ..SynthOpts::default()
            },
        );
        // The pruned scan may simulate fewer candidates…
        assert!(pruned.simulated <= full.simulated);
        // …but the emitted fronts and winners are exactly the same.
        assert_same_fronts(&pruned, &full, "prune vs full");
        assert_eq!(pruned.strict_wins(), full.strict_wins());
    }
}
