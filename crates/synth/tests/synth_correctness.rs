//! Correctness wall: every schedule synthesis emits must deliver exact
//! bytes in full-data execution, on two-level, three-level, and
//! heterogeneous (dgx-like) machines.

use han_colls::{Coll, InterAlg, InterModule, IntraModule};
use han_core::HanConfig;
use han_machine::{dgx_like, mini, mini3};
use han_synth::{candidates, synthesize, verify_schedule, SynthOpts};
use han_tuner::SearchSpace;
use proptest::prelude::*;

fn small_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![4 * 1024, 64 * 1024, 512 * 1024],
        seg_sizes: vec![8 * 1024, 64 * 1024],
        inter: vec![
            (InterModule::Libnbc, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Binomial),
            (InterModule::Adapt, InterAlg::Chain),
        ],
        intra: vec![IntraModule::Sm, IntraModule::Solo],
    }
}

/// Every point of every emitted Pareto front re-executes byte-exactly on
/// random-free full payloads (the `repro synth` gate, in miniature).
#[test]
fn emitted_fronts_pass_full_payload_oracle() {
    let presets = [mini(2, 2), mini3(2, 2, 2), dgx_like(2, 4)];
    let space = small_space();
    for preset in &presets {
        let r = synthesize(
            preset,
            &space,
            &[Coll::Bcast, Coll::Allreduce],
            SynthOpts::default(),
        );
        assert!(r.skipped.is_empty(), "{:?}", r.skipped);
        let mut checked = 0;
        for f in &r.fronts {
            for p in &f.points {
                verify_schedule(preset, &p.cfg, f.coll, f.m, 0).unwrap();
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}

/// Synthesized winners stay correct for non-leader roots too.
#[test]
fn winners_deliver_from_any_root() {
    let preset = mini3(2, 2, 2);
    let space = small_space();
    let r = synthesize(&preset, &space, &[Coll::Bcast], SynthOpts::default());
    let n = preset.topology.world_size();
    for f in &r.fronts {
        let w = f.winner().unwrap();
        for root in [1, n - 1] {
            verify_schedule(&preset, &w.cfg, Coll::Bcast, f.m, root).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any candidate the synthesis space enumerates — routed,
    /// sub-segmented, decoupled-tree, non-pow2 — delivers byte-exactly,
    /// not just the ones that end up on a front.
    #[test]
    fn any_candidate_is_buildable_and_correct(
        preset_pick in 0usize..3,
        coll_pick in 0usize..3,
        m_exp in 12u32..19,
        pick in 0usize..1000,
        root_seed in 0usize..64,
    ) {
        let preset = match preset_pick {
            0 => mini(2, 2),
            1 => mini3(2, 2, 2),
            _ => dgx_like(2, 4),
        };
        let coll = [Coll::Bcast, Coll::Allreduce, Coll::Reduce][coll_pick];
        let m = 1u64 << m_exp;
        let space = small_space();
        let cands = candidates(&space, &preset, coll, m);
        let cfg = cands[pick % cands.len()].cfg;
        let root = root_seed % preset.topology.world_size();
        verify_schedule(&preset, &cfg, coll, m, root).unwrap();
    }

    /// Routed configurations deliver across the whole (pri, alt) grid on
    /// payloads that exercise both route windows and an uneven tail.
    #[test]
    fn routed_schedules_deliver(
        pri in 0u32..8,
        alt_pick in 0usize..3,
        nseg in 2u64..24,
        tail in 0u64..4096,
    ) {
        let alt = [InterAlg::Chain, InterAlg::Binary, InterAlg::Binomial][alt_pick];
        let fs = 4096u64;
        let m = ((fs * nseg + tail) / 4) * 4; // reduction-aligned
        let cfg = HanConfig {
            fs,
            imod: InterModule::Adapt,
            ..HanConfig::default()
        }
        .with_route(pri as u8, alt);
        let preset = mini(3, 2);
        verify_schedule(&preset, &cfg, Coll::Bcast, m, 0).unwrap();
        verify_schedule(&preset, &cfg, Coll::Allreduce, m, 0).unwrap();
    }
}
