//! Element datatypes and reduction operators.
//!
//! The paper's collectives are value-oblivious except for reductions
//! (`MPI_Allreduce`, `MPI_Reduce`), so this module carries just enough type
//! information to (a) size elements and (b) apply reduction operators to
//! raw byte buffers in data-verification mode.

use std::fmt;

/// Supported element types (subset of MPI's predefined datatypes that the
/// paper's experiments exercise: IMB uses bytes/floats, ASP uses i32
/// distances, Horovod reduces f32 gradients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Uint8,
    Int32,
    Int64,
    Float32,
    Float64,
}

impl DataType {
    #[inline]
    pub fn size(self) -> usize {
        match self {
            DataType::Uint8 => 1,
            DataType::Int32 | DataType::Float32 => 4,
            DataType::Int64 | DataType::Float64 => 8,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Uint8 => "u8",
            DataType::Int32 => "i32",
            DataType::Int64 => "i64",
            DataType::Float32 => "f32",
            DataType::Float64 => "f64",
        };
        f.write_str(s)
    }
}

/// Reduction operators (commutative, as assumed by the paper's
/// `MPI_Allreduce` design in section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Sum,
    Prod,
    Max,
    Min,
}

macro_rules! reduce_typed {
    ($t:ty, $op:expr, $src:expr, $dst:expr) => {{
        let es = std::mem::size_of::<$t>();
        debug_assert_eq!($src.len() % es, 0);
        for (d, s) in $dst.chunks_exact_mut(es).zip($src.chunks_exact(es)) {
            let a = <$t>::from_le_bytes(d.try_into().unwrap());
            let b = <$t>::from_le_bytes(s.try_into().unwrap());
            let r: $t = match $op {
                ReduceOp::Sum => a + b,
                ReduceOp::Prod => a * b,
                ReduceOp::Max => {
                    if b > a {
                        b
                    } else {
                        a
                    }
                }
                ReduceOp::Min => {
                    if b < a {
                        b
                    } else {
                        a
                    }
                }
            };
            d.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// Apply `dst[i] = op(dst[i], src[i])` elementwise over raw little-endian
/// buffers. Lengths must match and be a multiple of the element size.
pub fn apply_reduce(dtype: DataType, op: ReduceOp, src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "reduce operand length mismatch: {} vs {}",
        src.len(),
        dst.len()
    );
    assert_eq!(
        src.len() % dtype.size(),
        0,
        "buffer not a whole number of {dtype} elements"
    );
    match dtype {
        DataType::Uint8 => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = match op {
                    ReduceOp::Sum => d.wrapping_add(*s),
                    ReduceOp::Prod => d.wrapping_mul(*s),
                    ReduceOp::Max => (*d).max(*s),
                    ReduceOp::Min => (*d).min(*s),
                };
            }
        }
        DataType::Int32 => reduce_typed!(i32, op, src, dst),
        DataType::Int64 => reduce_typed!(i64, op, src, dst),
        DataType::Float32 => reduce_typed!(f32, op, src, dst),
        DataType::Float64 => reduce_typed!(f64, op, src, dst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_sizes() {
        assert_eq!(DataType::Uint8.size(), 1);
        assert_eq!(DataType::Int32.size(), 4);
        assert_eq!(DataType::Float64.size(), 8);
    }

    fn as_bytes_i32(xs: &[i32]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn from_bytes_i32(b: &[u8]) -> Vec<i32> {
        b.chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn sum_i32() {
        let src = as_bytes_i32(&[1, -2, 3]);
        let mut dst = as_bytes_i32(&[10, 20, 30]);
        apply_reduce(DataType::Int32, ReduceOp::Sum, &src, &mut dst);
        assert_eq!(from_bytes_i32(&dst), vec![11, 18, 33]);
    }

    #[test]
    fn max_min_prod_i32() {
        let src = as_bytes_i32(&[5, -7, 2]);
        let mut dst = as_bytes_i32(&[3, -2, 4]);
        apply_reduce(DataType::Int32, ReduceOp::Max, &src, &mut dst);
        assert_eq!(from_bytes_i32(&dst), vec![5, -2, 4]);
        let mut dst = as_bytes_i32(&[3, -2, 4]);
        apply_reduce(DataType::Int32, ReduceOp::Min, &src, &mut dst);
        assert_eq!(from_bytes_i32(&dst), vec![3, -7, 2]);
        let mut dst = as_bytes_i32(&[3, -2, 4]);
        apply_reduce(DataType::Int32, ReduceOp::Prod, &src, &mut dst);
        assert_eq!(from_bytes_i32(&dst), vec![15, 14, 8]);
    }

    #[test]
    fn sum_f64() {
        let src: Vec<u8> = [1.5f64, 2.25]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        let mut dst: Vec<u8> = [0.5f64, 0.75]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        apply_reduce(DataType::Float64, ReduceOp::Sum, &src, &mut dst);
        let out: Vec<f64> = dst
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn u8_wrapping_sum() {
        let src = vec![200u8, 1];
        let mut dst = vec![100u8, 2];
        apply_reduce(DataType::Uint8, ReduceOp::Sum, &src, &mut dst);
        assert_eq!(dst, vec![44, 3]); // 300 wraps to 44
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let src = vec![0u8; 4];
        let mut dst = vec![0u8; 8];
        apply_reduce(DataType::Int32, ReduceOp::Sum, &src, &mut dst);
    }

    #[test]
    fn sum_is_commutative_over_buffers() {
        // op(a<-b) then op(a<-c) == op(a<-c) then op(a<-b)
        let b = as_bytes_i32(&[4, 5, 6]);
        let c = as_bytes_i32(&[7, 8, 9]);
        let mut a1 = as_bytes_i32(&[1, 2, 3]);
        let mut a2 = as_bytes_i32(&[1, 2, 3]);
        apply_reduce(DataType::Int32, ReduceOp::Sum, &b, &mut a1);
        apply_reduce(DataType::Int32, ReduceOp::Sum, &c, &mut a1);
        apply_reduce(DataType::Int32, ReduceOp::Sum, &c, &mut a2);
        apply_reduce(DataType::Int32, ReduceOp::Sum, &b, &mut a2);
        assert_eq!(a1, a2);
    }
}
