//! Programs: per-rank DAGs of communication and compute operations.
//!
//! A [`Program`] is the compiled form of a collective (or a HAN *task*
//! benchmark, or a whole application phase): a flat vector of [`Op`]s, each
//! owned by a rank, plus dependency edges. Messages are pre-matched at
//! build time — each send/recv pair shares a [`MsgId`] — so the executor
//! never performs tag matching; this both simplifies the transport and
//! guarantees determinism.

use crate::buffer::BufRange;
use crate::datatype::{DataType, ReduceOp};
use han_sim::Time;

/// Index of an op within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u32);

/// Index of a pre-matched message within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgId(pub u32);

/// What an op does. Resource costs are derived by the executor from the
/// machine parameters; `OpKind` carries only semantics and sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// No-op: join/fork point for dependencies (also used to observe the
    /// completion time of a task).
    Nop,
    /// Occupies the rank's CPU for a fixed duration (module setup costs,
    /// e.g. SOLO window synchronization, SM fragment flags).
    Delay { dur: Time },
    /// Waits without occupying any resource (benchmark-injected skew).
    Sleep { dur: Time },
    /// Local memcpy: CPU at `copy_rate` + node memory bus.
    Copy {
        bytes: u64,
        src: Option<BufRange>,
        dst: Option<BufRange>,
    },
    /// One-sided read of `bytes` from another rank **on the same node**
    /// (shared-memory mapping / XPMEM-style): this rank's CPU + the node
    /// bus. The dependency edge from the producer supplies the
    /// happens-before flag.
    CrossCopy {
        from: u32,
        bytes: u64,
        /// Range in `from`'s address space.
        src: Option<BufRange>,
        /// Range in this rank's address space.
        dst: Option<BufRange>,
    },
    /// Local reduction `dst = op(dst, src)`: CPU at the scalar or AVX rate
    /// + bus for operand traffic.
    Reduce {
        bytes: u64,
        vectorized: bool,
        op: ReduceOp,
        dtype: DataType,
        src: Option<BufRange>,
        dst: Option<BufRange>,
    },
    /// Reduction reading the source operand one-sided from a same-node
    /// peer: `dst = op(dst, remote src)`. Used by the SM/SOLO reduce paths
    /// where the node leader consumes children's contributions in place.
    ReduceFrom {
        from: u32,
        bytes: u64,
        vectorized: bool,
        op: ReduceOp,
        dtype: DataType,
        src: Option<BufRange>,
        dst: Option<BufRange>,
    },
    /// The sending half of message `msg`.
    Send { msg: MsgId },
    /// The receiving half of message `msg`; completes when the payload has
    /// arrived and the receiver CPU has processed it.
    Recv { msg: MsgId },
}

/// A pre-matched point-to-point message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgMeta {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    pub sbuf: Option<BufRange>,
    pub dbuf: Option<BufRange>,
}

/// One operation, owned by `rank`, runnable once all `deps` finished.
#[derive(Debug, PartialEq, Eq)]
pub struct Op {
    pub rank: u32,
    pub kind: OpKind,
    pub deps: Vec<OpId>,
}

// Manual impl so `clone_from` reuses the per-op dependency allocation —
// the dominant cost of cloning a program (one heap block per op). Template
// re-specialization into a scratch program leans on this.
impl Clone for Op {
    fn clone(&self) -> Self {
        Op {
            rank: self.rank,
            kind: self.kind.clone(),
            deps: self.deps.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rank = source.rank;
        self.kind = source.kind.clone();
        self.deps.clone_from(&source.deps);
    }
}

/// A complete program over `nranks` world ranks.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Program {
    pub ops: Vec<Op>,
    pub msgs: Vec<MsgMeta>,
    pub nranks: usize,
    /// Bump-allocated address-space size per rank (for data mode).
    pub mem_size: Vec<u64>,
}

// Field-wise `clone_from` so every vector (including each op's deps, via
// `Op::clone_from`) reuses its existing allocation.
impl Clone for Program {
    fn clone(&self) -> Self {
        Program {
            ops: self.ops.clone(),
            msgs: self.msgs.clone(),
            nranks: self.nranks,
            mem_size: self.mem_size.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.ops.clone_from(&source.ops);
        self.msgs.clone_from(&source.msgs);
        self.nranks = source.nranks;
        self.mem_size.clone_from(&source.mem_size);
    }
}

impl Program {
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.0 as usize]
    }

    pub fn msg(&self, id: MsgId) -> &MsgMeta {
        &self.msgs[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Structural validation; called by the executor in debug builds and by
    /// tests. Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.mem_size.len() != self.nranks {
            return Err("mem_size length != nranks".into());
        }
        let mut send_seen = vec![false; self.msgs.len()];
        let mut recv_seen = vec![false; self.msgs.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if op.rank as usize >= self.nranks {
                return Err(format!("op {i}: rank {} out of range", op.rank));
            }
            for d in &op.deps {
                if d.0 as usize >= self.ops.len() {
                    return Err(format!("op {i}: dep {} out of range", d.0));
                }
                if d.0 as usize >= i {
                    return Err(format!("op {i}: forward/self dep on {}", d.0));
                }
            }
            let check_buf = |r: &Option<BufRange>, rank: u32, what: &str| -> Result<(), String> {
                if let Some(r) = r {
                    if r.end() > self.mem_size[rank as usize] {
                        return Err(format!(
                            "op {i}: {what} range [{}, {}) exceeds rank {rank} memory {}",
                            r.off,
                            r.end(),
                            self.mem_size[rank as usize]
                        ));
                    }
                }
                Ok(())
            };
            match &op.kind {
                OpKind::Copy { src, dst, bytes } => {
                    check_buf(src, op.rank, "src")?;
                    check_buf(dst, op.rank, "dst")?;
                    for r in [src, dst].into_iter().flatten() {
                        if r.len != *bytes {
                            return Err(format!("op {i}: buffer length != bytes"));
                        }
                    }
                }
                OpKind::CrossCopy {
                    from,
                    src,
                    dst,
                    bytes,
                }
                | OpKind::ReduceFrom {
                    from,
                    src,
                    dst,
                    bytes,
                    ..
                } => {
                    if *from as usize >= self.nranks {
                        return Err(format!("op {i}: from rank {from} out of range"));
                    }
                    check_buf(src, *from, "remote src")?;
                    check_buf(dst, op.rank, "dst")?;
                    for r in [src, dst].into_iter().flatten() {
                        if r.len != *bytes {
                            return Err(format!("op {i}: buffer length != bytes"));
                        }
                    }
                }
                OpKind::Reduce {
                    src, dst, bytes, ..
                } => {
                    check_buf(src, op.rank, "src")?;
                    check_buf(dst, op.rank, "dst")?;
                    for r in [src, dst].into_iter().flatten() {
                        if r.len != *bytes {
                            return Err(format!("op {i}: buffer length != bytes"));
                        }
                    }
                }
                OpKind::Send { msg } => {
                    let m = msg.0 as usize;
                    if m >= self.msgs.len() {
                        return Err(format!("op {i}: msg {m} out of range"));
                    }
                    if send_seen[m] {
                        return Err(format!("op {i}: duplicate send for msg {m}"));
                    }
                    send_seen[m] = true;
                    if self.msgs[m].src != op.rank {
                        return Err(format!("op {i}: send rank != msg src"));
                    }
                }
                OpKind::Recv { msg } => {
                    let m = msg.0 as usize;
                    if m >= self.msgs.len() {
                        return Err(format!("op {i}: msg {m} out of range"));
                    }
                    if recv_seen[m] {
                        return Err(format!("op {i}: duplicate recv for msg {m}"));
                    }
                    recv_seen[m] = true;
                    if self.msgs[m].dst != op.rank {
                        return Err(format!("op {i}: recv rank != msg dst"));
                    }
                }
                OpKind::Nop | OpKind::Delay { .. } | OpKind::Sleep { .. } => {}
            }
        }
        for (m, meta) in self.msgs.iter().enumerate() {
            if !send_seen[m] || !recv_seen[m] {
                return Err(format!("msg {m}: missing send or recv op"));
            }
            if meta.src == meta.dst {
                return Err(format!("msg {m}: self-message"));
            }
            if let Some(r) = &meta.sbuf {
                if r.end() > self.mem_size[meta.src as usize] {
                    return Err(format!("msg {m}: sbuf out of range"));
                }
            }
            if let Some(r) = &meta.dbuf {
                if r.end() > self.mem_size[meta.dst as usize] {
                    return Err(format!("msg {m}: dbuf out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_prog(nranks: usize) -> Program {
        Program {
            ops: vec![],
            msgs: vec![],
            nranks,
            mem_size: vec![0; nranks],
        }
    }

    #[test]
    fn empty_program_is_valid() {
        assert!(empty_prog(2).validate().is_ok());
    }

    #[test]
    fn forward_dep_rejected() {
        let mut p = empty_prog(1);
        p.ops.push(Op {
            rank: 0,
            kind: OpKind::Nop,
            deps: vec![OpId(0)],
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn missing_recv_rejected() {
        let mut p = empty_prog(2);
        p.msgs.push(MsgMeta {
            src: 0,
            dst: 1,
            bytes: 8,
            sbuf: None,
            dbuf: None,
        });
        p.ops.push(Op {
            rank: 0,
            kind: OpKind::Send { msg: MsgId(0) },
            deps: vec![],
        });
        assert!(p.validate().unwrap_err().contains("missing send or recv"));
    }

    #[test]
    fn buffer_overflow_rejected() {
        let mut p = empty_prog(1);
        p.mem_size[0] = 4;
        p.ops.push(Op {
            rank: 0,
            kind: OpKind::Copy {
                bytes: 8,
                src: Some(BufRange::new(0, 8)),
                dst: None,
            },
            deps: vec![],
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn self_message_rejected() {
        let mut p = empty_prog(2);
        p.msgs.push(MsgMeta {
            src: 1,
            dst: 1,
            bytes: 8,
            sbuf: None,
            dbuf: None,
        });
        p.ops.push(Op {
            rank: 1,
            kind: OpKind::Send { msg: MsgId(0) },
            deps: vec![],
        });
        p.ops.push(Op {
            rank: 1,
            kind: OpKind::Recv { msg: MsgId(0) },
            deps: vec![],
        });
        assert!(p.validate().unwrap_err().contains("self-message"));
    }
}
