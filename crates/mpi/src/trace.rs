//! Execution tracing: per-op timelines in Chrome trace format.
//!
//! `chrome://tracing` / Perfetto can open the exported JSON, giving the
//! same visual insight into HAN's pipelines that the paper's Fig. 1/5
//! sketches describe — each rank is a "thread", each op a duration event,
//! so `sbib`'s overlapping `ib` and `sb` show up literally side by side.
//!
//! Tracing wraps [`crate::exec::execute`]: it re-derives per-op start
//! times from the dependency-adjusted finish times. Start here means
//! "became ready" (queueing on resources is inside the span), which is
//! the honest picture for pipeline analysis: a span is the time from
//! eligibility to completion.

use crate::exec::{execute, ExecOpts, Report};
use crate::program::{OpKind, Program};
use han_machine::Machine;
use han_sim::Time;
use std::fmt::Write as _;

/// One traced op span.
#[derive(Debug, Clone)]
pub struct Span {
    pub rank: u32,
    pub name: String,
    pub start: Time,
    pub end: Time,
}

/// A complete execution trace.
#[derive(Debug, Clone)]
pub struct Trace {
    pub spans: Vec<Span>,
    pub makespan: Time,
}

fn op_name(prog: &Program, idx: usize) -> String {
    match &prog.ops[idx].kind {
        OpKind::Nop => "join".into(),
        OpKind::Delay { .. } => "overhead".into(),
        OpKind::Sleep { .. } => "sleep".into(),
        OpKind::Copy { bytes, .. } => format!("copy {bytes}B"),
        OpKind::CrossCopy { from, bytes, .. } => format!("pull {bytes}B from r{from}"),
        OpKind::Reduce { bytes, .. } => format!("reduce {bytes}B"),
        OpKind::ReduceFrom { from, bytes, .. } => format!("reduce {bytes}B from r{from}"),
        OpKind::Send { msg } => {
            let m = prog.msg(*msg);
            format!("send {}B -> r{}", m.bytes, m.dst)
        }
        OpKind::Recv { msg } => {
            let m = prog.msg(*msg);
            format!("recv {}B <- r{}", m.bytes, m.src)
        }
    }
}

/// Execute `prog` and build a trace from the report.
pub fn trace_execution(machine: &mut Machine, prog: &Program, opts: &ExecOpts) -> (Report, Trace) {
    let report = execute(machine, prog, opts);
    // Start of op = max over dependencies' finishes (its readiness time);
    // roots start at the rank's start time.
    let mut spans = Vec::with_capacity(prog.ops.len());
    for (i, op) in prog.ops.iter().enumerate() {
        let start = op
            .deps
            .iter()
            .map(|d| report.finish(*d))
            .max()
            .unwrap_or_else(|| {
                opts.start_times
                    .as_ref()
                    .map(|s| s[op.rank as usize])
                    .unwrap_or(Time::ZERO)
            });
        let end = report.finish(crate::program::OpId(i as u32));
        spans.push(Span {
            rank: op.rank,
            name: op_name(prog, i),
            start,
            end: end.max(start),
        });
    }
    let makespan = report.makespan;
    (report, Trace { spans, makespan })
}

impl Trace {
    /// Spans belonging to one rank, in start order.
    pub fn rank_spans(&self, rank: u32) -> Vec<&Span> {
        let mut v: Vec<&Span> = self.spans.iter().filter(|s| s.rank == rank).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Total busy (non-degenerate span) time per rank; a cheap utilization
    /// signal for pipeline debugging. Overlapping spans double-count by
    /// design (concurrent `ib`/`sb` is the interesting case).
    pub fn rank_busy(&self, rank: u32) -> Time {
        self.spans
            .iter()
            .filter(|s| s.rank == rank)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Serialize as a Chrome trace ("traceEvents" array of complete
    /// events; timestamps in microseconds as the format requires).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if s.end == s.start {
                continue; // zero-length joins only add noise
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{:?},\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                s.name,
                s.rank,
                s.start.as_us_f64(),
                (s.end - s.start).as_us_f64()
            );
        }
        out.push_str("]}");
        out
    }

    /// Write the Chrome trace to a file.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use han_machine::{mini, Flavor};

    fn run_traced(b: ProgramBuilder) -> Trace {
        let prog = b.build();
        let mut m = Machine::from_preset(&mini(2, 2));
        let opts = ExecOpts::timing(Flavor::OpenMpi.p2p());
        trace_execution(&mut m, &prog, &opts).1
    }

    #[test]
    fn spans_cover_all_ops_and_are_ordered() {
        let mut b = ProgramBuilder::new(4);
        let a = b.delay(0, Time::from_us(2), &[]);
        b.delay(0, Time::from_us(3), &[a]);
        b.send_recv(0, 2, 4096, None, None, &[a], &[]);
        let trace = run_traced(b);
        assert_eq!(trace.spans.len(), 4);
        let r0 = trace.rank_spans(0);
        assert_eq!(r0.len(), 3);
        // The dependent delay starts exactly when its parent finishes.
        assert_eq!(r0[1].start, r0[0].end);
        assert!(trace.makespan >= r0.last().unwrap().end);
    }

    #[test]
    fn chrome_json_shape() {
        let mut b = ProgramBuilder::new(2);
        b.delay(1, Time::from_us(5), &[]);
        let trace = run_traced(b);
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":1"));
        // Valid JSON (serde parse).
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(v["traceEvents"].as_array().unwrap().len() == 1);
    }

    #[test]
    fn busy_time_accounts_span_durations() {
        let mut b = ProgramBuilder::new(1);
        b.delay(0, Time::from_us(2), &[]);
        b.sleep(0, Time::from_us(7), &[]);
        let trace = run_traced(b);
        assert_eq!(trace.rank_busy(0), Time::from_us(9));
        assert_eq!(trace.rank_busy(99), Time::ZERO);
    }

    #[test]
    fn pipeline_overlap_visible_in_trace() {
        // Two independent sends from different ranks: spans overlap in
        // time, which is what the trace is for.
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 2, 1 << 20, None, None, &[], &[]);
        b.send_recv(1, 3, 1 << 20, None, None, &[], &[]);
        let trace = run_traced(b);
        let s0 = trace.rank_spans(2)[0].clone();
        let s1 = trace.rank_spans(3)[0].clone();
        assert!(s0.start < s1.end && s1.start < s0.end, "spans must overlap");
    }
}
