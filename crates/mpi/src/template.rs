//! Program templates: size-invariant shapes with affine scalar re-stamping.
//!
//! Within one autotuning sweep the same `(config, topology, collective,
//! segment-count)` point is built over and over at different message sizes,
//! yet the resulting [`Program`]s differ only in their *scalars*: byte
//! counts, buffer offsets/lengths and byte-derived delay durations. The op
//! list, dependency edges and message matching — the expensive part of the
//! build — are identical, and every scalar is an **affine function of the
//! message size** `v(m) = v(m₀) + k·(m − m₀)` as long as the build's
//! integer-division decisions (segment counts, sub-segmentation, fragment
//! counts) are pinned by the template key.
//!
//! A [`ProgramTemplate`] is learned from two probe builds at distinct
//! sizes: the shapes are checked for exact structural equality, each
//! scalar's slope is recovered by exact integer division (any remainder
//! rejects the pair as non-affine), and specialization then clones the
//! base program and re-stamps the scalar stream — no tree construction, no
//! per-call hash maps, no frontier bookkeeping. The caller (the template
//! store in `han-colls`) is responsible for keying entries so that builds
//! with different shapes or non-affine scalars never share a template.

use crate::program::{OpKind, Program};

/// Visit every size-dependent scalar of `p` in a fixed deterministic
/// order: per-op scalars (durations, byte counts, buffer ranges) in op
/// order, then per-message scalars, then per-rank memory sizes.
fn for_each_scalar_mut(p: &mut Program, f: &mut impl FnMut(&mut u64)) {
    fn range(r: &mut Option<crate::buffer::BufRange>, f: &mut impl FnMut(&mut u64)) {
        if let Some(r) = r {
            f(&mut r.off);
            f(&mut r.len);
        }
    }
    for op in &mut p.ops {
        match &mut op.kind {
            OpKind::Nop | OpKind::Send { .. } | OpKind::Recv { .. } => {}
            OpKind::Delay { dur } | OpKind::Sleep { dur } => f(&mut dur.0),
            OpKind::Copy { bytes, src, dst }
            | OpKind::CrossCopy {
                bytes, src, dst, ..
            }
            | OpKind::Reduce {
                bytes, src, dst, ..
            }
            | OpKind::ReduceFrom {
                bytes, src, dst, ..
            } => {
                f(bytes);
                range(src, f);
                range(dst, f);
            }
        }
    }
    for m in &mut p.msgs {
        f(&mut m.bytes);
        range(&mut m.sbuf, f);
        range(&mut m.dbuf, f);
    }
    for sz in &mut p.mem_size {
        f(sz);
    }
}

/// The scalar stream of `p` (see `for_each_scalar_mut` for the order).
pub fn collect_scalars(p: &Program) -> Vec<u64> {
    let mut out = Vec::new();
    let mut q = p.clone();
    for_each_scalar_mut(&mut q, &mut |s| out.push(*s));
    out
}

/// A size-invariant program shape plus per-scalar affine coefficients.
#[derive(Debug, Clone)]
pub struct ProgramTemplate {
    base_m: u64,
    base: Program,
    /// `(value at base_m, slope per message byte)` per scalar, in stream
    /// order.
    coeffs: Vec<(u64, i64)>,
}

impl ProgramTemplate {
    /// Learn a template from two probe builds of the same shape at
    /// distinct message sizes.
    ///
    /// Returns `None` when the programs differ structurally (anywhere
    /// outside the scalar stream) or when any scalar is not exactly affine
    /// in the message size — callers must then fall back to cold builds.
    pub fn learn(m1: u64, p1: &Program, m2: u64, p2: &Program) -> Option<ProgramTemplate> {
        if m1 == m2 {
            return None;
        }
        let s1 = collect_scalars(p1);
        let s2 = collect_scalars(p2);
        if s1.len() != s2.len() {
            return None;
        }
        // Overlaying p1's scalars onto p2's shape must reproduce p1
        // exactly: that proves the two builds differ *only* in the scalar
        // stream (ops, deps, ranks, message matching all identical).
        let mut shape_check = p2.clone();
        let mut it = s1.iter();
        for_each_scalar_mut(&mut shape_check, &mut |s| {
            *s = *it.next().expect("scalar streams same length");
        });
        if shape_check != *p1 {
            return None;
        }
        let dm = m2 as i128 - m1 as i128;
        let mut coeffs = Vec::with_capacity(s1.len());
        for (&a, &b) in s1.iter().zip(&s2) {
            let dv = b as i128 - a as i128;
            if dv % dm != 0 {
                return None;
            }
            let slope = i64::try_from(dv / dm).ok()?;
            coeffs.push((a, slope));
        }
        Some(ProgramTemplate {
            base_m: m1,
            base: p1.clone(),
            coeffs,
        })
    }

    /// Re-stamp the template's scalar stream for message size `m`.
    ///
    /// For any `m` whose build shares the template's shape (same template
    /// key), this is bit-identical to a cold build: same ops, same deps,
    /// same scalars — and therefore the same makespan, op finish times and
    /// event count under the deterministic executor.
    pub fn specialize(&self, m: u64) -> Program {
        let mut p = self.base.clone();
        self.restamp(m, &mut p);
        p
    }

    /// [`Self::specialize`] into an existing program, reusing its
    /// allocations (op vector, per-op dependency lists, messages). The
    /// scratch's prior contents are irrelevant; the result is identical to
    /// `specialize(m)`. This is the sweep's hot path: after the first call
    /// a re-specialization performs no heap allocation at all.
    pub fn specialize_into(&self, m: u64, out: &mut Program) {
        out.clone_from(&self.base);
        self.restamp(m, out);
    }

    fn restamp(&self, m: u64, p: &mut Program) {
        let dm = m as i128 - self.base_m as i128;
        let mut it = self.coeffs.iter();
        for_each_scalar_mut(p, &mut |s| {
            let &(base, slope) = it.next().expect("coeff stream matches shape");
            let v = base as i128 + slope as i128 * dm;
            debug_assert!((0..=u64::MAX as i128).contains(&v), "scalar out of range");
            *s = v as u64;
        });
    }

    /// Message size the template was learned at.
    pub fn base_m(&self) -> u64 {
        self.base_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufRange;
    use crate::program::{MsgId, MsgMeta, Op, OpId};
    use han_sim::Time;

    /// A toy affine program: rank 0 copies m bytes then sends them; rank 1
    /// receives; a byte-derived delay of 2m ps follows.
    fn toy(m: u64) -> Program {
        Program {
            ops: vec![
                Op {
                    rank: 0,
                    kind: OpKind::Copy {
                        bytes: m,
                        src: Some(BufRange::new(0, m)),
                        dst: Some(BufRange::new(m, m)),
                    },
                    deps: vec![],
                },
                Op {
                    rank: 0,
                    kind: OpKind::Send { msg: MsgId(0) },
                    deps: vec![OpId(0)],
                },
                Op {
                    rank: 1,
                    kind: OpKind::Recv { msg: MsgId(0) },
                    deps: vec![],
                },
                Op {
                    rank: 1,
                    kind: OpKind::Delay {
                        dur: Time::from_ps(2 * m),
                    },
                    deps: vec![OpId(2)],
                },
            ],
            msgs: vec![MsgMeta {
                src: 0,
                dst: 1,
                bytes: m,
                sbuf: Some(BufRange::new(m, m)),
                dbuf: Some(BufRange::new(0, m)),
            }],
            nranks: 2,
            mem_size: vec![2 * m, m],
        }
    }

    #[test]
    fn learned_template_reproduces_cold_builds() {
        let t = ProgramTemplate::learn(64, &toy(64), 4096, &toy(4096)).expect("affine");
        for m in [64, 100, 4096, 1 << 20] {
            assert_eq!(t.specialize(m), toy(m));
        }
    }

    #[test]
    fn non_affine_scalars_are_rejected() {
        // ceil-style scalar: 7 at m=64 vs 8 at m=65 has slope 1, but
        // m=64 → 7 vs m=192 → 9 gives slope 2/128: not integral.
        let mut a = toy(64);
        let mut b = toy(192);
        if let OpKind::Delay { dur } = &mut a.ops[3].kind {
            *dur = Time::from_ps(7);
        }
        if let OpKind::Delay { dur } = &mut b.ops[3].kind {
            *dur = Time::from_ps(9);
        }
        assert!(ProgramTemplate::learn(64, &a, 192, &b).is_none());
    }

    #[test]
    fn structural_differences_are_rejected() {
        let a = toy(64);
        let mut b = toy(128);
        // Same scalar count, different dependency structure.
        b.ops[3].deps = vec![];
        b.ops[1].deps = vec![OpId(0)];
        assert!(ProgramTemplate::learn(64, &a, 128, &b).is_none());
        // Different op count.
        let mut c = toy(128);
        c.ops.push(Op {
            rank: 0,
            kind: OpKind::Nop,
            deps: vec![],
        });
        assert!(ProgramTemplate::learn(64, &a, 128, &c).is_none());
    }

    #[test]
    fn same_size_probes_are_rejected() {
        let a = toy(64);
        assert!(ProgramTemplate::learn(64, &a, 64, &a).is_none());
    }

    #[test]
    fn scalar_stream_roundtrip() {
        let p = toy(320);
        let s = collect_scalars(&p);
        // Copy: bytes + 2 ranges (5), Delay dur (1), msg: bytes + 2 ranges
        // (5), mem_size (2).
        assert_eq!(s.len(), 13);
        let t = ProgramTemplate::learn(64, &toy(64), 128, &toy(128)).unwrap();
        assert_eq!(collect_scalars(&t.specialize(320)), s);
    }
}
