//! Program construction.
//!
//! The builder is the API collective modules program against: it bump-
//! allocates per-rank buffers, creates ops with dependencies, and creates
//! pre-matched send/recv pairs. Because both halves of every message are
//! created together, there is no tag ambiguity anywhere in the system.

use crate::buffer::BufRange;
use crate::program::{MsgId, MsgMeta, Op, OpId, OpKind, Program};
use han_sim::Time;

/// Incremental builder for a [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    msgs: Vec<MsgMeta>,
    nranks: usize,
    mem_size: Vec<u64>,
}

impl ProgramBuilder {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0);
        ProgramBuilder {
            ops: Vec::new(),
            msgs: Vec::new(),
            nranks,
            mem_size: vec![0; nranks],
        }
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Bump-allocate `bytes` in `rank`'s address space.
    pub fn alloc(&mut self, rank: usize, bytes: u64) -> BufRange {
        let off = self.mem_size[rank];
        self.mem_size[rank] += bytes;
        BufRange::new(off, bytes)
    }

    /// Allocate the same number of bytes on every rank (e.g. the user
    /// buffer of a collective). Offsets may differ across ranks.
    pub fn alloc_all(&mut self, bytes: u64) -> Vec<BufRange> {
        (0..self.nranks).map(|r| self.alloc(r, bytes)).collect()
    }

    /// Add an op owned by `rank`, runnable after `deps`.
    pub fn op(&mut self, rank: usize, kind: OpKind, deps: &[OpId]) -> OpId {
        debug_assert!(rank < self.nranks, "rank {rank} out of range");
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Op {
            rank: rank as u32,
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    pub fn nop(&mut self, rank: usize, deps: &[OpId]) -> OpId {
        self.op(rank, OpKind::Nop, deps)
    }

    pub fn delay(&mut self, rank: usize, dur: Time, deps: &[OpId]) -> OpId {
        self.op(rank, OpKind::Delay { dur }, deps)
    }

    pub fn sleep(&mut self, rank: usize, dur: Time, deps: &[OpId]) -> OpId {
        self.op(rank, OpKind::Sleep { dur }, deps)
    }

    /// Create a matched send/recv pair carrying `bytes` from `src` to `dst`.
    ///
    /// Returns `(send_op, recv_op)`. The send depends on `sdeps` (data must
    /// be ready), the recv on `rdeps` (receive buffer must be free).
    #[allow(clippy::too_many_arguments)]
    pub fn send_recv(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        sbuf: Option<BufRange>,
        dbuf: Option<BufRange>,
        sdeps: &[OpId],
        rdeps: &[OpId],
    ) -> (OpId, OpId) {
        assert_ne!(src, dst, "self-message from rank {src}");
        if let Some(r) = &sbuf {
            debug_assert_eq!(r.len, bytes);
        }
        if let Some(r) = &dbuf {
            debug_assert_eq!(r.len, bytes);
        }
        let msg = MsgId(self.msgs.len() as u32);
        self.msgs.push(MsgMeta {
            src: src as u32,
            dst: dst as u32,
            bytes,
            sbuf,
            dbuf,
        });
        let s = self.op(src, OpKind::Send { msg }, sdeps);
        let r = self.op(dst, OpKind::Recv { msg }, rdeps);
        (s, r)
    }

    /// Join a set of per-rank dependency frontiers into single nops, one
    /// per rank that appears. Useful for task boundaries.
    pub fn join_per_rank(&mut self, deps_by_rank: &[(usize, Vec<OpId>)]) -> Vec<(usize, OpId)> {
        deps_by_rank
            .iter()
            .map(|(rank, deps)| (*rank, self.nop(*rank, deps)))
            .collect()
    }

    pub fn build(self) -> Program {
        let p = Program {
            ops: self.ops,
            msgs: self.msgs,
            nranks: self.nranks,
            mem_size: self.mem_size,
        };
        debug_assert_eq!(p.validate(), Ok(()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_bump_per_rank() {
        let mut b = ProgramBuilder::new(2);
        let a = b.alloc(0, 16);
        let c = b.alloc(0, 8);
        let d = b.alloc(1, 4);
        assert_eq!(a, BufRange::new(0, 16));
        assert_eq!(c, BufRange::new(16, 8));
        assert_eq!(d, BufRange::new(0, 4));
        let p = b.build();
        assert_eq!(p.mem_size, vec![24, 4]);
    }

    #[test]
    fn alloc_all_same_size() {
        let mut b = ProgramBuilder::new(3);
        b.alloc(1, 7); // skew rank 1's offsets
        let bufs = b.alloc_all(10);
        assert_eq!(bufs.len(), 3);
        assert_eq!(bufs[0], BufRange::new(0, 10));
        assert_eq!(bufs[1], BufRange::new(7, 10));
        for r in &bufs {
            assert_eq!(r.len, 10);
        }
    }

    #[test]
    fn send_recv_creates_matched_pair() {
        let mut b = ProgramBuilder::new(2);
        let (s, r) = b.send_recv(0, 1, 64, None, None, &[], &[]);
        let p = b.build();
        assert!(p.validate().is_ok());
        match (&p.op(s).kind, &p.op(r).kind) {
            (OpKind::Send { msg: m1 }, OpKind::Recv { msg: m2 }) => assert_eq!(m1, m2),
            other => panic!("unexpected kinds {other:?}"),
        }
        assert_eq!(p.msgs.len(), 1);
        assert_eq!(p.msg(MsgId(0)).bytes, 64);
    }

    #[test]
    #[should_panic]
    fn self_send_panics() {
        let mut b = ProgramBuilder::new(2);
        b.send_recv(1, 1, 8, None, None, &[], &[]);
    }

    #[test]
    fn dependency_chain_builds_valid_program() {
        let mut b = ProgramBuilder::new(1);
        let a = b.nop(0, &[]);
        let c = b.delay(0, Time::from_ns(5), &[a]);
        let d = b.sleep(0, Time::from_ns(5), &[a, c]);
        let p = b.build();
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.op(d).deps, vec![a, c]);
    }

    #[test]
    fn join_per_rank_creates_nops() {
        let mut b = ProgramBuilder::new(2);
        let a = b.nop(0, &[]);
        let c = b.nop(1, &[]);
        let joins = b.join_per_rank(&[(0, vec![a]), (1, vec![c])]);
        assert_eq!(joins.len(), 2);
        let p = b.build();
        assert_eq!(p.op(joins[0].1).rank, 0);
        assert_eq!(p.op(joins[1].1).rank, 1);
    }
}
