//! # han-mpi — an MPI-like runtime over the simulated machine
//!
//! HAN (the paper) is implemented inside Open MPI and drives existing
//! collective *submodules* through non-blocking operations. This crate is
//! the reproduction's equivalent of that MPI substrate: collective
//! algorithms are compiled into **programs** — per-rank DAGs of operations
//! (sends, receives, shared-memory copies, local reductions) — and a
//! deterministic discrete-event **executor** runs a program against a
//! [`han_machine::Machine`], producing virtual completion times and,
//! optionally, real data movement for correctness checking.
//!
//! The split mirrors how the paper reasons about collectives:
//!
//! * a *task* (paper section III) is simply a subgraph of ops plus the
//!   dependency edges linking it to the previous task — so HAN's pipelining
//!   falls out of DAG construction rather than being special-cased;
//! * the *cost* of a collective is the maximum completion time across
//!   ranks, exactly the IMB/OSU definition the paper adopts;
//! * the transport implements both **eager** and **rendezvous** protocols
//!   with per-library parameters ([`han_machine::P2pParams`]), which is
//!   what produces the Netpipe curves of Fig. 11.
//!
//! Modules:
//!
//! * [`datatype`] — element types and reduction operators (`MPI_Op`).
//! * [`buffer`] — per-rank linear memories and buffer ranges.
//! * [`program`] — ops, messages, and the validated [`program::Program`].
//! * [`builder`] — ergonomic program construction with automatic message
//!   matching (each send/recv pair shares a unique tag by construction).
//! * [`comm`] — communicators, including the `MPI_Comm_split_type`
//!   node-split HAN relies on.
//! * [`template`] — size-invariant program templates: a program's shape is
//!   learned once and re-stamped with affine scalars per message size,
//!   skipping the DAG rebuild on sweep-hot paths.
//! * [`exec`] — the discrete-event executor.

pub mod buffer;
pub mod builder;
pub mod comm;
pub mod datatype;
pub mod exec;
pub mod program;
pub mod template;
pub mod trace;

pub use buffer::{BufRange, Memory};
pub use builder::ProgramBuilder;
pub use comm::Comm;
pub use datatype::{DataType, ReduceOp};
pub use exec::{
    engine_totals, execute, execute_seeded, execute_with_memory, reset_engine_totals, ExecMode,
    ExecOpts, Executor, Recording, Report,
};
pub use program::{Op, OpId, OpKind, Program};
pub use template::ProgramTemplate;
pub use trace::{trace_execution, Span, Trace};
