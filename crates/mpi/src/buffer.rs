//! Per-rank linear memories and buffer ranges.
//!
//! Each rank owns a flat virtual address space. Collective builders
//! allocate ranges out of it (user buffers, shared-memory slots, pipeline
//! scratch) with a bump allocator in [`crate::builder::ProgramBuilder`].
//! Backing bytes are only materialized in data-verification mode; pure
//! timing runs never allocate payloads, which is what makes 4096-rank ×
//! 128 MB experiments feasible.

/// A byte range within one rank's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufRange {
    pub off: u64,
    pub len: u64,
}

impl BufRange {
    pub const EMPTY: BufRange = BufRange { off: 0, len: 0 };

    pub fn new(off: u64, len: u64) -> Self {
        BufRange { off, len }
    }

    #[inline]
    pub fn end(&self) -> u64 {
        self.off + self.len
    }

    /// A sub-range `[start, start+len)` relative to this range.
    ///
    /// Panics if the slice escapes the parent range — segmentation bugs in
    /// collective builders show up here instead of as silent corruption.
    pub fn slice(&self, start: u64, len: u64) -> BufRange {
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) escapes range of len {}",
            start + len,
            self.len
        );
        BufRange {
            off: self.off + start,
            len,
        }
    }

    /// Split into `n` contiguous segments of `seg` bytes (last may be
    /// short), the unit of HAN's pipelining.
    pub fn segments(&self, seg: u64) -> Vec<BufRange> {
        assert!(seg > 0, "segment size must be positive");
        if self.len == 0 {
            return vec![*self];
        }
        let mut out = Vec::with_capacity(self.len.div_ceil(seg) as usize);
        let mut off = 0;
        while off < self.len {
            let len = seg.min(self.len - off);
            out.push(self.slice(off, len));
            off += len;
        }
        out
    }
}

/// The materialized memories of all ranks (data-verification mode only).
#[derive(Debug, Clone)]
pub struct Memory {
    mems: Vec<Vec<u8>>,
}

impl Memory {
    /// Allocate zeroed memories with the given per-rank sizes.
    pub fn new(sizes: &[u64]) -> Self {
        Memory {
            mems: sizes.iter().map(|&s| vec![0u8; s as usize]).collect(),
        }
    }

    pub fn ranks(&self) -> usize {
        self.mems.len()
    }

    pub fn read(&self, rank: usize, r: BufRange) -> &[u8] {
        &self.mems[rank][r.off as usize..r.end() as usize]
    }

    pub fn write(&mut self, rank: usize, r: BufRange, data: &[u8]) {
        assert_eq!(data.len() as u64, r.len, "write length mismatch");
        self.mems[rank][r.off as usize..r.end() as usize].copy_from_slice(data);
    }

    /// Copy within a rank (may not overlap).
    pub fn copy_within_rank(&mut self, rank: usize, src: BufRange, dst: BufRange) {
        assert_eq!(src.len, dst.len);
        let mem = &mut self.mems[rank];
        assert!(
            src.end() <= dst.off || dst.end() <= src.off || src.off == dst.off,
            "overlapping copy"
        );
        if src.off == dst.off {
            return;
        }
        let (a, b) = (src.off as usize, dst.off as usize);
        let n = src.len as usize;
        if a < b {
            let (lo, hi) = mem.split_at_mut(b);
            hi[..n].copy_from_slice(&lo[a..a + n]);
        } else {
            let (lo, hi) = mem.split_at_mut(a);
            lo[b..b + n].copy_from_slice(&hi[..n]);
        }
    }

    /// Copy across ranks (shared-memory window / message delivery).
    pub fn copy_across(&mut self, src_rank: usize, src: BufRange, dst_rank: usize, dst: BufRange) {
        assert_eq!(src.len, dst.len);
        if src_rank == dst_rank {
            self.copy_within_rank(src_rank, src, dst);
            return;
        }
        let (a, b) = if src_rank < dst_rank {
            let (lo, hi) = self.mems.split_at_mut(dst_rank);
            (&lo[src_rank], &mut hi[0])
        } else {
            let (lo, hi) = self.mems.split_at_mut(src_rank);
            (&hi[0], &mut lo[dst_rank])
        };
        b[dst.off as usize..dst.end() as usize]
            .copy_from_slice(&a[src.off as usize..src.end() as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_end() {
        let r = BufRange::new(100, 50);
        assert_eq!(r.end(), 150);
        let s = r.slice(10, 20);
        assert_eq!(s, BufRange::new(110, 20));
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds() {
        BufRange::new(0, 10).slice(5, 6);
    }

    #[test]
    fn segmentation() {
        let r = BufRange::new(0, 10);
        let segs = r.segments(4);
        assert_eq!(
            segs,
            vec![
                BufRange::new(0, 4),
                BufRange::new(4, 4),
                BufRange::new(8, 2)
            ]
        );
        // Segment larger than the buffer: one segment.
        assert_eq!(r.segments(100), vec![BufRange::new(0, 10)]);
        // Zero-length buffer still produces one (empty) segment so
        // zero-byte collectives have a pipeline to run.
        assert_eq!(BufRange::new(5, 0).segments(4).len(), 1);
    }

    #[test]
    fn memory_read_write() {
        let mut m = Memory::new(&[16, 8]);
        assert_eq!(m.ranks(), 2);
        m.write(0, BufRange::new(4, 3), &[1, 2, 3]);
        assert_eq!(m.read(0, BufRange::new(4, 3)), &[1, 2, 3]);
        assert_eq!(m.read(0, BufRange::new(0, 4)), &[0, 0, 0, 0]);
    }

    #[test]
    fn copy_within_both_directions() {
        let mut m = Memory::new(&[16]);
        m.write(0, BufRange::new(0, 4), &[9, 8, 7, 6]);
        m.copy_within_rank(0, BufRange::new(0, 4), BufRange::new(8, 4));
        assert_eq!(m.read(0, BufRange::new(8, 4)), &[9, 8, 7, 6]);
        m.write(0, BufRange::new(12, 2), &[1, 2]);
        m.copy_within_rank(0, BufRange::new(12, 2), BufRange::new(0, 2));
        assert_eq!(m.read(0, BufRange::new(0, 2)), &[1, 2]);
    }

    #[test]
    fn copy_across_ranks() {
        let mut m = Memory::new(&[8, 8]);
        m.write(1, BufRange::new(0, 4), &[5, 6, 7, 8]);
        m.copy_across(1, BufRange::new(0, 4), 0, BufRange::new(4, 4));
        assert_eq!(m.read(0, BufRange::new(4, 4)), &[5, 6, 7, 8]);
        // And low→high rank order.
        m.copy_across(0, BufRange::new(4, 2), 1, BufRange::new(6, 2));
        assert_eq!(m.read(1, BufRange::new(6, 2)), &[5, 6]);
    }
}
