//! The discrete-event executor.
//!
//! Runs a [`Program`] against a [`Machine`], producing per-op virtual
//! completion times (and, in data mode, real buffer contents). The
//! executor implements the P2P transport — eager and rendezvous protocols
//! over the NIC/bus/CPU resources — and the dependency propagation that
//! turns HAN's task DAGs into pipelined execution.
//!
//! ## Transport model
//!
//! *Inter-node eager* (`bytes <= eager_limit`): the sender CPU copies the
//! payload into a bounce buffer and returns; the NIC streams it out
//! immediately (no receiver involvement); the receiver CPU copies it out of
//! the bounce buffer once both the data and the receive are present.
//!
//! *Inter-node rendezvous*: send and receive first handshake (RTS/CTS,
//! [`P2pParams::rndv_handshake`]); the NIC then moves the payload zero-copy
//! by DMA. DMA traffic occupies the *memory bus* on both endpoints — the
//! paper's first reason why `ib` does not overlap perfectly with `sb`
//! ("ib needs to push the data back to memory which competes with sb for
//! the memory bus", section III-A2).
//!
//! *Intra-node*: eager messages take two copies through shared memory
//! (sender copy-in, receiver copy-out); rendezvous messages take a single
//! receiver-side copy (CMA/KNEM-style), started after both sides are
//! posted.
//!
//! Every CPU charge goes through the rank's FIFO CPU resource — the
//! single-threaded progression engine — which is the paper's second reason
//! for imperfect overlap ("ib and sb share the same CPU resource to
//! progress").
//!
//! ## Executor core v3
//!
//! The executor is a persistent [`Executor`] rather than a per-run stack
//! value. All per-op state (`ready_at`, pending-dep counts, finish times)
//! and per-message state live in flat struct-of-arrays vectors indexed by
//! `u32` arena ids, cleared — not reallocated — between runs. The
//! dependency structure (children CSR, zero-in-degree roots, message
//! endpoints) is cached in a `DepGraph` and reused verbatim across
//! template specializations of the same program shape: a sweep over
//! thousands of candidate configurations rebuilds the CSR only when the
//! DAG *structure* changes, not when scalars (byte counts, durations)
//! change.
//!
//! On top of structural reuse sits **delta re-simulation**
//! ([`Executor::run_recorded`] / [`Executor::run_delta`]): a recorded run
//! keeps periodic checkpoints of all mutable simulation state plus the pop
//! position of every op's `Ready` event. A structurally identical
//! neighbor candidate then replays the unchanged event prefix from the
//! latest checkpoint that precedes the first divergent op and re-simulates
//! only the suffix — bit-identical to a full run, because op scalars are
//! first observed at their `Ready` pop and every message-meta read happens
//! causally after the `Ready` of one of the message's endpoint ops.

use crate::buffer::Memory;
use crate::datatype::{DataType, ReduceOp};
use crate::program::{MsgId, MsgMeta, OpId, OpKind, Program};
use han_machine::{Machine, P2pParams, RailPolicy};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use han_sim::{EngineStats, EventQueue, PoolState, QueueSnapshot, Time};

/// How much work the executor does per event.
///
/// Virtual times are **bit-identical** across modes: payload movement never
/// influences resource occupancy, only real wall-clock spent simulating.
/// Tuning sweeps therefore run `TimingOnly` (no per-rank memories, no
/// payload copies) while correctness tests keep `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Model resource occupancy only; skip all payload reads/copies.
    #[default]
    TimingOnly,
    /// Additionally materialize per-rank memories and move real bytes.
    Full,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Point-to-point protocol parameters (per MPI library flavour).
    pub p2p: P2pParams,
    /// Timing-only fast path vs. full data movement (correctness mode).
    pub mode: ExecMode,
    /// Per-rank start skew: ops without dependencies on rank `r` become
    /// ready at `start_times[r]`. Used by the task benchmarks that must
    /// "delay the participation of each process by the duration of the
    /// ib(0) step" (paper section III-A2) and by imbalance injection.
    pub start_times: Option<Vec<Time>>,
}

impl ExecOpts {
    pub fn timing(p2p: P2pParams) -> Self {
        ExecOpts {
            p2p,
            mode: ExecMode::TimingOnly,
            start_times: None,
        }
    }

    pub fn with_data(p2p: P2pParams) -> Self {
        ExecOpts {
            p2p,
            mode: ExecMode::Full,
            start_times: None,
        }
    }

    pub fn with_mode(p2p: P2pParams, mode: ExecMode) -> Self {
        ExecOpts {
            p2p,
            mode,
            start_times: None,
        }
    }

    pub fn with_skew(mut self, start_times: Vec<Time>) -> Self {
        self.start_times = Some(start_times);
        self
    }

    /// True when real bytes are moved (a [`Memory`] will be produced).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.mode == ExecMode::Full
    }
}

/// Result of executing a program.
#[derive(Debug, Clone)]
pub struct Report {
    op_finish: Vec<Time>,
    /// Completion time of the last op on each rank.
    pub rank_finish: Vec<Time>,
    /// Completion time of the whole program: `max(rank_finish)`. This is
    /// the cost definition the paper adopts from IMB/OSU ("the longest
    /// time among all the processes").
    pub makespan: Time,
    /// Number of simulator events processed (engine statistic).
    pub events: u64,
    /// Event-engine counters for this execution (pushes, pops, clamped
    /// past-scheduled events, peak queue depth, batch-drain efficacy).
    pub engine: EngineStats,
}

impl Report {
    /// Finish time of a specific op (e.g. a task's join nop).
    pub fn finish(&self, op: OpId) -> Time {
        self.op_finish[op.0 as usize]
    }

    /// Finish time of every op, indexed by op id (differential oracles).
    pub fn op_finishes(&self) -> &[Time] {
        &self.op_finish
    }
}

/// Process-wide event-engine totals, accumulated across every execution
/// (all threads). `clamped > 0` means some event was scheduled in the past
/// and silently clamped — a simulator bug that release builds would
/// otherwise hide. Delta runs accumulate only the suffix they actually
/// simulated, so these totals honestly measure simulation work done.
static TOTAL_PUSHES: AtomicU64 = AtomicU64::new(0);
static TOTAL_POPS: AtomicU64 = AtomicU64::new(0);
static TOTAL_CLAMPED: AtomicU64 = AtomicU64::new(0);
static TOTAL_MAX_DEPTH: AtomicU64 = AtomicU64::new(0);
static TOTAL_BATCHED_POPS: AtomicU64 = AtomicU64::new(0);
static TOTAL_MAX_BATCH: AtomicU64 = AtomicU64::new(0);

fn accumulate_engine_totals(s: &EngineStats) {
    TOTAL_PUSHES.fetch_add(s.pushes, Ordering::Relaxed);
    TOTAL_POPS.fetch_add(s.pops, Ordering::Relaxed);
    TOTAL_CLAMPED.fetch_add(s.clamped, Ordering::Relaxed);
    TOTAL_MAX_DEPTH.fetch_max(s.max_depth, Ordering::Relaxed);
    TOTAL_BATCHED_POPS.fetch_add(s.batched_pops, Ordering::Relaxed);
    TOTAL_MAX_BATCH.fetch_max(s.max_batch, Ordering::Relaxed);
}

/// Snapshot of the process-wide engine totals.
pub fn engine_totals() -> EngineStats {
    EngineStats {
        pushes: TOTAL_PUSHES.load(Ordering::Relaxed),
        pops: TOTAL_POPS.load(Ordering::Relaxed),
        clamped: TOTAL_CLAMPED.load(Ordering::Relaxed),
        max_depth: TOTAL_MAX_DEPTH.load(Ordering::Relaxed),
        batched_pops: TOTAL_BATCHED_POPS.load(Ordering::Relaxed),
        max_batch: TOTAL_MAX_BATCH.load(Ordering::Relaxed),
    }
}

/// Reset the process-wide engine totals (benchmark harnesses).
pub fn reset_engine_totals() {
    TOTAL_PUSHES.store(0, Ordering::Relaxed);
    TOTAL_POPS.store(0, Ordering::Relaxed);
    TOTAL_CLAMPED.store(0, Ordering::Relaxed);
    TOTAL_MAX_DEPTH.store(0, Ordering::Relaxed);
    TOTAL_BATCHED_POPS.store(0, Ordering::Relaxed);
    TOTAL_MAX_BATCH.store(0, Ordering::Relaxed);
}

thread_local! {
    static TLS_EXEC: RefCell<Executor> = RefCell::new(Executor::new());
}

/// Execute `prog` on `machine` (resources are reset first).
///
/// Routed through a thread-local persistent [`Executor`], so repeated
/// executions of structurally identical programs reuse the dependency CSR
/// and every state vector's allocation.
pub fn execute(machine: &mut Machine, prog: &Program, opts: &ExecOpts) -> Report {
    TLS_EXEC.with(|e| {
        let mem = opts.is_full().then(|| Memory::new(&prog.mem_size));
        e.borrow_mut().run(machine, prog, opts, mem).0
    })
}

/// Execute in data mode and return the final memories as well.
pub fn execute_with_memory(
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
) -> (Report, Memory) {
    assert!(
        opts.is_full(),
        "execute_with_memory requires ExecMode::Full"
    );
    TLS_EXEC.with(|e| {
        let mem = Memory::new(&prog.mem_size);
        let (report, mem) = e.borrow_mut().run(machine, prog, opts, Some(mem));
        (report, mem.expect("data mode produces memory"))
    })
}

/// Execute with a closure that seeds initial memory contents (testing and
/// correctness harnesses).
pub fn execute_seeded(
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
    seed: impl FnOnce(&mut Memory),
) -> (Report, Memory) {
    assert!(opts.is_full(), "execute_seeded requires ExecMode::Full");
    let mut mem = Memory::new(&prog.mem_size);
    seed(&mut mem);
    TLS_EXEC.with(|e| {
        let (report, mem) = e.borrow_mut().run(machine, prog, opts, Some(mem));
        (report, mem.expect("data mode produces memory"))
    })
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// All dependencies of the op are satisfied.
    Ready(OpId),
    /// The send-side CPU phase of a message completed.
    SendPosted(MsgId),
    /// Both sides of a rendezvous are posted: the receiver's CPU must
    /// progress the CTS response before data can flow.
    RndvCts(MsgId),
    /// Begin NIC transmission (inter-node).
    TxStart(MsgId),
    /// Begin NIC reception (inter-node, cut-through: latency after tx start).
    RxStart(MsgId),
    /// Payload fully arrived at the destination endpoint.
    Arrived(MsgId),
    /// Begin the single receiver-side copy (intra-node rendezvous).
    IntraCopy(MsgId),
    /// The op is complete; propagate to dependents.
    Finish(OpId),
}

/// "No entry" sentinel for `u32` id slots in [`DepGraph`].
const NONE_U32: u32 = u32::MAX;

/// "Not yet happened" sentinel for per-message timestamps (the virtual
/// clock never legitimately reaches `Time::MAX`).
const UNSET: Time = Time::MAX;

/// Bus traffic factor for reductions: operands are read and the result
/// written, ~2 bytes of bus traffic per reduced byte.
const REDUCE_BUS_FACTOR: u64 = 2;

/// Compact `OpKind` dispatch tags (see `Executor::kind_tag`).
const TAG_NOP: u8 = 0;
const TAG_SLEEP: u8 = 1;
const TAG_DELAY: u8 = 2;
const TAG_OTHER: u8 = 3;

/// Cached dependency *structure* of a program: children CSR, flat deps,
/// message endpoints, zero-in-degree roots. Built once and reused across
/// every specialization that keeps the same DAG shape — op scalars (byte
/// counts, durations) and message scalars never enter this structure, so a
/// sweep that only varies sizes shares one `DepGraph`.
#[derive(Debug, Default)]
struct DepGraph {
    built: bool,
    nops: usize,
    nmsgs: usize,
    /// Children (reverse dependencies) in CSR form.
    child_off: Vec<u32>,
    child: Vec<u32>,
    /// Flat copy of each op's deps (CSR), kept for exact `matches` compares.
    dep_off: Vec<u32>,
    dep: Vec<u32>,
    op_rank: Vec<u32>,
    /// Structural message tag: `Send{msg}` -> `msg*2`, `Recv{msg}` ->
    /// `msg*2+1`, anything else -> `NONE_U32`.
    op_msg: Vec<u32>,
    msg_send_op: Vec<u32>,
    msg_recv_op: Vec<u32>,
    /// Ops with no dependencies, in op-id order: the ready-queue seeds.
    roots: Vec<u32>,
    indeg0: Vec<u32>,
    cursor: Vec<u32>,
}

impl DepGraph {
    /// Exact structural equality with `prog` (ranks, dep lists, message
    /// endpoints). O(ops + deps); no hashing, so no collisions.
    fn matches(&self, prog: &Program) -> bool {
        if !self.built || self.nops != prog.ops.len() || self.nmsgs != prog.msgs.len() {
            return false;
        }
        let mut k = 0usize;
        for (i, op) in prog.ops.iter().enumerate() {
            if self.op_rank[i] != op.rank {
                return false;
            }
            let tag = match op.kind {
                OpKind::Send { msg } => msg.0 * 2,
                OpKind::Recv { msg } => msg.0 * 2 + 1,
                _ => NONE_U32,
            };
            if self.op_msg[i] != tag {
                return false;
            }
            let ndeps = (self.dep_off[i + 1] - self.dep_off[i]) as usize;
            if ndeps != op.deps.len() {
                return false;
            }
            for d in &op.deps {
                if self.dep[k] != d.0 {
                    return false;
                }
                k += 1;
            }
        }
        true
    }

    /// (Re)build from `prog`, reusing every allocation.
    fn build(&mut self, prog: &Program) {
        let n = prog.ops.len();
        self.nops = n;
        self.nmsgs = prog.msgs.len();
        self.op_rank.clear();
        self.op_msg.clear();
        self.indeg0.clear();
        self.roots.clear();
        self.dep.clear();
        self.dep_off.clear();
        self.dep_off.push(0);
        self.msg_send_op.clear();
        self.msg_send_op.resize(self.nmsgs, NONE_U32);
        self.msg_recv_op.clear();
        self.msg_recv_op.resize(self.nmsgs, NONE_U32);
        for (i, op) in prog.ops.iter().enumerate() {
            self.op_rank.push(op.rank);
            let tag = match op.kind {
                OpKind::Send { msg } => {
                    self.msg_send_op[msg.0 as usize] = i as u32;
                    msg.0 * 2
                }
                OpKind::Recv { msg } => {
                    self.msg_recv_op[msg.0 as usize] = i as u32;
                    msg.0 * 2 + 1
                }
                _ => NONE_U32,
            };
            self.op_msg.push(tag);
            self.indeg0.push(op.deps.len() as u32);
            if op.deps.is_empty() {
                self.roots.push(i as u32);
            }
            for d in &op.deps {
                self.dep.push(d.0);
            }
            self.dep_off.push(self.dep.len() as u32);
        }
        // Children CSR by counting sort over the flat dep array.
        self.child_off.clear();
        self.child_off.resize(n + 1, 0);
        for &d in &self.dep {
            self.child_off[d as usize + 1] += 1;
        }
        for i in 0..n {
            self.child_off[i + 1] += self.child_off[i];
        }
        self.child.clear();
        self.child.resize(self.dep.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.child_off[..n]);
        for (i, op) in prog.ops.iter().enumerate() {
            for d in &op.deps {
                let c = &mut self.cursor[d.0 as usize];
                self.child[*c as usize] = i as u32;
                *c += 1;
            }
        }
        self.built = true;
    }
}

/// The machine/program/options context threaded through event handlers,
/// split from [`Executor`] state so handlers can mutate both sides.
struct Ctx<'a> {
    m: &'a mut Machine,
    prog: &'a Program,
    opts: &'a ExecOpts,
}

impl Ctx<'_> {
    #[inline]
    fn node_of_rank(&self, rank: u32) -> usize {
        self.m.topo.node_of(rank as usize)
    }

    #[inline]
    fn is_intra(&self, msg: MsgId) -> bool {
        let meta = self.prog.msg(msg);
        self.m.topo.same_node(meta.src as usize, meta.dst as usize)
    }

    /// The hierarchy level whose link two ranks communicate over. On a
    /// uniform machine the level's parameters carry exactly the values the
    /// single `NodeParams`/`NetParams` pair implies, so level-indexed
    /// costing is bit-identical to the historical model.
    #[inline]
    fn link_level(&self, a: u32, b: u32) -> usize {
        self.m.topo.link_level(a as usize, b as usize)
    }

    /// Latency of an intra-node synchronization flag between two ranks:
    /// the latency of the level linking them.
    #[inline]
    fn flag_latency(&self, a: u32, b: u32) -> Time {
        self.m.levels.get(self.link_level(a, b)).latency
    }

    /// NIC occupancy: acquire the source/destination rails for `bytes` of
    /// `msg` at node `node`. Returns (earliest rail start, latest rail
    /// end). With one rail this is exactly the historical single-NIC
    /// acquisition; round-robin keeps whole messages on one rail chosen by
    /// message id, striping splits the payload evenly across all rails.
    fn acquire_rails(
        &mut self,
        node: usize,
        t: Time,
        bytes: u64,
        msg: MsgId,
        tx: bool,
    ) -> (Time, Time) {
        let rails = self.m.net.rails;
        let bw = self.m.levels.get(0).bandwidth;
        if rails == 1 || self.m.net.rail_policy == RailPolicy::RoundRobin {
            let rail = msg.0 as usize % rails;
            let id = if tx {
                self.m.nic_tx_rail(node, rail)
            } else {
                self.m.nic_rx_rail(node, rail)
            };
            return self.m.acquire(id, t, Time::for_bytes(bytes, bw));
        }
        // Stripe: even byte split, first `bytes % rails` rails carry one
        // extra byte.
        let base = bytes / rails as u64;
        let rem = bytes % rails as u64;
        let mut s_min: Option<Time> = None;
        let mut e_max = Time::ZERO;
        for r in 0..rails {
            let chunk = base + u64::from((r as u64) < rem);
            let id = if tx {
                self.m.nic_tx_rail(node, r)
            } else {
                self.m.nic_rx_rail(node, r)
            };
            let (s, e) = self.m.acquire(id, t, Time::for_bytes(chunk, bw));
            s_min = Some(s_min.map_or(s, |m| m.min(s)));
            e_max = e_max.max(e);
        }
        (s_min.unwrap(), e_max)
    }
}

/// Periodic full-state checkpoint of a recorded run: everything needed to
/// resume the event loop from pop position `pos`.
#[derive(Debug)]
struct Checkpoint {
    /// Number of events popped before this checkpoint was taken (the pop
    /// position of the *next* event).
    pos: u64,
    queue: QueueSnapshot<Ev>,
    pool: PoolState,
    indeg: Vec<u32>,
    ready_at: Vec<Time>,
    finish: Vec<Time>,
    done: Vec<bool>,
    msg_send_posted: Vec<Time>,
    msg_recv_posted: Vec<Time>,
    msg_arrived: Vec<Time>,
    msg_eff_tx_end: Vec<Time>,
    completed: usize,
}

/// Timing projection of one op kind: the dispatch tag plus the scalars the
/// timing-only executor reads — everything except buffer placement.
/// `BufRange`s only steer data movement in `ExecMode::Full`, which delta
/// replay rejects up front, so two ops whose projections are equal produce
/// identical timing even when their buffer offsets differ.
fn project_kind(k: &OpKind) -> (u8, u64, u64) {
    use OpKind::*;
    match *k {
        Nop => (0, 0, 0),
        Delay { dur } => (1, dur.as_ps(), 0),
        Sleep { dur } => (2, dur.as_ps(), 0),
        Copy { bytes, .. } => (3, bytes, 0),
        CrossCopy { from, bytes, .. } => (4, bytes, from as u64),
        Reduce {
            bytes,
            vectorized,
            op,
            dtype,
            ..
        } => (5, bytes, pack_reduce(vectorized, op, dtype, 0)),
        ReduceFrom {
            from,
            bytes,
            vectorized,
            op,
            dtype,
            ..
        } => (6, bytes, pack_reduce(vectorized, op, dtype, from)),
        Send { msg } => (7, u64::from(msg.0), 0),
        Recv { msg } => (8, u64::from(msg.0), 0),
    }
}

fn pack_reduce(vectorized: bool, op: ReduceOp, dtype: DataType, from: u32) -> u64 {
    u64::from(vectorized) | (op as u64) << 1 | (dtype as u64) << 8 | u64::from(from) << 16
}

/// Timing projection of one message meta: endpoints and size; payload
/// buffer ranges are irrelevant on the timing-only path.
fn project_msg(m: &MsgMeta) -> (u32, u32, u64) {
    (m.src, m.dst, m.bytes)
}

/// Replay log of one full timing run: the simulated program's dependency
/// structure (exact flat copies of the CSR arrays — no hashing, so no
/// collisions) and timing-relevant scalars, the pop position of every op's
/// `Ready` event, periodic `Checkpoint`s, and the final [`Report`].
/// Produced by [`Executor::run_recorded`], consumed by
/// [`Executor::run_delta`]. Deliberately does **not** clone the `Program`:
/// per-op dependency vectors would cost one heap block each, which at
/// sweep rates would make the recording run ~2x the price of a plain one.
#[derive(Debug)]
pub struct Recording {
    /// Exact structural identity: flat copies of the dependency CSR.
    op_rank: Vec<u32>,
    op_msg: Vec<u32>,
    dep_off: Vec<u32>,
    dep: Vec<u32>,
    nmsgs: usize,
    /// Timing projection of every op kind / message meta.
    kinds: Vec<(u8, u64, u64)>,
    msgs: Vec<(u32, u32, u64)>,
    /// Pop position of `Ready(op)` for every op (`u64::MAX` until popped).
    ready_pos: Vec<u64>,
    checkpoints: Vec<Checkpoint>,
    report: Report,
}

impl Recording {
    /// The report of the recorded full run.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Number of checkpoints kept (diagnostics).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Pop position of every op's `Ready` event (diagnostics).
    pub fn ready_positions(&self) -> &[u64] {
        &self.ready_pos
    }

    /// Pop positions of the retained checkpoints (diagnostics).
    pub fn checkpoint_positions(&self) -> Vec<u64> {
        self.checkpoints.iter().map(|c| c.pos).collect()
    }
}

/// Upper bound on retained checkpoints; once exceeded, every other
/// checkpoint is dropped and the spacing doubles (logarithmic thinning, so
/// long runs keep coarse early coverage and fine recent coverage).
const MAX_CHECKPOINTS: usize = 8;

struct RecState {
    ready_pos: Vec<u64>,
    checkpoints: Vec<Checkpoint>,
    interval: u64,
    next_mark: u64,
}

fn take_checkpoint(rs: &mut RecState, st: &Executor, m: &Machine, pos: u64) {
    rs.checkpoints.push(Checkpoint {
        pos,
        queue: st.q.snapshot(),
        pool: m.save_pool(),
        indeg: st.indeg.clone(),
        ready_at: st.ready_at.clone(),
        finish: st.finish.clone(),
        done: st.done.clone(),
        msg_send_posted: st.msg_send_posted.clone(),
        msg_recv_posted: st.msg_recv_posted.clone(),
        msg_arrived: st.msg_arrived.clone(),
        msg_eff_tx_end: st.msg_eff_tx_end.clone(),
        completed: st.completed,
    });
    rs.next_mark = pos + rs.interval;
    if rs.checkpoints.len() > MAX_CHECKPOINTS {
        let mut i = 0usize;
        rs.checkpoints.retain(|_| {
            let keep = i % 2 == 0;
            i += 1;
            keep
        });
        rs.interval *= 2;
    }
}

/// A persistent, reusable program executor.
///
/// All per-run state lives in flat vectors indexed by op/message id that
/// are cleared (never reallocated) between runs; the dependency CSR is
/// cached across structurally identical programs. One `Executor` per
/// worker thread turns a tuning sweep into a zero-allocation steady state.
#[derive(Debug, Default)]
pub struct Executor {
    q: EventQueue<Ev>,
    graph: DepGraph,
    indeg: Vec<u32>,
    ready_at: Vec<Time>,
    finish: Vec<Time>,
    done: Vec<bool>,
    // Per-message SoA state ("not yet" = UNSET for the timestamps).
    msg_send_posted: Vec<Time>,
    msg_recv_posted: Vec<Time>,
    msg_arrived: Vec<Time>,
    msg_eff_tx_end: Vec<Time>,
    msg_payload: Vec<Option<Vec<u8>>>,
    completed: usize,
    /// Per-op compact kind tag (`TAG_*`) and Sleep/Delay duration, rebuilt
    /// by `prepare` for each run (scalars are not part of the cached CSR).
    kind_tag: Vec<u8>,
    kind_dur: Vec<Time>,
    mem: Option<Memory>,
    /// Reusable operand buffer for Reduce/ReduceFrom in Full mode; the
    /// executor is single-threaded so one buffer serves every rank.
    scratch: Vec<u8>,
    /// Free list of payload buffers. Send snapshots pop from here and are
    /// returned when the matching Recv delivers, so steady-state execution
    /// allocates only up to the peak number of in-flight messages.
    payload_pool: Vec<Vec<u8>>,
}

impl Executor {
    pub fn new() -> Self {
        Executor::default()
    }

    /// Execute `prog` on `machine` (resources are reset first), reusing
    /// this executor's cached structure and state vectors.
    pub fn execute(&mut self, machine: &mut Machine, prog: &Program, opts: &ExecOpts) -> Report {
        let mem = opts.is_full().then(|| Memory::new(&prog.mem_size));
        self.run(machine, prog, opts, mem).0
    }

    fn run(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
        mem: Option<Memory>,
    ) -> (Report, Option<Memory>) {
        self.prepare(prog, opts);
        self.mem = mem;
        machine.reset();
        let mut cx = Ctx {
            m: machine,
            prog,
            opts,
        };
        while let Some((t, ev)) = self.q.pop() {
            self.handle(&mut cx, t, ev);
        }
        let report = self.finish_report(prog);
        accumulate_engine_totals(&report.engine);
        (report, self.mem.take())
    }

    /// Execute a timing-only run while recording checkpoints and `Ready`
    /// pop positions for later delta re-simulation.
    pub fn run_recorded(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
    ) -> Recording {
        self.run_recording(machine, prog, opts, true)
    }

    /// Like [`Executor::run_recorded`] but without checkpoints: only the
    /// `Ready` pop positions are traced, so the run costs roughly the same
    /// as a plain [`Executor::execute`]. The resulting [`Recording`] still
    /// supports exact-match replay (identical program → free report) and
    /// divergence detection; a partial replay simply finds no usable
    /// checkpoint and [`Executor::run_delta`] returns `None`.
    pub fn run_traced(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
    ) -> Recording {
        self.run_recording(machine, prog, opts, false)
    }

    fn run_recording(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
        checkpoints: bool,
    ) -> Recording {
        assert!(
            !opts.is_full() && opts.start_times.is_none(),
            "recording requires the timing-only fast path without start skew"
        );
        self.prepare(prog, opts);
        self.mem = None;
        machine.reset();
        let n = self.graph.nops;
        // Spacing in pop positions. A run pops ~2-3 events per op, so n/2
        // yields roughly 4-6 marks — what a finer initial spacing would be
        // thinned down to anyway, at half the snapshot cost. The floor
        // keeps even tiny programs (whole runs shorter than a coarse
        // interval would be) checkpointable.
        let interval = (n as u64 / 2).max(32);
        let mut rs = RecState {
            ready_pos: vec![u64::MAX; n],
            checkpoints: Vec::new(),
            interval,
            next_mark: if checkpoints { interval } else { u64::MAX },
        };
        let mut cx = Ctx {
            m: machine,
            prog,
            opts,
        };
        loop {
            let pos = self.q.processed();
            if pos >= rs.next_mark && self.completed < n {
                take_checkpoint(&mut rs, self, cx.m, pos);
            }
            let Some((t, ev)) = self.q.pop() else { break };
            if let Ev::Ready(op) = ev {
                rs.ready_pos[op.0 as usize] = pos;
            }
            self.handle(&mut cx, t, ev);
        }
        let report = self.finish_report(prog);
        accumulate_engine_totals(&report.engine);
        Recording {
            op_rank: self.graph.op_rank.clone(),
            op_msg: self.graph.op_msg.clone(),
            dep_off: self.graph.dep_off.clone(),
            dep: self.graph.dep.clone(),
            nmsgs: self.graph.nmsgs,
            kinds: prog.ops.iter().map(|o| project_kind(&o.kind)).collect(),
            msgs: prog.msgs.iter().map(project_msg).collect(),
            ready_pos: rs.ready_pos,
            checkpoints: rs.checkpoints,
            report,
        }
    }

    /// Re-simulate `prog` by replaying the unchanged prefix of `base` and
    /// simulating only the divergent suffix. Returns `None` when delta
    /// replay is not applicable (data mode, start skew, different DAG
    /// structure, or divergence before the first checkpoint) — the caller
    /// then falls back to a full run.
    ///
    /// The returned report is **bit-identical** to a full simulation of
    /// `prog`: op scalars are first read when their `Ready` event pops,
    /// and every message-meta read is causally ordered after the `Ready`
    /// of one of the message's endpoint ops, so restoring any checkpoint
    /// at or before the first divergent `Ready` position replays exactly
    /// the events a full run would process.
    pub fn run_delta(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
        base: &Recording,
    ) -> Option<Report> {
        if opts.is_full() || opts.start_times.is_some() {
            return None;
        }
        debug_assert_eq!(prog.validate(), Ok(()));
        if !self.graph.matches(prog) {
            self.graph.build(prog);
        }
        // Structural identity: exact compare of the flat CSR copies (no
        // hashing, so no collisions).
        if self.graph.nmsgs != base.nmsgs
            || self.graph.op_rank != base.op_rank
            || self.graph.op_msg != base.op_msg
            || self.graph.dep_off != base.dep_off
            || self.graph.dep != base.dep
        {
            return None;
        }
        // First divergent pop position k*: the earliest Ready of any op
        // whose timing-relevant scalars differ, or of any endpoint of a
        // message whose timing-relevant meta differs. Buffer placement
        // (`BufRange`s) is projected out: the timing-only fast path this
        // replay is restricted to never reads it, and sweep candidates
        // that differ only in message size shift every staging-buffer
        // offset while leaving most of the timeline untouched.
        let mut kstar = u64::MAX;
        for (i, op) in prog.ops.iter().enumerate() {
            if project_kind(&op.kind) != base.kinds[i] {
                kstar = kstar.min(base.ready_pos[i]);
            }
        }
        for (j, msg) in prog.msgs.iter().enumerate() {
            if project_msg(msg) != base.msgs[j] {
                let s = self.graph.msg_send_op[j];
                let r = self.graph.msg_recv_op[j];
                if s == NONE_U32 || r == NONE_U32 {
                    return None;
                }
                kstar = kstar.min(base.ready_pos[s as usize]);
                kstar = kstar.min(base.ready_pos[r as usize]);
            }
        }
        if kstar == u64::MAX {
            // Identical program: the recorded run *is* the answer. The
            // machine is untouched and no simulation work is accumulated.
            return Some(base.report.clone());
        }
        let cp = base.checkpoints.iter().rev().find(|c| c.pos <= kstar)?;
        self.build_kind_tables(prog);
        self.q.restore(&cp.queue);
        machine.restore_pool(&cp.pool);
        self.indeg.clone_from(&cp.indeg);
        self.ready_at.clone_from(&cp.ready_at);
        self.finish.clone_from(&cp.finish);
        self.done.clone_from(&cp.done);
        self.msg_send_posted.clone_from(&cp.msg_send_posted);
        self.msg_recv_posted.clone_from(&cp.msg_recv_posted);
        self.msg_arrived.clone_from(&cp.msg_arrived);
        self.msg_eff_tx_end.clone_from(&cp.msg_eff_tx_end);
        self.completed = cp.completed;
        self.mem = None;
        self.msg_payload.clear();
        self.msg_payload.resize_with(self.graph.nmsgs, || None);
        let s0 = self.q.stats();
        let mut cx = Ctx {
            m: machine,
            prog,
            opts,
        };
        while let Some((t, ev)) = self.q.pop() {
            self.handle(&mut cx, t, ev);
        }
        let report = self.finish_report(prog);
        // The restored queue stats carry the prefix, so `report.engine` is
        // full-run-equivalent; process-wide totals get only the suffix
        // actually simulated.
        let end = &report.engine;
        accumulate_engine_totals(&EngineStats {
            pushes: end.pushes - s0.pushes,
            pops: end.pops - s0.pops,
            clamped: end.clamped - s0.clamped,
            max_depth: end.max_depth,
            batched_pops: end.batched_pops - s0.batched_pops,
            max_batch: end.max_batch,
        });
        Some(report)
    }

    /// Rebuild the compact dispatch tables: the ready handler for the
    /// trivial kinds (Nop/Sleep/Delay — the bulk of fine-grained DAGs)
    /// reads one byte and one `Time` instead of the ~100-byte `Op`.
    /// Rebuilt per run because scalars move under template re-stamping
    /// even when the cached CSR structure matches.
    fn build_kind_tables(&mut self, prog: &Program) {
        self.kind_tag.clear();
        self.kind_dur.clear();
        for op in &prog.ops {
            let (tag, dur) = match op.kind {
                OpKind::Nop => (TAG_NOP, Time::ZERO),
                OpKind::Sleep { dur } => (TAG_SLEEP, dur),
                OpKind::Delay { dur } => (TAG_DELAY, dur),
                _ => (TAG_OTHER, Time::ZERO),
            };
            self.kind_tag.push(tag);
            self.kind_dur.push(dur);
        }
    }

    /// Reset all per-run state for `prog` (keeping allocations and, when
    /// the structure matches, the cached dependency CSR) and seed the
    /// ready queue from the precomputed zero-in-degree roots.
    fn prepare(&mut self, prog: &Program, opts: &ExecOpts) {
        debug_assert_eq!(prog.validate(), Ok(()));
        if !self.graph.matches(prog) {
            self.graph.build(prog);
        }
        let n = self.graph.nops;
        let nm = self.graph.nmsgs;
        self.q.reset();
        self.build_kind_tables(prog);
        self.indeg.clear();
        self.indeg.extend_from_slice(&self.graph.indeg0);
        self.finish.clear();
        self.finish.resize(n, Time::ZERO);
        self.done.clear();
        self.done.resize(n, false);
        self.ready_at.clear();
        match &opts.start_times {
            // A rank executes nothing before its arrival time: floor every
            // op's readiness at the rank's start time.
            Some(st) => self
                .ready_at
                .extend(self.graph.op_rank.iter().map(|&r| st[r as usize])),
            None => self.ready_at.resize(n, Time::ZERO),
        }
        self.msg_send_posted.clear();
        self.msg_send_posted.resize(nm, UNSET);
        self.msg_recv_posted.clear();
        self.msg_recv_posted.resize(nm, UNSET);
        self.msg_arrived.clear();
        self.msg_arrived.resize(nm, UNSET);
        self.msg_eff_tx_end.clear();
        self.msg_eff_tx_end.resize(nm, Time::ZERO);
        self.msg_payload.clear();
        self.msg_payload.resize_with(nm, || None);
        self.completed = 0;
        for i in 0..self.graph.roots.len() {
            let r = self.graph.roots[i] as usize;
            let at = self.ready_at[r];
            self.q.push(at, Ev::Ready(OpId(r as u32)));
        }
    }

    fn finish_report(&self, prog: &Program) -> Report {
        assert_eq!(
            self.completed, self.graph.nops,
            "deadlock: {} of {} ops completed (dependency cycle or unmatched message)",
            self.completed, self.graph.nops
        );
        let mut rank_finish = vec![Time::ZERO; prog.nranks];
        for (i, &r) in self.graph.op_rank.iter().enumerate() {
            let r = r as usize;
            rank_finish[r] = rank_finish[r].max(self.finish[i]);
        }
        let makespan = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        let engine = self.q.stats();
        Report {
            op_finish: self.finish.clone(),
            rank_finish,
            makespan,
            events: engine.pops,
            engine,
        }
    }

    #[inline]
    fn handle(&mut self, cx: &mut Ctx, t: Time, ev: Ev) {
        match ev {
            Ev::Ready(op) => self.on_ready(cx, t, op),
            Ev::SendPosted(msg) => self.on_send_posted(cx, t, msg),
            Ev::RndvCts(msg) => self.on_rndv_cts(cx, t, msg),
            Ev::TxStart(msg) => self.on_tx_start(cx, t, msg),
            Ev::RxStart(msg) => self.on_rx_start(cx, t, msg),
            Ev::Arrived(msg) => self.on_arrived(cx, t, msg),
            Ev::IntraCopy(msg) => self.on_intra_copy(cx, t, msg),
            Ev::Finish(op) => self.on_finish(cx, t, op),
        }
    }

    fn on_ready(&mut self, cx: &mut Ctx, t: Time, op: OpId) {
        // Trivial kinds dispatch off the compact tag table — one byte and
        // (for Sleep/Delay) one `Time` — without touching the fat `Op`.
        let idx = op.0 as usize;
        match self.kind_tag[idx] {
            TAG_NOP => return self.q.push(t, Ev::Finish(op)),
            TAG_SLEEP => return self.q.push(t + self.kind_dur[idx], Ev::Finish(op)),
            TAG_DELAY => {
                let cpu = cx.m.cpu(self.graph.op_rank[idx] as usize);
                let (_, e) = cx.m.acquire(cpu, t, self.kind_dur[idx]);
                return self.q.push(e, Ev::Finish(op));
            }
            _ => {}
        }
        let prog = cx.prog;
        let o = &prog.ops[idx];
        let rank = o.rank as usize;
        // `node` is a division by ppn; compute it only in the arms that
        // touch the node bus.
        match o.kind {
            OpKind::Nop | OpKind::Sleep { .. } | OpKind::Delay { .. } => {
                unreachable!("trivial kinds dispatch off the tag table")
            }
            OpKind::Copy { bytes, .. } | OpKind::CrossCopy { bytes, .. } => {
                // Local copies use the innermost link; cross-rank copies
                // the link level joining the two ranks. On uniform
                // machines both carry exactly the old bus/cross-socket
                // rates; heterogeneous levels add a launch overhead and
                // their own bandwidth.
                let mut lvl = cx.m.topo.depth() - 1;
                if let OpKind::CrossCopy { from, .. } = o.kind {
                    debug_assert!(
                        cx.m.topo.same_node(from as usize, rank),
                        "CrossCopy across nodes: {from} -> {rank}"
                    );
                    lvl = cx.link_level(from, o.rank);
                }
                let lp = *cx.m.levels.get(lvl);
                let cpu = cx.m.cpu(rank);
                let bus = cx.m.bus(cx.node_of_rank(o.rank));
                let cdur = cx.m.node.copy_time(bytes) + lp.launch;
                let (s, e) = cx.m.acquire(cpu, t, cdur);
                let (_, be) = cx.m.acquire(bus, s, lp.xfer_time(bytes));
                self.q.push(e.max(be), Ev::Finish(op));
            }
            OpKind::Reduce {
                bytes, vectorized, ..
            }
            | OpKind::ReduceFrom {
                bytes, vectorized, ..
            } => {
                let mut lvl = cx.m.topo.depth() - 1;
                if let OpKind::ReduceFrom { from, .. } = o.kind {
                    debug_assert!(
                        cx.m.topo.same_node(from as usize, rank),
                        "ReduceFrom across nodes: {from} -> {rank}"
                    );
                    lvl = cx.link_level(from, o.rank);
                }
                let lp = *cx.m.levels.get(lvl);
                let cpu = cx.m.cpu(rank);
                let bus = cx.m.bus(cx.node_of_rank(o.rank));
                let rdur = lp.reduce_time(bytes, vectorized) + lp.launch;
                let (s, e) = cx.m.acquire(cpu, t, rdur);
                let (_, be) =
                    cx.m.acquire(bus, s, lp.xfer_time(bytes * REDUCE_BUS_FACTOR));
                self.q.push(e.max(be), Ev::Finish(op));
            }
            OpKind::Send { msg } => self.on_send_ready(cx, t, msg),
            OpKind::Recv { msg } => self.on_recv_ready(cx, t, msg),
        }
    }

    fn on_send_ready(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let bytes = meta.bytes;
        let p2p = cx.opts.p2p;
        let eager = p2p.is_eager(bytes);
        let rank = meta.src as usize;
        let node = cx.node_of_rank(meta.src);

        // Snapshot the payload at send time: dependencies guarantee the
        // data is ready, and MPI forbids the sender from touching the
        // buffer until the send completes.
        if let Some(mem) = &self.mem {
            if let Some(sbuf) = meta.sbuf {
                let mut data = self.payload_pool.pop().unwrap_or_default();
                data.clear();
                data.extend_from_slice(mem.read(rank, sbuf));
                self.msg_payload[msg.0 as usize] = Some(data);
            }
        }

        let cpu = cx.m.cpu(rank);
        let mut dur = p2p.o_send;
        if eager {
            // Eager: bounce-buffer copy + per-byte stack work on the CPU.
            dur += p2p.cpu_byte_time(bytes) + cx.m.node.copy_time(bytes);
        }
        let (s, e) = cx.m.acquire(cpu, t, dur);
        let posted = if eager && bytes > 0 {
            // The bounce-buffer copy-in is a local transfer: innermost link.
            let bdur = cx.m.levels.innermost().xfer_time(bytes);
            let bus = cx.m.bus(node);
            let (_, be) = cx.m.acquire(bus, s, bdur);
            e.max(be)
        } else {
            e
        };
        self.q.push(posted, Ev::SendPosted(msg));
    }

    fn on_send_posted(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let mi = msg.0 as usize;
        self.msg_send_posted[mi] = t;
        let meta = cx.prog.msg(msg);
        let eager = cx.opts.p2p.is_eager(meta.bytes);
        let send_op = OpId(self.graph.msg_send_op[mi]);
        debug_assert_ne!(send_op.0, NONE_U32, "message without a send op");
        if eager {
            // Eager sends complete locally as soon as the bounce copy is done.
            self.q.push(t, Ev::Finish(send_op));
            if cx.is_intra(msg) {
                // Data is visible in shared memory after a flag round at
                // the level linking the two ranks.
                let arr = t + cx.flag_latency(meta.src, meta.dst);
                self.q.push(arr, Ev::Arrived(msg));
            } else {
                self.q.push(t, Ev::TxStart(msg));
            }
        } else {
            self.try_start_rendezvous(cx, msg);
        }
    }

    fn on_recv_ready(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let mi = msg.0 as usize;
        self.msg_recv_posted[mi] = t;
        let eager = cx.opts.p2p.is_eager(cx.prog.msg(msg).bytes);
        if eager {
            if self.msg_arrived[mi] != UNSET {
                self.complete_recv(cx, t, msg);
            }
        } else {
            self.try_start_rendezvous(cx, msg);
        }
    }

    /// Once both sides of a rendezvous are posted, schedule the data phase
    /// after the handshake.
    fn try_start_rendezvous(&mut self, cx: &mut Ctx, msg: MsgId) {
        let mi = msg.0 as usize;
        let (sp, rp) = (self.msg_send_posted[mi], self.msg_recv_posted[mi]);
        if sp == UNSET || rp == UNSET {
            return;
        }
        if cx.is_intra(msg) {
            let meta = cx.prog.msg(msg);
            let start = sp.max(rp) + cx.flag_latency(meta.src, meta.dst);
            self.q.push(start, Ev::IntraCopy(msg));
        } else {
            self.q.push(sp.max(rp), Ev::RndvCts(msg));
        }
    }

    /// The receiver's (single-threaded) MPI engine must be free to process
    /// the RTS and reply with the CTS — if it is busy with a shared-memory
    /// copy, the whole transfer is delayed. This is the paper's "ib and sb
    /// share the same CPU resource to progress" effect made concrete.
    fn on_rndv_cts(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let cpu = cx.m.cpu(meta.dst as usize);
        let (_, e) = cx.m.acquire(cpu, t, cx.opts.p2p.o_recv);
        self.q
            .push(e + cx.opts.p2p.rndv_handshake, Ev::TxStart(msg));
    }

    fn on_tx_start(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let bytes = meta.bytes;
        let src_node = cx.node_of_rank(meta.src);
        let (txs, txe) = cx.acquire_rails(src_node, t, bytes, msg, true);
        // Sender-side DMA read competes for the node memory bus; the DMA
        // engine moves the full payload once regardless of rail striping.
        let dma = cx.m.net.dma_bus_time(bytes, &cx.m.node);
        let bus = cx.m.bus(src_node);
        let (_, dbe) = cx.m.acquire(bus, txs, dma);
        let mut eff_tx_end = txe.max(dbe);
        if let Some(core) = cx.m.net_core() {
            let cdur = Time::for_bytes(bytes, cx.m.net.core_bw.unwrap());
            let (_, ce) = cx.m.acquire(core, txs, cdur);
            eff_tx_end = eff_tx_end.max(ce);
        }
        self.msg_eff_tx_end[msg.0 as usize] = eff_tx_end;
        if !cx.opts.p2p.is_eager(bytes) {
            // Rendezvous sends complete when the payload has left the node.
            let send_op = OpId(self.graph.msg_send_op[msg.0 as usize]);
            self.q.push(eff_tx_end, Ev::Finish(send_op));
        }
        // Cut-through: reception starts one wire latency after transmission.
        self.q
            .push(txs + cx.m.levels.get(0).latency, Ev::RxStart(msg));
    }

    fn on_rx_start(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let bytes = meta.bytes;
        let dst_node = cx.node_of_rank(meta.dst);
        let (rxs, rxe) = cx.acquire_rails(dst_node, t, bytes, msg, false);
        // Receiver-side DMA write competes for the node memory bus — the
        // paper's "ib needs to push the data back to memory" effect.
        let dma = cx.m.net.dma_bus_time(bytes, &cx.m.node);
        let bus = cx.m.bus(dst_node);
        let (_, dbe) = cx.m.acquire(bus, rxs, dma);
        let lower_bound = self.msg_eff_tx_end[msg.0 as usize] + cx.m.levels.get(0).latency;
        let arrival = rxe.max(dbe).max(lower_bound);
        self.q.push(arrival, Ev::Arrived(msg));
    }

    fn on_arrived(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let mi = msg.0 as usize;
        self.msg_arrived[mi] = t;
        if self.msg_recv_posted[mi] != UNSET {
            self.complete_recv(cx, t, msg);
        }
    }

    /// Receiver-side completion: CPU processing (+ eager copy-out), then
    /// the recv op finishes. Called at `max(arrived, recv_posted)`.
    fn complete_recv(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let bytes = meta.bytes;
        let rank = meta.dst as usize;
        let node = cx.node_of_rank(meta.dst);
        let p2p = cx.opts.p2p;
        let eager = p2p.is_eager(bytes);
        let mut dur = p2p.o_recv;
        if eager {
            dur += p2p.cpu_byte_time(bytes) + cx.m.node.copy_time(bytes);
        }
        let cpu = cx.m.cpu(rank);
        let (s, e) = cx.m.acquire(cpu, t, dur);
        let fin = if eager && bytes > 0 {
            // The receiver's copy-out reads the sender's bounce buffer:
            // within a node this moves over the level linking the ranks;
            // an inter-node copy-out reads the local NIC bounce buffer
            // (innermost link).
            let lvl = if cx.is_intra(msg) {
                cx.link_level(meta.src, meta.dst)
            } else {
                cx.m.topo.depth() - 1
            };
            let bdur = cx.m.levels.get(lvl).xfer_time(bytes);
            let bus = cx.m.bus(node);
            let (_, be) = cx.m.acquire(bus, s, bdur);
            e.max(be)
        } else {
            e
        };
        let recv_op = OpId(self.graph.msg_recv_op[msg.0 as usize]);
        debug_assert_ne!(recv_op.0, NONE_U32, "message without a recv op");
        self.q.push(fin, Ev::Finish(recv_op));
    }

    /// Intra-node rendezvous: a single receiver-side copy through shared
    /// memory (CMA/KNEM-style), after which both ops complete.
    fn on_intra_copy(&mut self, cx: &mut Ctx, t: Time, msg: MsgId) {
        let meta = cx.prog.msg(msg);
        let bytes = meta.bytes;
        let rank = meta.dst as usize;
        let node = cx.node_of_rank(meta.dst);
        let cpu = cx.m.cpu(rank);
        let dur = cx.opts.p2p.o_recv + cx.m.node.copy_time(bytes);
        let (s, e) = cx.m.acquire(cpu, t, dur);
        let lvl = cx.link_level(meta.src, meta.dst);
        let bdur = cx.m.levels.get(lvl).xfer_time(bytes);
        let bus = cx.m.bus(node);
        let (_, be) = cx.m.acquire(bus, s, bdur);
        let fin = e.max(be);
        let mi = msg.0 as usize;
        let send_op = OpId(self.graph.msg_send_op[mi]);
        let recv_op = OpId(self.graph.msg_recv_op[mi]);
        self.q.push(fin, Ev::Finish(recv_op));
        self.q.push(fin, Ev::Finish(send_op));
    }

    fn on_finish(&mut self, cx: &mut Ctx, t: Time, op: OpId) {
        let idx = op.0 as usize;
        debug_assert!(!self.done[idx], "op {idx} finished twice");
        self.done[idx] = true;
        self.finish[idx] = t;
        self.completed += 1;

        if self.mem.is_some() {
            self.apply_data(cx, op);
        }

        let rank = self.graph.op_rank[idx];
        let (lo, hi) = (
            self.graph.child_off[idx] as usize,
            self.graph.child_off[idx + 1] as usize,
        );
        for ci in lo..hi {
            let c = self.graph.child[ci] as usize;
            let crank = self.graph.op_rank[c];
            // Cross-rank dependencies model shared-memory flags and cost a
            // coherence round trip; cross-node dependencies must be
            // expressed as messages.
            let extra = if crank == rank {
                Time::ZERO
            } else {
                debug_assert_eq!(
                    cx.node_of_rank(crank),
                    cx.node_of_rank(rank),
                    "cross-node dependency {rank}->{crank}; use send/recv"
                );
                cx.flag_latency(rank, crank)
            };
            self.ready_at[c] = self.ready_at[c].max(t + extra);
            self.indeg[c] -= 1;
            if self.indeg[c] == 0 {
                let at = self.ready_at[c];
                self.q.push(at, Ev::Ready(OpId(c as u32)));
            }
        }
    }

    fn apply_data(&mut self, cx: &Ctx, op: OpId) {
        let o = &cx.prog.ops[op.0 as usize];
        let mem = self.mem.as_mut().unwrap();
        let rank = o.rank as usize;
        match &o.kind {
            OpKind::Copy { src, dst, .. } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    mem.copy_within_rank(rank, *s, *d);
                }
            }
            OpKind::CrossCopy { from, src, dst, .. } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    mem.copy_across(*from as usize, *s, rank, *d);
                }
            }
            OpKind::Reduce {
                op: rop,
                dtype,
                src,
                dst,
                ..
            } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(mem.read(rank, *s));
                    let dslice = unsafe_mut_range(mem, rank, *d);
                    crate::datatype::apply_reduce(*dtype, *rop, &self.scratch, dslice);
                }
            }
            OpKind::ReduceFrom {
                from,
                op: rop,
                dtype,
                src,
                dst,
                ..
            } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(mem.read(*from as usize, *s));
                    let dslice = unsafe_mut_range(mem, rank, *d);
                    crate::datatype::apply_reduce(*dtype, *rop, &self.scratch, dslice);
                }
            }
            OpKind::Recv { msg } => {
                let meta = cx.prog.msg(*msg);
                if let Some(dbuf) = meta.dbuf {
                    if let Some(payload) = self.msg_payload[msg.0 as usize].take() {
                        mem.write(rank, dbuf, &payload);
                        self.payload_pool.push(payload);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Mutable view of a range in a rank's memory. Separate helper because the
/// borrow checker cannot see that the `tmp` read above was copied out.
fn unsafe_mut_range(mem: &mut Memory, rank: usize, r: crate::buffer::BufRange) -> &mut [u8] {
    // Safe: `Memory::read` clones were taken before this call; this is the
    // only live mutable borrow.
    let ptr = mem.read(rank, r).as_ptr() as *mut u8;
    unsafe { std::slice::from_raw_parts_mut(ptr, r.len as usize) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::datatype::{DataType, ReduceOp};
    use han_machine::{mini, Flavor, Machine};

    fn machine(nodes: usize, ppn: usize) -> Machine {
        Machine::from_preset(&mini(nodes, ppn))
    }

    fn opts() -> ExecOpts {
        ExecOpts::timing(Flavor::OpenMpi.p2p())
    }

    #[test]
    fn empty_program() {
        let mut m = machine(1, 1);
        let p = ProgramBuilder::new(1).build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.makespan, Time::ZERO);
    }

    #[test]
    fn sleep_does_not_use_cpu_but_delay_does() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        b.sleep(0, Time::from_us(5), &[]);
        b.delay(0, Time::from_us(3), &[]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.makespan, Time::from_us(5));
        assert_eq!(m.pool().get(m.cpu(0)).busy_time(), Time::from_us(3));
    }

    #[test]
    fn dependency_chain_is_sequential() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.delay(0, Time::from_us(2), &[a]);
        let d = b.sleep(0, Time::from_us(3), &[c]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.finish(a), Time::from_us(1));
        assert_eq!(r.finish(c), Time::from_us(3));
        assert_eq!(r.finish(d), Time::from_us(6));
    }

    #[test]
    fn cross_rank_dep_costs_flag_latency() {
        let mut m = machine(1, 2);
        let flag = m.node.flag_latency;
        let mut b = ProgramBuilder::new(2);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.nop(1, &[a]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.finish(c), Time::from_us(1) + flag);
    }

    #[test]
    fn inter_node_eager_message_timing() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let (s, r) = b.send_recv(0, 1, 1024, None, None, &[], &[]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        // Eager send completes locally, before the recv.
        assert!(rep.finish(s) < rep.finish(r));
        // End-to-end must include at least the wire latency.
        assert!(rep.finish(r) > m.net.latency);
    }

    #[test]
    fn inter_node_rendezvous_send_completes_with_transfer() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let bytes = 1 << 20; // 1 MiB: rendezvous for every flavour
        let (s, r) = b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        let wire = m.net.wire_time(bytes);
        // The send completes only after the payload left the node.
        assert!(rep.finish(s) >= wire);
        assert!(rep.finish(r) >= rep.finish(s));
        // Sanity: total under 3x wire time (no pathological serialization).
        assert!(rep.finish(r) < wire * 3);
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let mut m = machine(2, 1);
        let bytes = 1 << 20;
        // Receiver sleeps 1 ms before posting.
        let mut b = ProgramBuilder::new(2);
        let z = b.sleep(1, Time::from_ms(1), &[]);
        let (_, r) = b.send_recv(0, 1, bytes, None, None, &[], &[z]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        assert!(rep.finish(r) > Time::from_ms(1));
    }

    #[test]
    fn eager_does_not_wait_for_late_receiver_cpu_much() {
        let mut m = machine(2, 1);
        let bytes = 512; // eager
        let mut b = ProgramBuilder::new(2);
        let z = b.sleep(1, Time::from_ms(1), &[]);
        let (_, r) = b.send_recv(0, 1, bytes, None, None, &[], &[z]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        // Data was already there; only the receiver-side completion
        // processing happens after the 1 ms.
        let slack = rep.finish(r) - Time::from_ms(1);
        assert!(slack < Time::from_us(2), "slack {slack}");
    }

    #[test]
    fn same_direction_transfers_serialize_on_nic() {
        // Two rendezvous sends 0->1 and 0->2 (different nodes) leave the
        // same NIC: total ≈ 2x one transfer.
        let bytes = 4 << 20;
        let mut m = machine(3, 1);
        let mut b = ProgramBuilder::new(3);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        b.send_recv(0, 2, bytes, None, None, &[], &[]);
        let two = execute(&mut m, &b.build(), &opts()).makespan;

        let mut b = ProgramBuilder::new(3);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let one = execute(&mut m, &b.build(), &opts()).makespan;

        let ratio = two.as_ps() as f64 / one.as_ps() as f64;
        assert!(ratio > 1.7, "expected ~2x serialization, got {ratio:.2}x");
    }

    #[test]
    fn opposite_directions_overlap_on_full_duplex_nic() {
        // 0->1 and 1->0 simultaneously: full duplex, ~1x one transfer.
        let bytes = 4 << 20;
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        b.send_recv(1, 0, bytes, None, None, &[], &[]);
        let duplex = execute(&mut m, &b.build(), &opts()).makespan;

        let mut b = ProgramBuilder::new(2);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let one = execute(&mut m, &b.build(), &opts()).makespan;

        let ratio = duplex.as_ps() as f64 / one.as_ps() as f64;
        assert!(ratio < 1.3, "full duplex should overlap, got {ratio:.2}x");
    }

    #[test]
    fn intra_node_message_avoids_nic() {
        let bytes = 64 * 1024;
        let mut m = machine(2, 2);
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 1, bytes, None, None, &[], &[]); // same node
        let p = b.build();
        execute(&mut m, &p, &opts());
        assert_eq!(m.pool().get(m.nic_tx(0)).requests(), 0);
        assert_eq!(m.pool().get(m.nic_rx(0)).requests(), 0);
        assert!(m.pool().get(m.bus(0)).requests() > 0);
    }

    #[test]
    fn intra_faster_than_inter_for_large() {
        let bytes = 1 << 20;
        let mut m = machine(2, 2);
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 1, bytes, None, None, &[], &[]); // intra
        let intra = execute(&mut m, &b.build(), &opts()).makespan;
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 2, bytes, None, None, &[], &[]); // inter
        let inter = execute(&mut m, &b.build(), &opts()).makespan;
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn data_delivery_inter_node() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let sbuf = b.alloc(0, 8);
        let dbuf = b.alloc(1, 8);
        b.send_recv(0, 1, 8, Some(sbuf), Some(dbuf), &[], &[]);
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            mm.write(0, sbuf, &[1, 2, 3, 4, 5, 6, 7, 8])
        });
        assert_eq!(mem.read(1, dbuf), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn data_delivery_rendezvous() {
        let mut m = machine(2, 1);
        let bytes = 1u64 << 20;
        let mut b = ProgramBuilder::new(2);
        let sbuf = b.alloc(0, bytes);
        let dbuf = b.alloc(1, bytes);
        b.send_recv(0, 1, bytes, Some(sbuf), Some(dbuf), &[], &[]);
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
            mm.write(0, sbuf, &data);
        });
        let out = mem.read(1, dbuf);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i % 251) as u8));
    }

    #[test]
    fn reduce_data_applies() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        let src = b.alloc(0, 8);
        let dst = b.alloc(0, 8);
        b.op(
            0,
            OpKind::Reduce {
                bytes: 8,
                vectorized: true,
                op: ReduceOp::Sum,
                dtype: DataType::Int32,
                src: Some(src),
                dst: Some(dst),
            },
            &[],
        );
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            mm.write(0, src, &as_i32(&[5, 6]));
            mm.write(0, dst, &as_i32(&[1, 2]));
        });
        assert_eq!(mem.read(0, dst), as_i32(&[6, 8]).as_slice());
    }

    #[test]
    fn cross_copy_moves_data_and_charges_bus() {
        let mut m = machine(1, 2);
        let mut b = ProgramBuilder::new(2);
        let src = b.alloc(0, 4);
        let dst = b.alloc(1, 4);
        b.op(
            1,
            OpKind::CrossCopy {
                from: 0,
                bytes: 4,
                src: Some(src),
                dst: Some(dst),
            },
            &[],
        );
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| mm.write(0, src, &[9, 9, 8, 8]));
        assert_eq!(mem.read(1, dst), &[9, 9, 8, 8]);
        assert!(m.pool().get(m.bus(0)).busy_time() > Time::ZERO);
    }

    #[test]
    fn start_skew_delays_rank_roots() {
        let mut m = machine(1, 2);
        let mut b = ProgramBuilder::new(2);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.delay(1, Time::from_us(1), &[]);
        let p = b.build();
        let o = opts().with_skew(vec![Time::ZERO, Time::from_us(10)]);
        let r = execute(&mut m, &p, &o);
        assert_eq!(r.finish(a), Time::from_us(1));
        assert_eq!(r.finish(c), Time::from_us(11));
    }

    fn as_i32(xs: &[i32]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn single_rail_machine_times_are_unchanged_by_rail_plumbing() {
        // rails=1 must be byte-identical through both policies.
        use han_machine::RailPolicy;
        let bytes = 1 << 20;
        let mut times = vec![];
        for policy in [RailPolicy::RoundRobin, RailPolicy::Stripe] {
            let mut m = Machine::from_preset(&mini(2, 1).with_rails(1, policy));
            let mut b = ProgramBuilder::new(2);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            let r = execute(&mut m, &b.build(), &opts());
            times.push((r.makespan, r.events));
        }
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn striping_speeds_up_a_single_large_transfer() {
        use han_machine::RailPolicy;
        let bytes = 16 << 20; // rendezvous
        let run = |rails: usize, policy| {
            let mut m = Machine::from_preset(&mini(2, 1).with_rails(rails, policy));
            let mut b = ProgramBuilder::new(2);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let one = run(1, RailPolicy::RoundRobin);
        let striped = run(4, RailPolicy::Stripe);
        let rr = run(4, RailPolicy::RoundRobin);
        let ratio = one.as_ps() as f64 / striped.as_ps() as f64;
        assert!(
            ratio > 2.5,
            "4-rail striping should approach 4x on one large message, got {ratio:.2}x"
        );
        // Round-robin cannot accelerate a single message.
        assert!(rr >= striped);
        let rr_ratio = one.as_ps() as f64 / rr.as_ps() as f64;
        assert!(
            rr_ratio < 1.3,
            "round-robin single msg ~1x, got {rr_ratio:.2}x"
        );
    }

    #[test]
    fn round_robin_spreads_concurrent_messages_across_rails() {
        use han_machine::RailPolicy;
        let bytes = 4 << 20;
        let run = |rails: usize| {
            let mut m = Machine::from_preset(&mini(3, 1).with_rails(rails, RailPolicy::RoundRobin));
            let mut b = ProgramBuilder::new(3);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            b.send_recv(0, 2, bytes, None, None, &[], &[]);
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let serial = run(1);
        let parallel = run(2);
        let ratio = serial.as_ps() as f64 / parallel.as_ps() as f64;
        assert!(
            ratio > 1.6,
            "two messages on two rails should overlap, got {ratio:.2}x"
        );
    }

    #[test]
    fn level_override_changes_intra_node_cost() {
        use han_machine::LevelParams;
        let bytes = 4 << 20;
        let base = mini(2, 2);
        let fast = base.with_level_override(
            1,
            LevelParams {
                bandwidth: base.node.bus_bw * 8.0,
                latency: Time::from_ns(20),
                reduce_rate: base.node.reduce_rate,
                reduce_rate_avx: base.node.reduce_rate_avx,
                launch: Time::ZERO,
            },
        );
        let run = |p: &han_machine::MachinePreset| {
            let mut m = Machine::from_preset(p);
            let mut b = ProgramBuilder::new(4);
            b.send_recv(0, 1, bytes, None, None, &[], &[]); // intra-node
            execute(&mut m, &b.build(), &opts()).makespan
        };
        assert!(run(&fast) < run(&base));
    }

    #[test]
    fn launch_overhead_charged_per_compute_op() {
        let base = mini(1, 2);
        let launch = Time::from_us(7);
        let mut lp = *base.level_params().get(1);
        lp.launch = launch;
        let gpu = base.with_level_override(1, lp);
        let run = |p: &han_machine::MachinePreset| {
            let mut m = Machine::from_preset(p);
            let mut b = ProgramBuilder::new(2);
            b.op(
                0,
                OpKind::Copy {
                    bytes: 64,
                    src: None,
                    dst: None,
                },
                &[],
            );
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let delta = run(&gpu) - run(&base);
        assert_eq!(delta, launch, "one Copy pays exactly one launch");
    }

    // ---- Executor core v3: reuse and delta re-simulation ----

    #[test]
    fn executor_reuse_across_programs_matches_fresh_execute() {
        let mut ex = Executor::new();
        let mut m = machine(2, 2);
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 1, 4096, None, None, &[], &[]);
        b.send_recv(0, 2, 1 << 20, None, None, &[], &[]);
        let pa = b.build();
        let mut b = ProgramBuilder::new(4);
        let a = b.delay(0, Time::from_us(1), &[]);
        b.nop(1, &[a]);
        let pb = b.build();
        // Alternate structures so the cached CSR is rebuilt and re-hit.
        for p in [&pa, &pb, &pa, &pb] {
            let r1 = ex.execute(&mut m, p, &opts());
            let r2 = execute(&mut m, p, &opts());
            assert_eq!(r1.makespan, r2.makespan);
            assert_eq!(r1.op_finishes(), r2.op_finishes());
            assert_eq!(r1.rank_finish, r2.rank_finish);
            assert_eq!(r1.events, r2.events);
        }
    }

    #[test]
    fn delta_identical_program_returns_recorded_report() {
        let mut ex = Executor::new();
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        b.send_recv(0, 1, 1 << 20, None, None, &[], &[]);
        let p = b.build();
        let rec = ex.run_recorded(&mut m, &p, &opts());
        let r = ex
            .run_delta(&mut m, &p.clone(), &opts(), &rec)
            .expect("identical program is always a delta hit");
        assert_eq!(r.makespan, rec.report().makespan);
        assert_eq!(r.op_finishes(), rec.report().op_finishes());
        assert_eq!(r.events, rec.report().events);
    }

    /// A checkpoint-free trace still serves exact-match replay; a
    /// scalar-divergent replay finds no checkpoint and returns `None`.
    #[test]
    fn traced_recording_serves_exact_match_only() {
        let build = |tail_us: u64| {
            let mut b = ProgramBuilder::new(1);
            let mut prev = None;
            for _ in 0..300u64 {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(b.delay(0, Time::from_ns(100), &deps));
            }
            b.delay(
                0,
                Time::from_us(tail_us),
                &prev.into_iter().collect::<Vec<_>>(),
            );
            b.build()
        };
        let mut ex = Executor::new();
        let mut m = machine(1, 1);
        let rec = ex.run_traced(&mut m, &build(1), &opts());
        assert_eq!(rec.checkpoint_count(), 0, "trace takes no checkpoints");
        let exact = ex
            .run_delta(&mut m, &build(1), &opts(), &rec)
            .expect("identical program replays against a trace");
        assert_eq!(exact.makespan, rec.report().makespan);
        assert!(
            ex.run_delta(&mut m, &build(2), &opts(), &rec).is_none(),
            "partial replay needs checkpoints"
        );
    }

    /// A long single-rank delay chain with one op's duration changed near
    /// the end: divergence lands far past several checkpoints, so delta
    /// replay restores mid-run and must still be bit-identical.
    #[test]
    fn delta_partial_replay_is_bit_identical() {
        let build = |tail_us: u64| {
            let mut b = ProgramBuilder::new(2);
            let mut prev = None;
            for i in 0..1200u64 {
                let deps: Vec<_> = prev.into_iter().collect();
                let dur = if i == 1100 {
                    Time::from_us(tail_us)
                } else {
                    Time::from_ns(100)
                };
                prev = Some(b.delay(0, dur, &deps));
            }
            b.delay(1, Time::from_us(3), &[]);
            b.build()
        };
        let mut ex = Executor::new();
        let mut m = machine(1, 2);
        let rec = ex.run_recorded(&mut m, &build(1), &opts());
        assert!(rec.checkpoint_count() > 0, "long run must checkpoint");
        let changed = build(9);
        let delta = ex
            .run_delta(&mut m, &changed, &opts(), &rec)
            .expect("late divergence should find a usable checkpoint");
        let full = execute(&mut m, &changed, &opts());
        assert_eq!(delta.makespan, full.makespan);
        assert_eq!(delta.op_finishes(), full.op_finishes());
        assert_eq!(delta.rank_finish, full.rank_finish);
        assert_eq!(delta.events, full.events);
    }

    /// Changing a message's byte count re-times the whole P2P chain; the
    /// endpoints become ready only after long per-rank prefixes, so delta
    /// replay restores a checkpoint and re-simulates just the transfer.
    #[test]
    fn delta_message_scalar_change_is_bit_identical() {
        let build = |bytes: u64| {
            let mut b = ProgramBuilder::new(2);
            let mut p0 = None;
            for _ in 0..400 {
                let deps: Vec<_> = p0.into_iter().collect();
                p0 = Some(b.delay(0, Time::from_ns(50), &deps));
            }
            let mut p1 = None;
            for _ in 0..400 {
                let deps: Vec<_> = p1.into_iter().collect();
                p1 = Some(b.delay(1, Time::from_ns(50), &deps));
            }
            b.send_recv(0, 1, bytes, None, None, &[p0.unwrap()], &[p1.unwrap()]);
            b.build()
        };
        let mut ex = Executor::new();
        let mut m = machine(2, 1);
        let rec = ex.run_recorded(&mut m, &build(1 << 20), &opts());
        // Crossing the eager/rendezvous boundary changes the event chain
        // itself; the suffix re-simulation must produce the new chain.
        for bytes in [2 << 20, 512] {
            let changed = build(bytes);
            let delta = ex
                .run_delta(&mut m, &changed, &opts(), &rec)
                .expect("endpoints ready late: checkpoint available");
            let full = execute(&mut m, &changed, &opts());
            assert_eq!(delta.makespan, full.makespan);
            assert_eq!(delta.op_finishes(), full.op_finishes());
            assert_eq!(delta.events, full.events);
        }
    }

    #[test]
    fn delta_early_divergence_without_checkpoint_falls_back() {
        let build = |first_us: u64| {
            let mut b = ProgramBuilder::new(1);
            let mut prev = None;
            for i in 0..600u64 {
                let deps: Vec<_> = prev.into_iter().collect();
                let dur = if i == 0 {
                    Time::from_us(first_us)
                } else {
                    Time::from_ns(10)
                };
                prev = Some(b.delay(0, dur, &deps));
            }
            b.build()
        };
        let mut ex = Executor::new();
        let mut m = machine(1, 1);
        let rec = ex.run_recorded(&mut m, &build(1), &opts());
        // Divergence at pop 0 precedes every checkpoint: caller must fall
        // back to a full run.
        assert!(ex.run_delta(&mut m, &build(2), &opts(), &rec).is_none());
    }

    #[test]
    fn delta_rejects_structural_mismatch_and_skew() {
        let mut ex = Executor::new();
        let mut m = machine(1, 2);
        let mut b = ProgramBuilder::new(2);
        let a = b.delay(0, Time::from_us(1), &[]);
        b.nop(1, &[a]);
        let p = b.build();
        let rec = ex.run_recorded(&mut m, &p, &opts());
        // Different DAG structure.
        let mut b = ProgramBuilder::new(2);
        b.delay(0, Time::from_us(1), &[]);
        b.nop(1, &[]);
        let other = b.build();
        assert!(ex.run_delta(&mut m, &other, &opts(), &rec).is_none());
        // Start skew is outside the recorded state space.
        let skew = opts().with_skew(vec![Time::ZERO, Time::ZERO]);
        assert!(ex.run_delta(&mut m, &p, &skew, &rec).is_none());
    }
}
