//! The discrete-event executor.
//!
//! Runs a [`Program`] against a [`Machine`], producing per-op virtual
//! completion times (and, in data mode, real buffer contents). The
//! executor implements the P2P transport — eager and rendezvous protocols
//! over the NIC/bus/CPU resources — and the dependency propagation that
//! turns HAN's task DAGs into pipelined execution.
//!
//! ## Transport model
//!
//! *Inter-node eager* (`bytes <= eager_limit`): the sender CPU copies the
//! payload into a bounce buffer and returns; the NIC streams it out
//! immediately (no receiver involvement); the receiver CPU copies it out of
//! the bounce buffer once both the data and the receive are present.
//!
//! *Inter-node rendezvous*: send and receive first handshake (RTS/CTS,
//! [`P2pParams::rndv_handshake`]); the NIC then moves the payload zero-copy
//! by DMA. DMA traffic occupies the *memory bus* on both endpoints — the
//! paper's first reason why `ib` does not overlap perfectly with `sb`
//! ("ib needs to push the data back to memory which competes with sb for
//! the memory bus", section III-A2).
//!
//! *Intra-node*: eager messages take two copies through shared memory
//! (sender copy-in, receiver copy-out); rendezvous messages take a single
//! receiver-side copy (CMA/KNEM-style), started after both sides are
//! posted.
//!
//! Every CPU charge goes through the rank's FIFO CPU resource — the
//! single-threaded progression engine — which is the paper's second reason
//! for imperfect overlap ("ib and sb share the same CPU resource to
//! progress").

use crate::buffer::Memory;
use crate::program::{MsgId, OpId, OpKind, Program};
use han_machine::{Machine, P2pParams, RailPolicy};
use std::sync::atomic::{AtomicU64, Ordering};

use han_sim::{EngineStats, EventQueue, Time};

/// How much work the executor does per event.
///
/// Virtual times are **bit-identical** across modes: payload movement never
/// influences resource occupancy, only real wall-clock spent simulating.
/// Tuning sweeps therefore run `TimingOnly` (no per-rank memories, no
/// payload copies) while correctness tests keep `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Model resource occupancy only; skip all payload reads/copies.
    #[default]
    TimingOnly,
    /// Additionally materialize per-rank memories and move real bytes.
    Full,
}

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Point-to-point protocol parameters (per MPI library flavour).
    pub p2p: P2pParams,
    /// Timing-only fast path vs. full data movement (correctness mode).
    pub mode: ExecMode,
    /// Per-rank start skew: ops without dependencies on rank `r` become
    /// ready at `start_times[r]`. Used by the task benchmarks that must
    /// "delay the participation of each process by the duration of the
    /// ib(0) step" (paper section III-A2) and by imbalance injection.
    pub start_times: Option<Vec<Time>>,
}

impl ExecOpts {
    pub fn timing(p2p: P2pParams) -> Self {
        ExecOpts {
            p2p,
            mode: ExecMode::TimingOnly,
            start_times: None,
        }
    }

    pub fn with_data(p2p: P2pParams) -> Self {
        ExecOpts {
            p2p,
            mode: ExecMode::Full,
            start_times: None,
        }
    }

    pub fn with_mode(p2p: P2pParams, mode: ExecMode) -> Self {
        ExecOpts {
            p2p,
            mode,
            start_times: None,
        }
    }

    pub fn with_skew(mut self, start_times: Vec<Time>) -> Self {
        self.start_times = Some(start_times);
        self
    }

    /// True when real bytes are moved (a [`Memory`] will be produced).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.mode == ExecMode::Full
    }
}

/// Result of executing a program.
#[derive(Debug, Clone)]
pub struct Report {
    op_finish: Vec<Time>,
    /// Completion time of the last op on each rank.
    pub rank_finish: Vec<Time>,
    /// Completion time of the whole program: `max(rank_finish)`. This is
    /// the cost definition the paper adopts from IMB/OSU ("the longest
    /// time among all the processes").
    pub makespan: Time,
    /// Number of simulator events processed (engine statistic).
    pub events: u64,
    /// Event-engine counters for this execution (pushes, pops, clamped
    /// past-scheduled events, peak queue depth).
    pub engine: EngineStats,
}

impl Report {
    /// Finish time of a specific op (e.g. a task's join nop).
    pub fn finish(&self, op: OpId) -> Time {
        self.op_finish[op.0 as usize]
    }
}

/// Process-wide event-engine totals, accumulated across every execution
/// (all threads). `clamped > 0` means some event was scheduled in the past
/// and silently clamped — a simulator bug that release builds would
/// otherwise hide.
static TOTAL_PUSHES: AtomicU64 = AtomicU64::new(0);
static TOTAL_POPS: AtomicU64 = AtomicU64::new(0);
static TOTAL_CLAMPED: AtomicU64 = AtomicU64::new(0);
static TOTAL_MAX_DEPTH: AtomicU64 = AtomicU64::new(0);

fn accumulate_engine_totals(s: &EngineStats) {
    TOTAL_PUSHES.fetch_add(s.pushes, Ordering::Relaxed);
    TOTAL_POPS.fetch_add(s.pops, Ordering::Relaxed);
    TOTAL_CLAMPED.fetch_add(s.clamped, Ordering::Relaxed);
    TOTAL_MAX_DEPTH.fetch_max(s.max_depth, Ordering::Relaxed);
}

/// Snapshot of the process-wide engine totals.
pub fn engine_totals() -> EngineStats {
    EngineStats {
        pushes: TOTAL_PUSHES.load(Ordering::Relaxed),
        pops: TOTAL_POPS.load(Ordering::Relaxed),
        clamped: TOTAL_CLAMPED.load(Ordering::Relaxed),
        max_depth: TOTAL_MAX_DEPTH.load(Ordering::Relaxed),
    }
}

/// Reset the process-wide engine totals (benchmark harnesses).
pub fn reset_engine_totals() {
    TOTAL_PUSHES.store(0, Ordering::Relaxed);
    TOTAL_POPS.store(0, Ordering::Relaxed);
    TOTAL_CLAMPED.store(0, Ordering::Relaxed);
    TOTAL_MAX_DEPTH.store(0, Ordering::Relaxed);
}

/// Execute `prog` on `machine` (resources are reset first).
pub fn execute(machine: &mut Machine, prog: &Program, opts: &ExecOpts) -> Report {
    let (report, _) = run(machine, prog, opts);
    report
}

/// Execute in data mode and return the final memories as well.
pub fn execute_with_memory(
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
) -> (Report, Memory) {
    assert!(
        opts.is_full(),
        "execute_with_memory requires ExecMode::Full"
    );
    let (report, mem) = run(machine, prog, opts);
    (report, mem.expect("data mode produces memory"))
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// All dependencies of the op are satisfied.
    Ready(OpId),
    /// The send-side CPU phase of a message completed.
    SendPosted(MsgId),
    /// Both sides of a rendezvous are posted: the receiver's CPU must
    /// progress the CTS response before data can flow.
    RndvCts(MsgId),
    /// Begin NIC transmission (inter-node).
    TxStart(MsgId),
    /// Begin NIC reception (inter-node, cut-through: latency after tx start).
    RxStart(MsgId),
    /// Payload fully arrived at the destination endpoint.
    Arrived(MsgId),
    /// Begin the single receiver-side copy (intra-node rendezvous).
    IntraCopy(MsgId),
    /// The op is complete; propagate to dependents.
    Finish(OpId),
}

#[derive(Debug, Clone, Default)]
struct MsgState {
    send_op: Option<OpId>,
    recv_op: Option<OpId>,
    send_posted: Option<Time>,
    recv_posted: Option<Time>,
    arrived: Option<Time>,
    /// Effective end of transmission (NIC tx + sender-side DMA), used to
    /// lower-bound arrival and to complete rendezvous sends.
    eff_tx_end: Time,
    payload: Option<Vec<u8>>,
}

/// Bus traffic factor for reductions: operands are read and the result
/// written, ~2 bytes of bus traffic per reduced byte.
const REDUCE_BUS_FACTOR: u64 = 2;

struct Exec<'a> {
    m: &'a mut Machine,
    prog: &'a Program,
    opts: &'a ExecOpts,
    q: EventQueue<Ev>,
    indeg: Vec<u32>,
    ready_at: Vec<Time>,
    finish: Vec<Time>,
    done: Vec<bool>,
    // children in CSR form
    child_off: Vec<u32>,
    child: Vec<u32>,
    msgs: Vec<MsgState>,
    mem: Option<Memory>,
    completed: usize,
    /// Reusable operand buffer for Reduce/ReduceFrom in Full mode; the
    /// executor is single-threaded so one buffer serves every rank.
    scratch: Vec<u8>,
    /// Free list of payload buffers. Send snapshots pop from here and are
    /// returned when the matching Recv delivers, so steady-state execution
    /// allocates only up to the peak number of in-flight messages.
    payload_pool: Vec<Vec<u8>>,
}

fn run(machine: &mut Machine, prog: &Program, opts: &ExecOpts) -> (Report, Option<Memory>) {
    let mem = opts.is_full().then(|| Memory::new(&prog.mem_size));
    run_inner(machine, prog, opts, mem)
}

fn run_inner(
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
    mem: Option<Memory>,
) -> (Report, Option<Memory>) {
    debug_assert_eq!(prog.validate(), Ok(()));
    machine.reset();

    let n = prog.ops.len();
    // Build CSR of children.
    let mut child_off = vec![0u32; n + 1];
    for op in &prog.ops {
        for d in &op.deps {
            child_off[d.0 as usize + 1] += 1;
        }
    }
    for i in 0..n {
        child_off[i + 1] += child_off[i];
    }
    let mut cursor = child_off.clone();
    let mut child = vec![0u32; child_off[n] as usize];
    for (i, op) in prog.ops.iter().enumerate() {
        for d in &op.deps {
            let c = &mut cursor[d.0 as usize];
            child[*c as usize] = i as u32;
            *c += 1;
        }
    }

    let mut msgs = vec![MsgState::default(); prog.msgs.len()];
    for (i, op) in prog.ops.iter().enumerate() {
        match op.kind {
            OpKind::Send { msg } => msgs[msg.0 as usize].send_op = Some(OpId(i as u32)),
            OpKind::Recv { msg } => msgs[msg.0 as usize].recv_op = Some(OpId(i as u32)),
            _ => {}
        }
    }

    let mut ex = Exec {
        m: machine,
        prog,
        opts,
        q: EventQueue::new(),
        indeg: prog.ops.iter().map(|o| o.deps.len() as u32).collect(),
        ready_at: vec![Time::ZERO; n],
        finish: vec![Time::ZERO; n],
        done: vec![false; n],
        child_off,
        child,
        msgs,
        mem,
        completed: 0,
        scratch: Vec::new(),
        payload_pool: Vec::new(),
    };

    // A rank executes nothing before its arrival time: floor every op's
    // readiness at the rank's start time, and seed dependency-free ops.
    for (i, op) in prog.ops.iter().enumerate() {
        let t0 = ex
            .opts
            .start_times
            .as_ref()
            .map(|s| s[op.rank as usize])
            .unwrap_or(Time::ZERO);
        ex.ready_at[i] = t0;
        if op.deps.is_empty() {
            ex.q.push(t0, Ev::Ready(OpId(i as u32)));
        }
    }

    while let Some((t, ev)) = ex.q.pop() {
        ex.handle(t, ev);
    }

    assert_eq!(
        ex.completed, n,
        "deadlock: {} of {n} ops completed (dependency cycle or unmatched message)",
        ex.completed
    );

    let mut rank_finish = vec![Time::ZERO; prog.nranks];
    for (i, op) in prog.ops.iter().enumerate() {
        let r = op.rank as usize;
        rank_finish[r] = rank_finish[r].max(ex.finish[i]);
    }
    let makespan = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
    let engine = ex.q.stats();
    accumulate_engine_totals(&engine);
    let report = Report {
        op_finish: ex.finish,
        rank_finish,
        makespan,
        events: engine.pops,
        engine,
    };
    (report, ex.mem)
}

impl<'a> Exec<'a> {
    fn handle(&mut self, t: Time, ev: Ev) {
        match ev {
            Ev::Ready(op) => self.on_ready(t, op),
            Ev::SendPosted(msg) => self.on_send_posted(t, msg),
            Ev::RndvCts(msg) => self.on_rndv_cts(t, msg),
            Ev::TxStart(msg) => self.on_tx_start(t, msg),
            Ev::RxStart(msg) => self.on_rx_start(t, msg),
            Ev::Arrived(msg) => self.on_arrived(t, msg),
            Ev::IntraCopy(msg) => self.on_intra_copy(t, msg),
            Ev::Finish(op) => self.on_finish(t, op),
        }
    }

    #[inline]
    fn node_of_rank(&self, rank: u32) -> usize {
        self.m.topo.node_of(rank as usize)
    }

    fn is_intra(&self, msg: MsgId) -> bool {
        let meta = self.prog.msg(msg);
        self.m.topo.same_node(meta.src as usize, meta.dst as usize)
    }

    /// The hierarchy level whose link two ranks communicate over. On a
    /// uniform machine the level's parameters carry exactly the values the
    /// single `NodeParams`/`NetParams` pair implies, so level-indexed
    /// costing is bit-identical to the historical model.
    #[inline]
    fn link_level(&self, a: u32, b: u32) -> usize {
        self.m.topo.link_level(a as usize, b as usize)
    }

    /// Latency of an intra-node synchronization flag between two ranks:
    /// the latency of the level linking them.
    #[inline]
    fn flag_latency(&self, a: u32, b: u32) -> han_sim::Time {
        self.m.levels.get(self.link_level(a, b)).latency
    }

    /// NIC occupancy: acquire the source/destination rails for `bytes` of
    /// `msg` at node `node`. Returns (earliest rail start, latest rail
    /// end). With one rail this is exactly the historical single-NIC
    /// acquisition; round-robin keeps whole messages on one rail chosen by
    /// message id, striping splits the payload evenly across all rails.
    fn acquire_rails(
        &mut self,
        node: usize,
        t: Time,
        bytes: u64,
        msg: MsgId,
        tx: bool,
    ) -> (Time, Time) {
        let rails = self.m.net.rails;
        let bw = self.m.levels.get(0).bandwidth;
        if rails == 1 || self.m.net.rail_policy == RailPolicy::RoundRobin {
            let rail = msg.0 as usize % rails;
            let id = if tx {
                self.m.nic_tx_rail(node, rail)
            } else {
                self.m.nic_rx_rail(node, rail)
            };
            return self.m.acquire(id, t, Time::for_bytes(bytes, bw));
        }
        // Stripe: even byte split, first `bytes % rails` rails carry one
        // extra byte.
        let base = bytes / rails as u64;
        let rem = bytes % rails as u64;
        let mut s_min: Option<Time> = None;
        let mut e_max = Time::ZERO;
        for r in 0..rails {
            let chunk = base + u64::from((r as u64) < rem);
            let id = if tx {
                self.m.nic_tx_rail(node, r)
            } else {
                self.m.nic_rx_rail(node, r)
            };
            let (s, e) = self.m.acquire(id, t, Time::for_bytes(chunk, bw));
            s_min = Some(s_min.map_or(s, |m| m.min(s)));
            e_max = e_max.max(e);
        }
        (s_min.unwrap(), e_max)
    }

    fn on_ready(&mut self, t: Time, op: OpId) {
        let o = &self.prog.ops[op.0 as usize];
        let rank = o.rank as usize;
        let node = self.node_of_rank(o.rank);
        match o.kind {
            OpKind::Nop => self.q.push(t, Ev::Finish(op)),
            OpKind::Sleep { dur } => self.q.push(t + dur, Ev::Finish(op)),
            OpKind::Delay { dur } => {
                let cpu = self.m.cpu(rank);
                let (_, e) = self.m.acquire(cpu, t, dur);
                self.q.push(e, Ev::Finish(op));
            }
            OpKind::Copy { bytes, .. } | OpKind::CrossCopy { bytes, .. } => {
                // Local copies use the innermost link; cross-rank copies
                // the link level joining the two ranks. On uniform
                // machines both carry exactly the old bus/cross-socket
                // rates; heterogeneous levels add a launch overhead and
                // their own bandwidth.
                let mut lvl = self.m.topo.depth() - 1;
                if let OpKind::CrossCopy { from, .. } = o.kind {
                    debug_assert!(
                        self.m.topo.same_node(from as usize, rank),
                        "CrossCopy across nodes: {from} -> {rank}"
                    );
                    lvl = self.link_level(from, o.rank);
                }
                let lp = *self.m.levels.get(lvl);
                let cpu = self.m.cpu(rank);
                let bus = self.m.bus(node);
                let cdur = self.m.node.copy_time(bytes) + lp.launch;
                let (s, e) = self.m.acquire(cpu, t, cdur);
                let (_, be) = self.m.acquire(bus, s, lp.xfer_time(bytes));
                self.q.push(e.max(be), Ev::Finish(op));
            }
            OpKind::Reduce {
                bytes, vectorized, ..
            }
            | OpKind::ReduceFrom {
                bytes, vectorized, ..
            } => {
                let mut lvl = self.m.topo.depth() - 1;
                if let OpKind::ReduceFrom { from, .. } = o.kind {
                    debug_assert!(
                        self.m.topo.same_node(from as usize, rank),
                        "ReduceFrom across nodes: {from} -> {rank}"
                    );
                    lvl = self.link_level(from, o.rank);
                }
                let lp = *self.m.levels.get(lvl);
                let cpu = self.m.cpu(rank);
                let bus = self.m.bus(node);
                let rdur = lp.reduce_time(bytes, vectorized) + lp.launch;
                let (s, e) = self.m.acquire(cpu, t, rdur);
                let (_, be) = self
                    .m
                    .acquire(bus, s, lp.xfer_time(bytes * REDUCE_BUS_FACTOR));
                self.q.push(e.max(be), Ev::Finish(op));
            }
            OpKind::Send { msg } => self.on_send_ready(t, op, msg),
            OpKind::Recv { msg } => self.on_recv_ready(t, msg),
        }
    }

    fn on_send_ready(&mut self, t: Time, _op: OpId, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let bytes = meta.bytes;
        let eager = self.opts.p2p.is_eager(bytes);
        let rank = meta.src as usize;
        let node = self.node_of_rank(meta.src);

        // Snapshot the payload at send time: dependencies guarantee the
        // data is ready, and MPI forbids the sender from touching the
        // buffer until the send completes.
        if let Some(mem) = &self.mem {
            if let Some(sbuf) = meta.sbuf {
                let mut data = self.payload_pool.pop().unwrap_or_default();
                data.clear();
                data.extend_from_slice(mem.read(rank, sbuf));
                self.msgs[msg.0 as usize].payload = Some(data);
            }
        }

        let cpu = self.m.cpu(rank);
        let p2p = self.opts.p2p;
        let mut dur = p2p.o_send;
        if eager {
            // Eager: bounce-buffer copy + per-byte stack work on the CPU.
            dur += p2p.cpu_byte_time(bytes) + self.m.node.copy_time(bytes);
        }
        let (s, e) = self.m.acquire(cpu, t, dur);
        let posted = if eager && bytes > 0 {
            // The bounce-buffer copy-in is a local transfer: innermost link.
            let bdur = self.m.levels.innermost().xfer_time(bytes);
            let bus = self.m.bus(node);
            let (_, be) = self.m.acquire(bus, s, bdur);
            e.max(be)
        } else {
            e
        };
        self.q.push(posted, Ev::SendPosted(msg));
    }

    fn on_send_posted(&mut self, t: Time, msg: MsgId) {
        self.msgs[msg.0 as usize].send_posted = Some(t);
        let eager = self.opts.p2p.is_eager(self.prog.msg(msg).bytes);
        let intra = self.is_intra(msg);
        let send_op = self.msgs[msg.0 as usize].send_op.expect("send op");
        if eager {
            // Eager sends complete locally as soon as the bounce copy is done.
            self.q.push(t, Ev::Finish(send_op));
            if intra {
                // Data is visible in shared memory after a flag round at
                // the level linking the two ranks.
                let meta = self.prog.msg(msg);
                let arr = t + self.flag_latency(meta.src, meta.dst);
                self.q.push(arr, Ev::Arrived(msg));
            } else {
                self.q.push(t, Ev::TxStart(msg));
            }
        } else {
            self.try_start_rendezvous(msg);
        }
    }

    fn on_recv_ready(&mut self, t: Time, msg: MsgId) {
        self.msgs[msg.0 as usize].recv_posted = Some(t);
        let eager = self.opts.p2p.is_eager(self.prog.msg(msg).bytes);
        if eager {
            if self.msgs[msg.0 as usize].arrived.is_some() {
                self.complete_recv(t, msg);
            }
        } else {
            self.try_start_rendezvous(msg);
        }
    }

    /// Once both sides of a rendezvous are posted, schedule the data phase
    /// after the handshake.
    fn try_start_rendezvous(&mut self, msg: MsgId) {
        let st = &self.msgs[msg.0 as usize];
        let (Some(sp), Some(rp)) = (st.send_posted, st.recv_posted) else {
            return;
        };
        let intra = self.is_intra(msg);
        if intra {
            let meta = self.prog.msg(msg);
            let start = sp.max(rp) + self.flag_latency(meta.src, meta.dst);
            self.q.push(start, Ev::IntraCopy(msg));
        } else {
            self.q.push(sp.max(rp), Ev::RndvCts(msg));
        }
    }

    /// The receiver's (single-threaded) MPI engine must be free to process
    /// the RTS and reply with the CTS — if it is busy with a shared-memory
    /// copy, the whole transfer is delayed. This is the paper's "ib and sb
    /// share the same CPU resource to progress" effect made concrete.
    fn on_rndv_cts(&mut self, t: Time, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let cpu = self.m.cpu(meta.dst as usize);
        let (_, e) = self.m.acquire(cpu, t, self.opts.p2p.o_recv);
        self.q
            .push(e + self.opts.p2p.rndv_handshake, Ev::TxStart(msg));
    }

    fn on_tx_start(&mut self, t: Time, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let bytes = meta.bytes;
        let src_node = self.node_of_rank(meta.src);
        let (txs, txe) = self.acquire_rails(src_node, t, bytes, msg, true);
        // Sender-side DMA read competes for the node memory bus; the DMA
        // engine moves the full payload once regardless of rail striping.
        let dma = self.m.net.dma_bus_time(bytes, &self.m.node);
        let bus = self.m.bus(src_node);
        let (_, dbe) = self.m.acquire(bus, txs, dma);
        let mut eff_tx_end = txe.max(dbe);
        if let Some(core) = self.m.net_core() {
            let cdur = Time::for_bytes(bytes, self.m.net.core_bw.unwrap());
            let (_, ce) = self.m.acquire(core, txs, cdur);
            eff_tx_end = eff_tx_end.max(ce);
        }
        self.msgs[msg.0 as usize].eff_tx_end = eff_tx_end;
        if !self.opts.p2p.is_eager(bytes) {
            // Rendezvous sends complete when the payload has left the node.
            let send_op = self.msgs[msg.0 as usize].send_op.expect("send op");
            self.q.push(eff_tx_end, Ev::Finish(send_op));
        }
        // Cut-through: reception starts one wire latency after transmission.
        self.q
            .push(txs + self.m.levels.get(0).latency, Ev::RxStart(msg));
    }

    fn on_rx_start(&mut self, t: Time, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let bytes = meta.bytes;
        let dst_node = self.node_of_rank(meta.dst);
        let (rxs, rxe) = self.acquire_rails(dst_node, t, bytes, msg, false);
        // Receiver-side DMA write competes for the node memory bus — the
        // paper's "ib needs to push the data back to memory" effect.
        let dma = self.m.net.dma_bus_time(bytes, &self.m.node);
        let bus = self.m.bus(dst_node);
        let (_, dbe) = self.m.acquire(bus, rxs, dma);
        let lower_bound = self.msgs[msg.0 as usize].eff_tx_end + self.m.levels.get(0).latency;
        let arrival = rxe.max(dbe).max(lower_bound);
        self.q.push(arrival, Ev::Arrived(msg));
    }

    fn on_arrived(&mut self, t: Time, msg: MsgId) {
        self.msgs[msg.0 as usize].arrived = Some(t);
        if self.msgs[msg.0 as usize].recv_posted.is_some() {
            self.complete_recv(t, msg);
        }
    }

    /// Receiver-side completion: CPU processing (+ eager copy-out), then
    /// the recv op finishes. Called at `max(arrived, recv_posted)`.
    fn complete_recv(&mut self, t: Time, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let bytes = meta.bytes;
        let rank = meta.dst as usize;
        let node = self.node_of_rank(meta.dst);
        let eager = self.opts.p2p.is_eager(bytes);
        let p2p = self.opts.p2p;
        let mut dur = p2p.o_recv;
        if eager {
            dur += p2p.cpu_byte_time(bytes) + self.m.node.copy_time(bytes);
        }
        let cpu = self.m.cpu(rank);
        let (s, e) = self.m.acquire(cpu, t, dur);
        let fin = if eager && bytes > 0 {
            // The receiver's copy-out reads the sender's bounce buffer:
            // within a node this moves over the level linking the ranks;
            // an inter-node copy-out reads the local NIC bounce buffer
            // (innermost link).
            let lvl = if self.is_intra(msg) {
                self.link_level(meta.src, meta.dst)
            } else {
                self.m.topo.depth() - 1
            };
            let bdur = self.m.levels.get(lvl).xfer_time(bytes);
            let bus = self.m.bus(node);
            let (_, be) = self.m.acquire(bus, s, bdur);
            e.max(be)
        } else {
            e
        };
        let recv_op = self.msgs[msg.0 as usize].recv_op.expect("recv op");
        self.q.push(fin, Ev::Finish(recv_op));
    }

    /// Intra-node rendezvous: a single receiver-side copy through shared
    /// memory (CMA/KNEM-style), after which both ops complete.
    fn on_intra_copy(&mut self, t: Time, msg: MsgId) {
        let meta = self.prog.msg(msg);
        let bytes = meta.bytes;
        let rank = meta.dst as usize;
        let node = self.node_of_rank(meta.dst);
        let cpu = self.m.cpu(rank);
        let dur = self.opts.p2p.o_recv + self.m.node.copy_time(bytes);
        let (s, e) = self.m.acquire(cpu, t, dur);
        let lvl = self.link_level(meta.src, meta.dst);
        let bdur = self.m.levels.get(lvl).xfer_time(bytes);
        let bus = self.m.bus(node);
        let (_, be) = self.m.acquire(bus, s, bdur);
        let fin = e.max(be);
        let st = &self.msgs[msg.0 as usize];
        let (send_op, recv_op) = (st.send_op.expect("send"), st.recv_op.expect("recv"));
        self.q.push(fin, Ev::Finish(recv_op));
        self.q.push(fin, Ev::Finish(send_op));
    }

    fn on_finish(&mut self, t: Time, op: OpId) {
        let idx = op.0 as usize;
        debug_assert!(!self.done[idx], "op {idx} finished twice");
        self.done[idx] = true;
        self.finish[idx] = t;
        self.completed += 1;

        if self.mem.is_some() {
            self.apply_data(op);
        }

        let rank = self.prog.ops[idx].rank;
        let node = self.node_of_rank(rank);
        let (lo, hi) = (
            self.child_off[idx] as usize,
            self.child_off[idx + 1] as usize,
        );
        for ci in lo..hi {
            let c = self.child[ci] as usize;
            let crank = self.prog.ops[c].rank;
            // Cross-rank dependencies model shared-memory flags and cost a
            // coherence round trip; cross-node dependencies must be
            // expressed as messages.
            let extra = if crank == rank {
                Time::ZERO
            } else {
                debug_assert_eq!(
                    self.node_of_rank(crank),
                    node,
                    "cross-node dependency {rank}->{crank}; use send/recv"
                );
                self.flag_latency(rank, crank)
            };
            self.ready_at[c] = self.ready_at[c].max(t + extra);
            self.indeg[c] -= 1;
            if self.indeg[c] == 0 {
                self.q.push(self.ready_at[c], Ev::Ready(OpId(c as u32)));
            }
        }
    }

    fn apply_data(&mut self, op: OpId) {
        let o = &self.prog.ops[op.0 as usize];
        let mem = self.mem.as_mut().unwrap();
        let rank = o.rank as usize;
        match &o.kind {
            OpKind::Copy { src, dst, .. } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    mem.copy_within_rank(rank, *s, *d);
                }
            }
            OpKind::CrossCopy { from, src, dst, .. } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    mem.copy_across(*from as usize, *s, rank, *d);
                }
            }
            OpKind::Reduce {
                op: rop,
                dtype,
                src,
                dst,
                ..
            } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(mem.read(rank, *s));
                    let dslice = unsafe_mut_range(mem, rank, *d);
                    crate::datatype::apply_reduce(*dtype, *rop, &self.scratch, dslice);
                }
            }
            OpKind::ReduceFrom {
                from,
                op: rop,
                dtype,
                src,
                dst,
                ..
            } => {
                if let (Some(s), Some(d)) = (src, dst) {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(mem.read(*from as usize, *s));
                    let dslice = unsafe_mut_range(mem, rank, *d);
                    crate::datatype::apply_reduce(*dtype, *rop, &self.scratch, dslice);
                }
            }
            OpKind::Recv { msg } => {
                let meta = self.prog.msg(*msg);
                if let Some(dbuf) = meta.dbuf {
                    if let Some(payload) = self.msgs[msg.0 as usize].payload.take() {
                        mem.write(rank, dbuf, &payload);
                        self.payload_pool.push(payload);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Mutable view of a range in a rank's memory. Separate helper because the
/// borrow checker cannot see that the `tmp` read above was copied out.
fn unsafe_mut_range(mem: &mut Memory, rank: usize, r: crate::buffer::BufRange) -> &mut [u8] {
    // Safe: `Memory::read` clones were taken before this call; this is the
    // only live mutable borrow.
    let ptr = mem.read(rank, r).as_ptr() as *mut u8;
    unsafe { std::slice::from_raw_parts_mut(ptr, r.len as usize) }
}

/// Execute with a closure that seeds initial memory contents (testing and
/// correctness harnesses).
pub fn execute_seeded(
    machine: &mut Machine,
    prog: &Program,
    opts: &ExecOpts,
    seed: impl FnOnce(&mut Memory),
) -> (Report, Memory) {
    assert!(opts.is_full(), "execute_seeded requires ExecMode::Full");
    let mut mem = Memory::new(&prog.mem_size);
    seed(&mut mem);
    let (report, mem) = run_inner(machine, prog, opts, Some(mem));
    (report, mem.expect("data mode produces memory"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::datatype::{DataType, ReduceOp};
    use han_machine::{mini, Flavor, Machine};

    fn machine(nodes: usize, ppn: usize) -> Machine {
        Machine::from_preset(&mini(nodes, ppn))
    }

    fn opts() -> ExecOpts {
        ExecOpts::timing(Flavor::OpenMpi.p2p())
    }

    #[test]
    fn empty_program() {
        let mut m = machine(1, 1);
        let p = ProgramBuilder::new(1).build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.makespan, Time::ZERO);
    }

    #[test]
    fn sleep_does_not_use_cpu_but_delay_does() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        b.sleep(0, Time::from_us(5), &[]);
        b.delay(0, Time::from_us(3), &[]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.makespan, Time::from_us(5));
        assert_eq!(m.pool().get(m.cpu(0)).busy_time(), Time::from_us(3));
    }

    #[test]
    fn dependency_chain_is_sequential() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.delay(0, Time::from_us(2), &[a]);
        let d = b.sleep(0, Time::from_us(3), &[c]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.finish(a), Time::from_us(1));
        assert_eq!(r.finish(c), Time::from_us(3));
        assert_eq!(r.finish(d), Time::from_us(6));
    }

    #[test]
    fn cross_rank_dep_costs_flag_latency() {
        let mut m = machine(1, 2);
        let flag = m.node.flag_latency;
        let mut b = ProgramBuilder::new(2);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.nop(1, &[a]);
        let p = b.build();
        let r = execute(&mut m, &p, &opts());
        assert_eq!(r.finish(c), Time::from_us(1) + flag);
    }

    #[test]
    fn inter_node_eager_message_timing() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let (s, r) = b.send_recv(0, 1, 1024, None, None, &[], &[]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        // Eager send completes locally, before the recv.
        assert!(rep.finish(s) < rep.finish(r));
        // End-to-end must include at least the wire latency.
        assert!(rep.finish(r) > m.net.latency);
    }

    #[test]
    fn inter_node_rendezvous_send_completes_with_transfer() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let bytes = 1 << 20; // 1 MiB: rendezvous for every flavour
        let (s, r) = b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        let wire = m.net.wire_time(bytes);
        // The send completes only after the payload left the node.
        assert!(rep.finish(s) >= wire);
        assert!(rep.finish(r) >= rep.finish(s));
        // Sanity: total under 3x wire time (no pathological serialization).
        assert!(rep.finish(r) < wire * 3);
    }

    #[test]
    fn rendezvous_waits_for_late_receiver() {
        let mut m = machine(2, 1);
        let bytes = 1 << 20;
        // Receiver sleeps 1 ms before posting.
        let mut b = ProgramBuilder::new(2);
        let z = b.sleep(1, Time::from_ms(1), &[]);
        let (_, r) = b.send_recv(0, 1, bytes, None, None, &[], &[z]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        assert!(rep.finish(r) > Time::from_ms(1));
    }

    #[test]
    fn eager_does_not_wait_for_late_receiver_cpu_much() {
        let mut m = machine(2, 1);
        let bytes = 512; // eager
        let mut b = ProgramBuilder::new(2);
        let z = b.sleep(1, Time::from_ms(1), &[]);
        let (_, r) = b.send_recv(0, 1, bytes, None, None, &[], &[z]);
        let p = b.build();
        let rep = execute(&mut m, &p, &opts());
        // Data was already there; only the receiver-side completion
        // processing happens after the 1 ms.
        let slack = rep.finish(r) - Time::from_ms(1);
        assert!(slack < Time::from_us(2), "slack {slack}");
    }

    #[test]
    fn same_direction_transfers_serialize_on_nic() {
        // Two rendezvous sends 0->1 and 0->2 (different nodes) leave the
        // same NIC: total ≈ 2x one transfer.
        let bytes = 4 << 20;
        let mut m = machine(3, 1);
        let mut b = ProgramBuilder::new(3);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        b.send_recv(0, 2, bytes, None, None, &[], &[]);
        let two = execute(&mut m, &b.build(), &opts()).makespan;

        let mut b = ProgramBuilder::new(3);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let one = execute(&mut m, &b.build(), &opts()).makespan;

        let ratio = two.as_ps() as f64 / one.as_ps() as f64;
        assert!(ratio > 1.7, "expected ~2x serialization, got {ratio:.2}x");
    }

    #[test]
    fn opposite_directions_overlap_on_full_duplex_nic() {
        // 0->1 and 1->0 simultaneously: full duplex, ~1x one transfer.
        let bytes = 4 << 20;
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        b.send_recv(1, 0, bytes, None, None, &[], &[]);
        let duplex = execute(&mut m, &b.build(), &opts()).makespan;

        let mut b = ProgramBuilder::new(2);
        b.send_recv(0, 1, bytes, None, None, &[], &[]);
        let one = execute(&mut m, &b.build(), &opts()).makespan;

        let ratio = duplex.as_ps() as f64 / one.as_ps() as f64;
        assert!(ratio < 1.3, "full duplex should overlap, got {ratio:.2}x");
    }

    #[test]
    fn intra_node_message_avoids_nic() {
        let bytes = 64 * 1024;
        let mut m = machine(2, 2);
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 1, bytes, None, None, &[], &[]); // same node
        let p = b.build();
        execute(&mut m, &p, &opts());
        assert_eq!(m.pool().get(m.nic_tx(0)).requests(), 0);
        assert_eq!(m.pool().get(m.nic_rx(0)).requests(), 0);
        assert!(m.pool().get(m.bus(0)).requests() > 0);
    }

    #[test]
    fn intra_faster_than_inter_for_large() {
        let bytes = 1 << 20;
        let mut m = machine(2, 2);
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 1, bytes, None, None, &[], &[]); // intra
        let intra = execute(&mut m, &b.build(), &opts()).makespan;
        let mut b = ProgramBuilder::new(4);
        b.send_recv(0, 2, bytes, None, None, &[], &[]); // inter
        let inter = execute(&mut m, &b.build(), &opts()).makespan;
        assert!(intra < inter, "intra {intra} should beat inter {inter}");
    }

    #[test]
    fn data_delivery_inter_node() {
        let mut m = machine(2, 1);
        let mut b = ProgramBuilder::new(2);
        let sbuf = b.alloc(0, 8);
        let dbuf = b.alloc(1, 8);
        b.send_recv(0, 1, 8, Some(sbuf), Some(dbuf), &[], &[]);
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            mm.write(0, sbuf, &[1, 2, 3, 4, 5, 6, 7, 8])
        });
        assert_eq!(mem.read(1, dbuf), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn data_delivery_rendezvous() {
        let mut m = machine(2, 1);
        let bytes = 1u64 << 20;
        let mut b = ProgramBuilder::new(2);
        let sbuf = b.alloc(0, bytes);
        let dbuf = b.alloc(1, bytes);
        b.send_recv(0, 1, bytes, Some(sbuf), Some(dbuf), &[], &[]);
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
            mm.write(0, sbuf, &data);
        });
        let out = mem.read(1, dbuf);
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i % 251) as u8));
    }

    #[test]
    fn reduce_data_applies() {
        let mut m = machine(1, 1);
        let mut b = ProgramBuilder::new(1);
        let src = b.alloc(0, 8);
        let dst = b.alloc(0, 8);
        b.op(
            0,
            OpKind::Reduce {
                bytes: 8,
                vectorized: true,
                op: ReduceOp::Sum,
                dtype: DataType::Int32,
                src: Some(src),
                dst: Some(dst),
            },
            &[],
        );
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| {
            mm.write(0, src, &as_i32(&[5, 6]));
            mm.write(0, dst, &as_i32(&[1, 2]));
        });
        assert_eq!(mem.read(0, dst), as_i32(&[6, 8]).as_slice());
    }

    #[test]
    fn cross_copy_moves_data_and_charges_bus() {
        let mut m = machine(1, 2);
        let mut b = ProgramBuilder::new(2);
        let src = b.alloc(0, 4);
        let dst = b.alloc(1, 4);
        b.op(
            1,
            OpKind::CrossCopy {
                from: 0,
                bytes: 4,
                src: Some(src),
                dst: Some(dst),
            },
            &[],
        );
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &p, &o, |mm| mm.write(0, src, &[9, 9, 8, 8]));
        assert_eq!(mem.read(1, dst), &[9, 9, 8, 8]);
        assert!(m.pool().get(m.bus(0)).busy_time() > Time::ZERO);
    }

    #[test]
    fn start_skew_delays_rank_roots() {
        let mut m = machine(1, 2);
        let mut b = ProgramBuilder::new(2);
        let a = b.delay(0, Time::from_us(1), &[]);
        let c = b.delay(1, Time::from_us(1), &[]);
        let p = b.build();
        let o = opts().with_skew(vec![Time::ZERO, Time::from_us(10)]);
        let r = execute(&mut m, &p, &o);
        assert_eq!(r.finish(a), Time::from_us(1));
        assert_eq!(r.finish(c), Time::from_us(11));
    }

    fn as_i32(xs: &[i32]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    #[test]
    fn single_rail_machine_times_are_unchanged_by_rail_plumbing() {
        // rails=1 must be byte-identical through both policies.
        use han_machine::RailPolicy;
        let bytes = 1 << 20;
        let mut times = vec![];
        for policy in [RailPolicy::RoundRobin, RailPolicy::Stripe] {
            let mut m = Machine::from_preset(&mini(2, 1).with_rails(1, policy));
            let mut b = ProgramBuilder::new(2);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            let r = execute(&mut m, &b.build(), &opts());
            times.push((r.makespan, r.events));
        }
        assert_eq!(times[0], times[1]);
    }

    #[test]
    fn striping_speeds_up_a_single_large_transfer() {
        use han_machine::RailPolicy;
        let bytes = 16 << 20; // rendezvous
        let run = |rails: usize, policy| {
            let mut m = Machine::from_preset(&mini(2, 1).with_rails(rails, policy));
            let mut b = ProgramBuilder::new(2);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let one = run(1, RailPolicy::RoundRobin);
        let striped = run(4, RailPolicy::Stripe);
        let rr = run(4, RailPolicy::RoundRobin);
        let ratio = one.as_ps() as f64 / striped.as_ps() as f64;
        assert!(
            ratio > 2.5,
            "4-rail striping should approach 4x on one large message, got {ratio:.2}x"
        );
        // Round-robin cannot accelerate a single message.
        assert!(rr >= striped);
        let rr_ratio = one.as_ps() as f64 / rr.as_ps() as f64;
        assert!(
            rr_ratio < 1.3,
            "round-robin single msg ~1x, got {rr_ratio:.2}x"
        );
    }

    #[test]
    fn round_robin_spreads_concurrent_messages_across_rails() {
        use han_machine::RailPolicy;
        let bytes = 4 << 20;
        let run = |rails: usize| {
            let mut m = Machine::from_preset(&mini(3, 1).with_rails(rails, RailPolicy::RoundRobin));
            let mut b = ProgramBuilder::new(3);
            b.send_recv(0, 1, bytes, None, None, &[], &[]);
            b.send_recv(0, 2, bytes, None, None, &[], &[]);
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let serial = run(1);
        let parallel = run(2);
        let ratio = serial.as_ps() as f64 / parallel.as_ps() as f64;
        assert!(
            ratio > 1.6,
            "two messages on two rails should overlap, got {ratio:.2}x"
        );
    }

    #[test]
    fn level_override_changes_intra_node_cost() {
        use han_machine::LevelParams;
        let bytes = 4 << 20;
        let base = mini(2, 2);
        let fast = base.with_level_override(
            1,
            LevelParams {
                bandwidth: base.node.bus_bw * 8.0,
                latency: Time::from_ns(20),
                reduce_rate: base.node.reduce_rate,
                reduce_rate_avx: base.node.reduce_rate_avx,
                launch: Time::ZERO,
            },
        );
        let run = |p: &han_machine::MachinePreset| {
            let mut m = Machine::from_preset(p);
            let mut b = ProgramBuilder::new(4);
            b.send_recv(0, 1, bytes, None, None, &[], &[]); // intra-node
            execute(&mut m, &b.build(), &opts()).makespan
        };
        assert!(run(&fast) < run(&base));
    }

    #[test]
    fn launch_overhead_charged_per_compute_op() {
        let base = mini(1, 2);
        let launch = Time::from_us(7);
        let mut lp = *base.level_params().get(1);
        lp.launch = launch;
        let gpu = base.with_level_override(1, lp);
        let run = |p: &han_machine::MachinePreset| {
            let mut m = Machine::from_preset(p);
            let mut b = ProgramBuilder::new(2);
            b.op(
                0,
                OpKind::Copy {
                    bytes: 64,
                    src: None,
                    dst: None,
                },
                &[],
            );
            execute(&mut m, &b.build(), &opts()).makespan
        };
        let delta = run(&gpu) - run(&base);
        assert_eq!(delta, launch, "one Copy pays exactly one launch");
    }
}
