//! Communicators.
//!
//! HAN "groups processes based on their physical locations" using the only
//! portable MPI 3.1 mechanism, `MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`,
//! which yields exactly two levels: intra-node communicators (the "low"
//! comms) and an inter-node communicator of node leaders (the "up" comm).
//! [`Comm::split_node`] reproduces that structure.

use han_machine::Topology;
use std::sync::Arc;

/// An ordered group of world ranks.
#[derive(Debug, Clone)]
pub struct Comm {
    ranks: Arc<Vec<usize>>,
}

impl Comm {
    /// The world communicator over `n` ranks.
    pub fn world(n: usize) -> Self {
        Comm {
            ranks: Arc::new((0..n).collect()),
        }
    }

    /// A communicator over an explicit rank list (must be non-empty and
    /// duplicate-free).
    pub fn from_ranks(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty communicator");
        debug_assert!(
            {
                let mut s = ranks.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate ranks in communicator"
        );
        Comm {
            ranks: Arc::new(ranks),
        }
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of local rank `i`.
    pub fn world_rank(&self, i: usize) -> usize {
        self.ranks[i]
    }

    /// Local rank of a world rank, if a member.
    pub fn local_rank(&self, world: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world)
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// `MPI_Comm_split_type(COMM_TYPE_SHARED)` + leader comm, the two-level
    /// decomposition HAN uses.
    ///
    /// Returns `(low_comms, up_comm)`: one intra-node communicator per node
    /// that has members (in node order), and the inter-node communicator of
    /// node leaders (the lowest-local-rank member on each node). If some
    /// node holds no member of `self`, it simply has no low comm.
    pub fn split_node(&self, topo: &Topology) -> (Vec<Comm>, Comm) {
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); topo.nodes()];
        for &r in self.ranks.iter() {
            per_node[topo.node_of(r)].push(r);
        }
        let mut low = Vec::new();
        let mut leaders = Vec::new();
        for node_ranks in per_node.into_iter().filter(|v| !v.is_empty()) {
            leaders.push(node_ranks[0]);
            low.push(Comm::from_ranks(node_ranks));
        }
        (low, Comm::from_ranks(leaders))
    }

    /// Split this communicator by the topology's level-`k` groups — the
    /// per-level generalization of [`Comm::split_node`] (level 0 ≡ nodes).
    ///
    /// Returns `(sub_comms, leader_comm)`: one communicator per level-`k`
    /// group with members, in order of each group's **first appearance in
    /// this communicator's rank order** (so a root-reordered comm keeps
    /// its data-holder's group first), and the communicator of group
    /// leaders (each group's first member in that same order).
    pub fn split_level(&self, topo: &Topology, k: usize) -> (Vec<Comm>, Comm) {
        let mut order: Vec<usize> = Vec::new(); // group ids, first-appearance order
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &r in self.ranks.iter() {
            let g = topo.group_of(r, k);
            match order.iter().position(|&x| x == g) {
                Some(i) => groups[i].push(r),
                None => {
                    order.push(g);
                    groups.push(vec![r]);
                }
            }
        }
        let leaders: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        let subs = groups.into_iter().map(Comm::from_ranks).collect();
        (subs, Comm::from_ranks(leaders))
    }

    /// The low comm containing `world` rank, from a `split_node` result.
    pub fn low_comm_of<'a>(low: &'a [Comm], topo: &Topology, world: usize) -> &'a Comm {
        low.iter()
            .find(|c| topo.node_of(c.world_rank(0)) == topo.node_of(world))
            .expect("rank's node has a low comm")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm() {
        let c = Comm::world(6);
        assert_eq!(c.size(), 6);
        assert_eq!(c.world_rank(3), 3);
        assert_eq!(c.local_rank(5), Some(5));
        assert_eq!(c.local_rank(6), None);
    }

    #[test]
    fn split_node_two_levels() {
        let topo = Topology::new(3, 4);
        let world = Comm::world(12);
        let (low, up) = world.split_node(&topo);
        assert_eq!(low.len(), 3);
        assert_eq!(up.size(), 3);
        assert_eq!(up.ranks(), &[0, 4, 8]);
        assert_eq!(low[1].ranks(), &[4, 5, 6, 7]);
    }

    #[test]
    fn split_node_subset_comm() {
        // A communicator covering only parts of two nodes.
        let topo = Topology::new(3, 4);
        let c = Comm::from_ranks(vec![2, 3, 9, 11]);
        let (low, up) = c.split_node(&topo);
        assert_eq!(low.len(), 2);
        assert_eq!(low[0].ranks(), &[2, 3]);
        assert_eq!(low[1].ranks(), &[9, 11]);
        assert_eq!(up.ranks(), &[2, 9]);
    }

    #[test]
    fn low_comm_lookup() {
        let topo = Topology::new(2, 3);
        let world = Comm::world(6);
        let (low, _) = world.split_node(&topo);
        assert_eq!(Comm::low_comm_of(&low, &topo, 4).ranks(), &[3, 4, 5]);
        assert_eq!(Comm::low_comm_of(&low, &topo, 0).ranks(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn empty_comm_rejected() {
        Comm::from_ranks(vec![]);
    }

    #[test]
    fn split_level_zero_matches_split_node() {
        let topo = Topology::new(3, 4);
        let world = Comm::world(12);
        let (low, up) = world.split_node(&topo);
        let (subs, leaders) = world.split_level(&topo, 0);
        assert_eq!(low.len(), subs.len());
        for (a, b) in low.iter().zip(&subs) {
            assert_eq!(a.ranks(), b.ranks());
        }
        assert_eq!(up.ranks(), leaders.ranks());
    }

    #[test]
    fn split_level_groups_sockets() {
        // 2 nodes × 2 sockets × 2 cores; split one node comm by sockets.
        let topo = Topology::from_levels(&[2, 2, 2]);
        let node0 = Comm::from_ranks(vec![0, 1, 2, 3]);
        let (subs, leaders) = node0.split_level(&topo, 1);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].ranks(), &[0, 1]);
        assert_eq!(subs[1].ranks(), &[2, 3]);
        assert_eq!(leaders.ranks(), &[0, 2]);
    }

    #[test]
    fn split_level_respects_comm_order() {
        // A root-reordered node comm: the root's socket group comes first
        // and the root leads it, mirroring split_with_root's convention.
        let topo = Topology::from_levels(&[2, 2, 2]);
        let reordered = Comm::from_ranks(vec![3, 1, 0, 2]);
        let (subs, leaders) = reordered.split_level(&topo, 1);
        assert_eq!(subs[0].ranks(), &[3, 2]);
        assert_eq!(subs[1].ranks(), &[1, 0]);
        assert_eq!(leaders.ranks(), &[3, 1]);
    }
}
