//! # han-tuner — task-based autotuning (paper sections III-A2/B2/C)
//!
//! The paper's second contribution: instead of benchmarking whole
//! collectives for every message size (exhaustive search, cost
//! `M×S×N×P×A`) or trusting analytic cost models (Hockney/LogP/LogGP/
//! PLogP — inaccurate on hierarchical hardware), HAN benchmarks *tasks*
//! (cost `T×S×N×P×A`, with `T` a small constant — 3 task types for Bcast,
//! 8 for Allreduce) and combines the measured task costs with the simple
//! per-collective cost models of equations (1)–(4).
//!
//! * [`space`] — the autotuning inputs (Table I) and configuration
//!   enumeration (Table II outputs).
//! * [`taskbench`] — task benchmarking, including the delayed-start
//!   technique ("we need to delay the participation of each process by
//!   the duration of the ib(0) step") and stabilized-cost iteration
//!   (Fig. 3).
//! * [`model`] — the cost model: eq. (3) for Bcast, eq. (4) for
//!   Allreduce, generalized to short pipelines.
//! * [`analytic`] — conventional cost models (Hockney, LogP, LogGP,
//!   PLogP, perfect-overlap hierarchical) for the accuracy comparison the
//!   paper's introduction makes.
//! * [`search`] — the four tuning strategies of Figs. 8/9: exhaustive,
//!   exhaustive+heuristics, task-based (HAN), task-based+heuristics.
//! * [`heuristics`] — the pruning rules of section III-C (SOLO only above
//!   512 KB segments; chain only with enough segments).
//! * [`table`]/[`decision`] — the lookup table (tuning output) and its
//!   distilled decision tree now live in the dependency-light
//!   [`han_decide`] crate, shared with the serving daemon; they are
//!   re-exported here under their historical paths.
//! * [`cache`] — a memo table for simulated task and collective costs,
//!   shared across message sizes, collectives and strategies within a
//!   run and optionally persisted for warm-started repeated runs.
//! * [`delta`] — delta re-simulation: sweep candidates sharing a DAG
//!   structure replay the unchanged event prefix from a recorded
//!   checkpoint and re-simulate only the divergent suffix,
//!   bit-identically.

pub mod analytic;
pub mod bound;
pub mod cache;
pub mod calibrate;
pub mod delta;
pub mod heuristics;
pub mod model;
pub mod search;
pub mod space;
pub mod taskbench;

// The decision-logic modules moved to `han-decide`; keep the historical
// `han_tuner::table` / `han_tuner::decision` paths working.
pub use han_decide::{decision, fingerprint, resolve, table};

pub use bound::lower_bound;
pub use cache::{preset_fingerprint, CostCache};
pub use decision::DecisionTree;
pub use delta::{structural_fingerprint, DeltaSim, DeltaStats, SharedBases};
pub use resolve::Resolution;
pub use search::{
    achieved_latency, achieved_latency_with_cache, candidate_costs, tune, tune_with_cache,
    tune_with_opts, Strategy, TuneOpts, TuneResult,
};
pub use space::SearchSpace;
pub use table::LookupTable;
pub use taskbench::TaskBench;
