//! Cross-run memoization of simulated costs (the sweep fast path).
//!
//! The paper's tuning-time argument is that measured task costs are
//! *reused* across message sizes and collectives. [`TaskBench`] already
//! reuses costs within one session; this module extends the same idea to
//! the simulator's wall-clock: a [`CostCache`] memoizes
//!
//! * **collective costs** — `(collective, config, message size)` → virtual
//!   latency, the unit of work of the exhaustive sweeps behind Figs. 8/9;
//! * **task costs** — `(config, task spec, segment size, relative skew)` →
//!   per-leader virtual costs plus the benchmark window, the unit of work
//!   of task-based tuning.
//!
//! The cache is shared across message sizes, collectives, and search
//! strategies within a run (the heuristic search space is a subset of the
//! full one, so a full sweep warms every heuristic sweep for free), and
//! can be persisted under `results/cache/` so repeated `repro` invocations
//! are warm-started.
//!
//! **Invalidation rule:** every cache is bound to a fingerprint — a stable
//! hash of the complete machine preset (topology, node, and network
//! parameters, floats hashed by shortest decimal representation). A
//! persisted cache whose fingerprint does not match the current preset is
//! ignored, never merged.
//!
//! **Fidelity rule:** a cache hit must be observationally identical to a
//! simulation. Hits return the exact virtual times a simulation would
//! produce and are accounted identically (`spent`/`runs` in
//! [`TaskBench`], `tuning_time`/`searches` in the search strategies) —
//! only host wall-clock is saved, never virtual time.
//!
//! [`TaskBench`]: crate::taskbench::TaskBench

use han_colls::Coll;
use han_core::task::TaskSpec;
use han_core::HanConfig;
use han_machine::MachinePreset;
use han_sim::Time;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub use han_decide::preset_fingerprint;

type CollKey = (Coll, HanConfig, u64);
type TaskKey = (HanConfig, TaskSpec, u64, Vec<u64>);

/// A memoized task measurement: per-leader costs plus the cluster-occupancy
/// window the benchmark charged (both in picoseconds).
#[derive(Debug, Clone)]
struct TaskEntry {
    cost_ps: Vec<u64>,
    window_ps: u64,
}

#[derive(Default)]
struct Inner {
    coll: HashMap<CollKey, u64>,
    task: HashMap<TaskKey, TaskEntry>,
}

/// Shared, thread-safe cost memo bound to one machine preset.
pub struct CostCache {
    fingerprint: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss/size counters for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub coll_entries: usize,
    pub task_entries: usize,
}

impl CostCache {
    pub fn new(preset: &MachinePreset) -> Self {
        CostCache {
            fingerprint: preset_fingerprint(preset),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coll_entries: inner.coll.len(),
            task_entries: inner.task.len(),
        }
    }

    /// Memoized full-collective latency, if present.
    pub fn lookup_coll(&self, coll: Coll, cfg: &HanConfig, m: u64) -> Option<Time> {
        let found = self
            .inner
            .lock()
            .unwrap()
            .coll
            .get(&(coll, *cfg, m))
            .copied();
        match found {
            Some(ps) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Time::from_ps(ps))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub fn record_coll(&self, coll: Coll, cfg: &HanConfig, m: u64, cost: Time) {
        self.inner
            .lock()
            .unwrap()
            .coll
            .insert((coll, *cfg, m), cost.as_ps());
    }

    /// Memoized task measurement: `(per-leader costs, benchmark window)`.
    pub fn lookup_task(
        &self,
        cfg: &HanConfig,
        spec: TaskSpec,
        seg: u64,
        skew_key: &[u64],
    ) -> Option<(Vec<Time>, Time)> {
        let found = self
            .inner
            .lock()
            .unwrap()
            .task
            .get(&(*cfg, spec, seg, skew_key.to_vec()))
            .cloned();
        match found {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((
                    e.cost_ps.iter().map(|&p| Time::from_ps(p)).collect(),
                    Time::from_ps(e.window_ps),
                ))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub fn record_task(
        &self,
        cfg: &HanConfig,
        spec: TaskSpec,
        seg: u64,
        skew_key: Vec<u64>,
        costs: &[Time],
        window: Time,
    ) {
        self.inner.lock().unwrap().task.insert(
            (*cfg, spec, seg, skew_key),
            TaskEntry {
                cost_ps: costs.iter().map(|t| t.as_ps()).collect(),
                window_ps: window.as_ps(),
            },
        );
    }

    // -----------------------------------------------------------------
    // Persistence

    /// Canonical on-disk location for a preset's cache.
    pub fn path_for(dir: &Path, preset: &MachinePreset) -> PathBuf {
        dir.join(format!(
            "cost_cache_{:016x}.json",
            preset_fingerprint(preset)
        ))
    }

    /// Load the persisted cache for `preset` from `dir`, or start empty.
    /// A missing file, unparsable contents, or a fingerprint mismatch all
    /// yield an empty cache (the invalidation rule). Unparsable files —
    /// e.g. torn writes from a crashed run under the pre-atomic-rename
    /// format — are logged and treated as a cold miss, never an error.
    pub fn load_or_new(dir: &Path, preset: &MachinePreset) -> Self {
        let path = Self::path_for(dir, preset);
        if let Ok(text) = std::fs::read_to_string(&path) {
            match Self::from_json(&text) {
                Some(cache) => {
                    if cache.fingerprint == preset_fingerprint(preset) {
                        return cache;
                    }
                }
                None => {
                    eprintln!(
                        "warning: ignoring unparsable cost cache {} (cold start)",
                        path.display()
                    );
                }
            }
        }
        Self::new(preset)
    }

    /// Persist under `dir` (created if needed) at the canonical path.
    ///
    /// The write goes to a process-unique temp file first and lands via
    /// atomic rename, so concurrent runs (or re-tuning workers) racing on
    /// the same preset can interleave freely: readers see either the old
    /// complete file or the new complete file, never torn JSON.
    pub fn save_under(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("cost_cache_{:016x}.json", self.fingerprint));
        let tmp = dir.join(format!(
            ".cost_cache_{:016x}.{}.tmp",
            self.fingerprint,
            std::process::id()
        ));
        std::fs::write(&tmp, self.to_json())?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    pub fn to_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let coll: Vec<Value> = inner
            .coll
            .iter()
            .map(|(&(coll, cfg, m), &ps)| {
                Value::Seq(vec![
                    Value::Str(coll.name().to_string()),
                    cfg.to_value(),
                    Value::UInt(m),
                    Value::UInt(ps),
                ])
            })
            .collect();
        let task: Vec<Value> = inner
            .task
            .iter()
            .map(|((cfg, spec, seg, skew), entry)| {
                Value::Seq(vec![
                    cfg.to_value(),
                    Value::Seq(
                        [spec.ib, spec.sb, spec.ir, spec.sr]
                            .iter()
                            .map(|&b| Value::Bool(b))
                            .collect(),
                    ),
                    Value::UInt(*seg),
                    Value::Seq(skew.iter().map(|&s| Value::UInt(s)).collect()),
                    Value::Seq(entry.cost_ps.iter().map(|&p| Value::UInt(p)).collect()),
                    Value::UInt(entry.window_ps),
                ])
            })
            .collect();
        let root = Value::Map(vec![
            ("fingerprint".to_string(), Value::UInt(self.fingerprint)),
            ("coll".to_string(), Value::Seq(coll)),
            ("task".to_string(), Value::Seq(task)),
        ]);
        serde_json::to_string_pretty(&root).expect("cache serializes")
    }

    pub fn from_json(text: &str) -> Option<Self> {
        let root: Value = serde_json::from_str(text).ok()?;
        let fingerprint = root["fingerprint"].as_u64()?;
        let mut inner = Inner::default();
        for item in root["coll"].as_array()? {
            let coll = Coll::from_name(item[0].as_str()?)?;
            let cfg = HanConfig::from_value(&item[1]).ok()?;
            let m = item[2].as_u64()?;
            let ps = item[3].as_u64()?;
            inner.coll.insert((coll, cfg, m), ps);
        }
        for item in root["task"].as_array()? {
            let cfg = HanConfig::from_value(&item[0]).ok()?;
            let flags = item[1].as_array()?;
            if flags.len() != 4 {
                return None;
            }
            let spec = TaskSpec {
                ib: flags[0].as_bool()?,
                sb: flags[1].as_bool()?,
                ir: flags[2].as_bool()?,
                sr: flags[3].as_bool()?,
            };
            let seg = item[2].as_u64()?;
            let skew: Vec<u64> = item[3]
                .as_array()?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<_>>()?;
            let cost_ps: Vec<u64> = item[4]
                .as_array()?
                .iter()
                .map(|v| v.as_u64())
                .collect::<Option<_>>()?;
            let window_ps = item[5].as_u64()?;
            inner
                .task
                .insert((cfg, spec, seg, skew), TaskEntry { cost_ps, window_ps });
        }
        Some(CostCache {
            fingerprint,
            inner: Mutex::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, stampede2};

    #[test]
    fn fingerprint_reexport_is_the_decide_one() {
        // The fingerprint moved to han-decide; the historical
        // `han_tuner::cache::preset_fingerprint` path must keep answering
        // identically (persisted cache filenames depend on it).
        assert_eq!(
            preset_fingerprint(&stampede2(4)),
            han_decide::preset_fingerprint(&stampede2(4))
        );
        assert_ne!(
            preset_fingerprint(&mini(4, 4)),
            preset_fingerprint(&stampede2(4))
        );
    }

    #[test]
    fn coll_memo_round_trip() {
        let preset = mini(2, 2);
        let cache = CostCache::new(&preset);
        let cfg = HanConfig::default();
        assert_eq!(cache.lookup_coll(Coll::Bcast, &cfg, 1024), None);
        cache.record_coll(Coll::Bcast, &cfg, 1024, Time::from_us(7));
        assert_eq!(
            cache.lookup_coll(Coll::Bcast, &cfg, 1024),
            Some(Time::from_us(7))
        );
        // Other keys stay cold.
        assert_eq!(cache.lookup_coll(Coll::Allreduce, &cfg, 1024), None);
        assert_eq!(cache.lookup_coll(Coll::Bcast, &cfg, 2048), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coll_entries), (1, 3, 1));
    }

    #[test]
    fn task_memo_round_trip() {
        let preset = mini(2, 2);
        let cache = CostCache::new(&preset);
        let cfg = HanConfig::default();
        let skew = vec![0u64, 500];
        assert!(cache.lookup_task(&cfg, TaskSpec::IB, 4096, &skew).is_none());
        cache.record_task(
            &cfg,
            TaskSpec::IB,
            4096,
            skew.clone(),
            &[Time::from_us(1), Time::from_us(2)],
            Time::from_us(3),
        );
        let (costs, window) = cache.lookup_task(&cfg, TaskSpec::IB, 4096, &skew).unwrap();
        assert_eq!(costs, vec![Time::from_us(1), Time::from_us(2)]);
        assert_eq!(window, Time::from_us(3));
        // A different skew shape is a different measurement.
        assert!(cache
            .lookup_task(&cfg, TaskSpec::IB, 4096, &[0, 501])
            .is_none());
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let preset = mini(2, 2);
        let cache = CostCache::new(&preset);
        let cfg = HanConfig::default().with_fs(4096);
        cache.record_coll(Coll::Bcast, &cfg, 1 << 20, Time::from_us(42));
        cache.record_task(
            &cfg,
            TaskSpec::SBIB,
            4096,
            vec![0, 250],
            &[Time::from_us(5), Time::from_us(6)],
            Time::from_us(7),
        );
        let json = cache.to_json();
        let back = CostCache::from_json(&json).expect("parses");
        assert_eq!(back.fingerprint(), cache.fingerprint());
        assert_eq!(
            back.lookup_coll(Coll::Bcast, &cfg, 1 << 20),
            Some(Time::from_us(42))
        );
        let (costs, window) = back
            .lookup_task(&cfg, TaskSpec::SBIB, 4096, &[0, 250])
            .unwrap();
        assert_eq!(costs.len(), 2);
        assert_eq!(window, Time::from_us(7));
    }

    #[test]
    fn persistence_respects_fingerprint() {
        let dir = std::env::temp_dir().join("han_cost_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = mini(3, 2);
        let cache = CostCache::new(&preset);
        let cfg = HanConfig::default();
        cache.record_coll(Coll::Bcast, &cfg, 4096, Time::from_us(11));
        let path = cache.save_under(&dir).unwrap();
        assert!(path.exists());

        // Same preset: warm start.
        let warm = CostCache::load_or_new(&dir, &preset);
        assert_eq!(
            warm.lookup_coll(Coll::Bcast, &cfg, 4096),
            Some(Time::from_us(11))
        );

        // Different preset: the invalidation rule yields a cold cache.
        let other = mini(3, 4);
        let cold = CostCache::load_or_new(&dir, &other);
        assert_eq!(cold.lookup_coll(Coll::Bcast, &cfg, 4096), None);
        assert_eq!(cold.stats().coll_entries, 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_cache_file_is_a_cold_miss() {
        let dir = std::env::temp_dir().join("han_cost_cache_torn_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let preset = mini(2, 3);
        let cfg = HanConfig::default();

        // A torn write: a valid prefix of real cache JSON, cut mid-token.
        let cache = CostCache::new(&preset);
        cache.record_coll(Coll::Bcast, &cfg, 4096, Time::from_us(5));
        let full = cache.to_json();
        let path = CostCache::path_for(&dir, &preset);
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let loaded = CostCache::load_or_new(&dir, &preset);
        assert_eq!(loaded.lookup_coll(Coll::Bcast, &cfg, 4096), None);
        assert_eq!(loaded.stats().coll_entries, 0);

        // Saving over the torn file repairs it.
        cache.save_under(&dir).unwrap();
        let warm = CostCache::load_or_new(&dir, &preset);
        assert_eq!(
            warm.lookup_coll(Coll::Bcast, &cfg, 4096),
            Some(Time::from_us(5))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("han_cost_cache_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        let preset = mini(2, 5);
        let cache = CostCache::new(&preset);
        cache.record_coll(
            Coll::Allreduce,
            &HanConfig::default(),
            1024,
            Time::from_us(9),
        );
        let path = cache.save_under(&dir).unwrap();
        assert!(path.exists());
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
