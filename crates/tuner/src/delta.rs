//! Delta re-simulation across sweep candidates.
//!
//! The same config at neighbouring message sizes in one segmentation
//! class builds programs that share their DAG structure and every
//! config-derived scalar — only the remainder segment's byte counts
//! differ, so the two timelines are identical until close to the end.
//! [`DeltaSim`] exploits this: per candidate group (template key, or
//! structural fingerprint without one) it keeps one recorded base run and
//! serves subsequent candidates by replaying the unchanged prefix and
//! re-simulating only the divergent suffix
//! ([`han_mpi::Executor::run_delta`]) — bit-identical to a full
//! simulation by construction, falling back to a recording run whenever
//! delta replay does not apply.
//!
//! The first sighting of a group records a checkpointed base outright:
//! a recording stores flat scalar projections rather than a program
//! clone and checkpoints at coarse (half-a-run) spacing, so it costs
//! only ~1.1-1.4x a plain run — cheap enough that even a one-off shape
//! barely overpays, while a group's first scalar divergence replays
//! immediately instead of paying a full re-recording run. The base cache
//! is a small LRU shared across a sweep's workers ([`SharedBases`]), so
//! one worker's recording serves every worker's replays.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use han_machine::Machine;
use han_mpi::{ExecOpts, Executor, OpKind, Program, Recording};
use han_sim::Time;

/// Cumulative [`DeltaSim`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Plain full simulations (non-timing opts bypassing the delta path).
    pub full_runs: u64,
    /// Full simulations that also recorded a checkpointed base (first
    /// sighting of a shape, or a replay miss against a stale base).
    pub recorded_runs: u64,
    /// Runs served by delta replay (including exact-match reuse).
    pub delta_hits: u64,
}

/// Most recently used bases kept in one cache. Sweeps visit candidates
/// grouped by `(coll, m)`, so the live working set is the program shapes
/// of the groups currently in flight across workers.
const MAX_BASES: usize = 32;

/// Recorded bases shared between the [`DeltaSim`] contexts of a sweep's
/// worker threads, keyed by candidate group (template key or structural
/// fingerprint), most recent first.
/// Sweeps distribute `(coll, m)` groups over workers with an atomic
/// cursor, so the candidates sharing a DAG structure (the same config at
/// neighbouring message sizes) usually land on *different* workers —
/// per-worker caches would never see the repeat. Entries are
/// `Arc<Recording>` so replay runs without holding the lock.
pub type SharedBases = Arc<Mutex<Vec<(u64, Arc<Recording>)>>>;

/// A per-worker delta re-simulation context: a persistent [`Executor`]
/// plus an LRU of recorded bases keyed by structural fingerprint.
#[derive(Debug, Default)]
pub struct DeltaSim {
    exec: Executor,
    /// LRU of recorded bases, shareable between workers.
    bases: SharedBases,
    stats: DeltaStats,
}

/// Hash of a program's DAG structure — ranks, dependency lists, op-kind
/// discriminants, message endpoints — excluding every scalar (byte counts,
/// durations) that delta replay is allowed to vary. Used only to group
/// candidate programs; [`Executor::run_delta`] re-verifies structural
/// equality exactly before replaying, so collisions cost a fallback, never
/// correctness.
pub fn structural_fingerprint(prog: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    prog.nranks.hash(&mut h);
    prog.msgs.len().hash(&mut h);
    for op in &prog.ops {
        op.rank.hash(&mut h);
        std::mem::discriminant(&op.kind).hash(&mut h);
        match op.kind {
            OpKind::Send { msg } | OpKind::Recv { msg } => msg.0.hash(&mut h),
            _ => {}
        }
        op.deps.len().hash(&mut h);
        for d in &op.deps {
            d.0.hash(&mut h);
        }
    }
    for m in &prog.msgs {
        m.src.hash(&mut h);
        m.dst.hash(&mut h);
    }
    h.finish()
}

impl DeltaSim {
    pub fn new() -> Self {
        DeltaSim::default()
    }

    /// A fresh base cache to share between the [`DeltaSim`] contexts of
    /// several worker threads (see [`DeltaSim::with_shared`]).
    pub fn shared_bases() -> SharedBases {
        SharedBases::default()
    }

    /// A context whose base cache is `bases`: recordings made by one
    /// worker serve replays on every other.
    pub fn with_shared(bases: SharedBases) -> Self {
        DeltaSim {
            bases,
            ..DeltaSim::default()
        }
    }

    /// Simulated makespan of `prog` — bit-identical to
    /// `execute(machine, prog, opts).makespan`, served by delta replay
    /// when a recorded base for the same candidate group exists.
    ///
    /// `key_hint` is the template key from
    /// [`han_colls::template::TemplateStore::build_into`]. It hashes the
    /// config, collective and segmentation *class* but not the message
    /// size, so same-key candidates share their DAG structure and every
    /// config-derived scalar, differing only in the remainder segment —
    /// divergence lands near the end of the timeline, where replay saves
    /// the most. Distinct configs get distinct keys and therefore their
    /// own bases, so structurally identical but scalar-divergent
    /// candidates never thrash one base. Without a hint the base is keyed
    /// by [`structural_fingerprint`]. Either way the key only selects the
    /// base; [`Executor::run_delta`] re-verifies equivalence exactly, so
    /// a key covering two shapes costs a fallback, never correctness.
    pub fn time(
        &mut self,
        machine: &mut Machine,
        prog: &Program,
        opts: &ExecOpts,
        key_hint: Option<u64>,
    ) -> Time {
        if opts.is_full() || opts.start_times.is_some() {
            // Outside the recorded state space: plain run.
            self.stats.full_runs += 1;
            return self.exec.execute(machine, prog, opts).makespan;
        }
        let fp = match key_hint {
            Some(k) => k,
            None => structural_fingerprint(prog),
        };
        // Clone the base Arc out under the lock; replay itself runs
        // lock-free so workers only serialize on the LRU bookkeeping.
        let base = {
            let mut bases = self.bases.lock().unwrap();
            match bases.iter().position(|(k, _)| *k == fp) {
                Some(idx) => {
                    let b = bases.remove(idx);
                    let rec = b.1.clone();
                    bases.insert(0, b);
                    Some(rec)
                }
                None => None,
            }
        };
        if let Some(base) = base {
            if let Some(rep) = self.exec.run_delta(machine, prog, opts, &base) {
                self.stats.delta_hits += 1;
                return rep.makespan;
            }
            // Replay not applicable: divergence landed before the first
            // checkpoint, or the fingerprint covered two shapes. Refresh
            // the base with this candidate — its neighbourhood of the
            // space is where the next replays will come from.
            let rec = self.exec.run_recorded(machine, prog, opts);
            self.stats.recorded_runs += 1;
            let mk = rec.report().makespan;
            self.insert_base(fp, rec);
            return mk;
        }
        // First sighting (or evicted): record a checkpointed base. The
        // recording is close enough to plain-run cost that a one-off
        // shape barely overpays, and every later sighting of the group —
        // identical or scalar-divergent — replays from it.
        let rec = self.exec.run_recorded(machine, prog, opts);
        self.stats.recorded_runs += 1;
        let mk = rec.report().makespan;
        self.insert_base(fp, rec);
        mk
    }

    fn insert_base(&self, fp: u64, rec: Recording) {
        let mut bases = self.bases.lock().unwrap();
        bases.retain(|(k, _)| *k != fp);
        bases.insert(0, (fp, Arc::new(rec)));
        bases.truncate(MAX_BASES);
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::Coll;
    use han_colls::template::TemplateStore;
    use han_core::{Han, HanConfig};
    use han_machine::{mini, MachinePreset};
    use han_mpi::execute;

    fn timing_opts(stack: &Han) -> ExecOpts {
        use han_colls::MpiStack;
        ExecOpts::timing(stack.flavor().p2p())
    }

    /// Sweep one collective across segment sizes three times: every
    /// candidate timed through DeltaSim must match a fresh full simulation
    /// exactly; pass 1 records one base per segment size and passes 2 and
    /// 3 are exact-match delta replays.
    #[test]
    fn delta_sweep_is_bit_identical_and_hits() {
        let preset: MachinePreset = mini(2, 2);
        let store = TemplateStore::new();
        let mut ds = DeltaSim::new();
        let mut machine = Machine::from_preset(&preset);
        let mut scratch = Program::default();
        let m = 1 << 20;
        for _pass in 0..3 {
            for seg in [64 * 1024u64, 128 * 1024, 256 * 1024] {
                let cfg = HanConfig {
                    fs: seg,
                    ..HanConfig::default()
                };
                let han = Han::with_config(cfg);
                let key = store
                    .build_into(&han, &preset, Coll::Bcast, m, 0, &mut scratch)
                    .unwrap();
                let opts = timing_opts(&han);
                let got = ds.time(&mut machine, &scratch, &opts, key);
                let want = execute(&mut machine, &scratch, &opts).makespan;
                assert_eq!(got, want, "seg={seg}");
            }
        }
        let st = ds.stats();
        assert_eq!(st.recorded_runs, 3, "{st:?}");
        assert_eq!(st.delta_hits, 6, "repeat passes should replay: {st:?}");
        assert_eq!(st.full_runs, 0, "{st:?}");
    }

    /// Without a template-key hint, grouping falls back to the structural
    /// fingerprint: configs whose programs are identical (any `fs ≥ m`
    /// builds the same single-segment program) share one base, and every
    /// sighting after the first is an exact-match replay.
    #[test]
    fn fingerprint_fallback_groups_identical_programs() {
        let preset: MachinePreset = mini(2, 2);
        let mut ds = DeltaSim::new();
        let mut machine = Machine::from_preset(&preset);
        let m = 16 * 1024;
        for seg in [64 * 1024u64, 128 * 1024, 256 * 1024, 512 * 1024] {
            let cfg = HanConfig {
                fs: seg,
                ..HanConfig::default()
            };
            let han = Han::with_config(cfg);
            let prog = han_colls::stack::build_coll(&han, &preset, Coll::Bcast, m, 0).unwrap();
            let opts = timing_opts(&han);
            let got = ds.time(&mut machine, &prog, &opts, None);
            let want = execute(&mut machine, &prog, &opts).makespan;
            assert_eq!(got, want, "seg={seg}");
        }
        let st = ds.stats();
        assert_eq!(
            st,
            DeltaStats {
                full_runs: 0,
                recorded_runs: 1,
                delta_hits: 3,
            }
        );
    }

    /// Same config across message sizes in one segmentation class — the
    /// sweep pattern the template key groups: the first size records a
    /// base, every further size replays from its checkpoints, and each
    /// answer matches a fresh full simulation.
    #[test]
    fn same_key_across_message_sizes_replays() {
        let preset: MachinePreset = mini(2, 2);
        let store = TemplateStore::new();
        let mut ds = DeltaSim::new();
        let mut machine = Machine::from_preset(&preset);
        let mut scratch = Program::default();
        let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
        let sizes: Vec<u64> = (0..6u64).rev().map(|k| (4 << 20) - k * 1024).collect();
        let mut keys = std::collections::HashSet::new();
        for &m in &sizes {
            let key = store
                .build_into(&han, &preset, Coll::Bcast, m, 0, &mut scratch)
                .unwrap();
            keys.insert(key);
            let opts = timing_opts(&han);
            let got = ds.time(&mut machine, &scratch, &opts, key);
            let want = execute(&mut machine, &scratch, &opts).makespan;
            assert_eq!(got, want, "m={m}");
        }
        assert_eq!(keys.len(), 1, "sizes span one template class");
        let st = ds.stats();
        assert_eq!(
            st,
            DeltaStats {
                full_runs: 0,
                recorded_runs: 1,
                delta_hits: 5,
            }
        );
    }

    /// Same shape, genuinely different scalars: the second and third
    /// sightings replay the unchanged prefix from the first recording's
    /// checkpoints — every answer still bit-identical to a fresh full
    /// simulation.
    #[test]
    fn scalar_divergence_replays_from_checkpoints() {
        let preset: MachinePreset = mini(2, 2);
        let mut ds = DeltaSim::new();
        let mut machine = Machine::from_preset(&preset);
        // Same segment count (u = 16 at fs = 256 KiB), different remainder
        // scalars: structurally identical, scalar-divergent programs.
        for m in [(4 << 20) - 4096u64, (4 << 20) - 2048, 4 << 20] {
            let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
            let prog = han_colls::stack::build_coll(&han, &preset, Coll::Bcast, m, 0).unwrap();
            let opts = timing_opts(&han);
            let got = ds.time(&mut machine, &prog, &opts, None);
            let want = execute(&mut machine, &prog, &opts).makespan;
            assert_eq!(got, want, "m={m}");
        }
        let st = ds.stats();
        assert_eq!(
            st,
            DeltaStats {
                full_runs: 0,
                recorded_runs: 1,
                delta_hits: 2,
            }
        );
    }

    #[test]
    fn full_mode_bypasses_delta() {
        let preset = mini(1, 2);
        let mut ds = DeltaSim::new();
        let mut machine = Machine::from_preset(&preset);
        let han = Han::with_config(HanConfig::default());
        let prog = han_colls::stack::build_coll(&han, &preset, Coll::Bcast, 4096, 0).unwrap();
        use han_colls::MpiStack;
        let opts = ExecOpts::with_data(han.flavor().p2p());
        for _ in 0..3 {
            ds.time(&mut machine, &prog, &opts, None);
        }
        let st = ds.stats();
        assert_eq!(st.full_runs, 3);
        assert_eq!(st.delta_hits, 0);
    }
}
