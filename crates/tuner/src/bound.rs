//! Analytic lower bounds on collective makespans, for search pruning.
//!
//! A simulated makespan can never be smaller than the busy time of any
//! single serialized resource, and every HAN machine cost function
//! (`copy_time`, `reduce_time`, `wire_time`) is a pure rate — the executor
//! charges exactly those durations per op on the owning resource. So an
//! *exact sum of the durations of a known subset of ops on one resource*
//! is a sound lower bound on the makespan, with no modeling slack to
//! account for.
//!
//! [`lower_bound`] accounts three such resources, mirroring the task
//! decomposition of `analytic.rs`/`model.rs` (paper eqs. 1–4) but keeping
//! only conservation terms that hold for *every* schedule:
//!
//! * the root leader's NIC: one wire occupancy per inter-node
//!   (sub-)segment message it sends (`ib`) or receives (`ir`), with the
//!   exact `fs`/`ibs`/`irs` segmentation the builders produce;
//! * a pure consumer's CPU: one `copy_time` per segment it cross-copies
//!   out of its level leader's buffer (`sb`);
//! * the root's CPU: one `reduce_time` per contribution it merges, across
//!   the inter tree and every intra level it leads (`ir` + `sr`).
//!
//! The bound intentionally omits latencies, setup delays, bus and
//! dependency effects — it only has to be *below* the true cost, and
//! pruning uses strictly-greater comparison against the incumbent, so the
//! exact winner set of a sweep is provably unchanged (see DESIGN.md).
//!
//! Collectives without a verified conservation argument return `None` and
//! are never pruned.

use han_colls::stack::Coll;
use han_colls::tree::children;
use han_colls::InterModule;
use han_core::HanConfig;
use han_machine::MachinePreset;
use han_mpi::DataType;
use han_sim::Time;

/// HAN segment sizes for message `m` under segment width `fs`:
/// `u − 1` full segments plus a short remainder.
fn segment_sizes(m: u64, fs: u64) -> impl Iterator<Item = u64> {
    let u = m.div_ceil(fs).max(1);
    let rem = m - (u - 1) * fs;
    std::iter::repeat(fs).take((u - 1) as usize).chain([rem])
}

/// Σ `cost(piece)` over a segment optionally split into `sub`-byte pieces
/// (ADAPT's internal segmentation; `None` sends the segment whole).
fn subseg_sum(seg: u64, sub: Option<u64>, cost: &impl Fn(u64) -> Time) -> Time {
    match sub {
        Some(s) if s > 0 && s < seg => {
            let q = seg.div_ceil(s);
            cost(s) * (q - 1) + cost(seg - (q - 1) * s)
        }
        _ => cost(seg),
    }
}

/// Inter-node tree degree at the root, plus the effective sub-segment
/// width, for the configured module/algorithm.
fn inter_root(cfg: &HanConfig, nl: usize, reduce_tree: bool) -> (u64, Option<u64>, bool) {
    match cfg.imod {
        // Libnbc: binomial trees, no internal segmentation, scalar
        // reductions.
        InterModule::Libnbc => {
            let deg = children(han_colls::TreeShape::Binomial, nl, 0).len() as u64;
            (deg, None, false)
        }
        // ADAPT: configured shapes, `ibs`/`irs` segmentation, AVX.
        InterModule::Adapt => {
            let (alg, sub) = if reduce_tree {
                (cfg.iralg, cfg.irs)
            } else {
                (cfg.ibalg, cfg.ibs)
            };
            let deg = children(alg.shape(), nl, 0).len() as u64;
            (deg, sub, true)
        }
    }
}

/// A strict lower bound on `time_coll` for HAN with config `cfg`, or
/// `None` when no sound bound is known for this collective. Assumes the
/// sweep convention `root = 0` (rank 0 leads every level it belongs to).
pub fn lower_bound(preset: &MachinePreset, cfg: &HanConfig, coll: Coll, m: u64) -> Option<Time> {
    if m == 0 {
        return Some(Time::ZERO);
    }
    let topo = &preset.topology;
    let node = &preset.node;
    let net = &preset.net;
    let lv = preset.level_params();
    let nl = topo.nodes();
    let world = topo.world_size();
    let el = DataType::Float32.size() as u64;

    // One message can use at most the aggregate injection bandwidth of all
    // rails (exact for striping, optimistic — hence still sound — for
    // round-robin); with one rail this is exactly `net.wire_time`.
    let wire = |b: u64| Time::for_bytes(b, lv.get(0).bandwidth * net.rails as f64);
    let copy = |b: u64| node.copy_time(b);

    // Σ over segments of Σ over sub-segments of `cost`.
    let seg_sum = |fs: u64, sub: Option<u64>, cost: &dyn Fn(u64) -> Time| -> Time {
        segment_sizes(m, fs)
            .map(|s| subseg_sum(s, sub, &|b| cost(b)))
            .sum()
    };

    // Root wire occupancy of the ib phase: one send per child per
    // (sub-)segment. With segment routing the tree — and so the root's
    // degree — varies by segment index, exactly as the builders dispatch
    // it, so the per-segment sum stays an exact conservation term (and
    // collapses to `seg_sum × deg` for route-less configs).
    let ib_wire = |fs: u64| -> Time {
        let (deg, ibs, _) = inter_root(cfg, nl, false);
        match cfg.route {
            Some(r) if cfg.imod == InterModule::Adapt => {
                let deg_alt = children(r.alt.shape(), nl, 0).len() as u64;
                segment_sizes(m, fs)
                    .enumerate()
                    .map(|(i, s)| {
                        let d = if (i as u64) % han_core::ROUTE_PERIOD < r.pri as u64 {
                            deg
                        } else {
                            deg_alt
                        };
                        subseg_sum(s, ibs, &wire) * d
                    })
                    .sum()
            }
            _ => seg_sum(fs, ibs, &wire) * deg,
        }
    };

    // Root CPU time merging `k − 1` contributions per intra level it
    // leads, plus the inter-node reduce tree (allreduce/reduce only).
    let root_reduce_cpu = |fs: u64| -> Time {
        let mut t = Time::ZERO;
        if nl > 1 {
            // Inter-tree merges are local `Reduce` ops, which the executor
            // charges at the innermost level's rate.
            let (deg, irs, vect) = inter_root(cfg, nl, true);
            t += seg_sum(fs, irs, &|b| lv.innermost().reduce_time(b, vect)) * deg;
        }
        for level in 1..topo.depth() {
            let k = topo.levels()[level] as u64;
            if k > 1 {
                // Intra merges are `ReduceFrom` ops across level-`level`
                // subgroups, charged at that level's rate.
                let vect = matches!(cfg.smod_at(level), han_colls::IntraModule::Solo);
                t += seg_sum(fs, None, &|b| lv.get(level).reduce_time(b, vect)) * (k - 1);
            }
        }
        t
    };

    match coll {
        Coll::Bcast => {
            let fs = han_machine::coarsen_fs(cfg.fs.max(1), m, node, &lv);
            let mut best = Time::ZERO;
            if nl > 1 {
                best = best.max(ib_wire(fs));
            }
            if world > nl {
                // A pure consumer cross-copies every segment once.
                best = best.max(seg_sum(fs, None, &copy));
            }
            Some(best)
        }
        Coll::Allreduce | Coll::Reduce => {
            let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, m, node, &lv);
            let mut best = root_reduce_cpu(fs);
            if nl > 1 {
                let (deg_r, irs, _) = inter_root(cfg, nl, true);
                best = best.max(seg_sum(fs, irs, &wire) * deg_r);
                if coll == Coll::Allreduce {
                    best = best.max(ib_wire(fs));
                }
            }
            if coll == Coll::Allreduce && world > nl {
                // The final broadcast cross-copies every segment to each
                // pure consumer.
                best = best.max(seg_sum(fs, None, &copy));
            }
            Some(best)
        }
        // No conservation argument verified for these paths; never prune.
        Coll::Gather | Coll::Scatter | Coll::Allgather | Coll::Barrier => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::time_coll;
    use han_colls::{InterAlg, IntraModule};
    use han_core::Han;
    use han_machine::{mini, mini3, socketize};

    fn configs() -> Vec<HanConfig> {
        let mut out = Vec::new();
        for fs in [1024, 64 * 1024, 1 << 20] {
            for imod in [InterModule::Libnbc, InterModule::Adapt] {
                for smod in [IntraModule::Sm, IntraModule::Solo] {
                    for alg in [InterAlg::Chain, InterAlg::Binomial] {
                        let mut cfg = HanConfig::default().with_fs(fs).with_intra(smod);
                        cfg.imod = imod;
                        cfg.ibalg = alg;
                        cfg.iralg = alg;
                        if imod == InterModule::Adapt && fs > 1024 {
                            cfg.ibs = Some(16 * 1024);
                            cfg.irs = Some(8 * 1024);
                        }
                        out.push(cfg);
                    }
                }
            }
        }
        out
    }

    /// The defining property: the bound never exceeds the simulated cost.
    #[test]
    fn bound_is_below_simulated_cost() {
        for preset in [mini(4, 4), mini(2, 1), mini(1, 6), mini3(2, 2, 2)] {
            for cfg in configs() {
                for coll in [Coll::Bcast, Coll::Allreduce, Coll::Reduce] {
                    for m in [64u64, 4096, 100_000, 1 << 20] {
                        let Some(lb) = lower_bound(&preset, &cfg, coll, m) else {
                            continue;
                        };
                        let t = time_coll(&Han::with_config(cfg), &preset, coll, m, 0).unwrap();
                        assert!(
                            lb <= t,
                            "{} {coll:?} m={m} cfg={cfg:?}: bound {lb} > cost {t}",
                            preset.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bound_is_nontrivial_at_scale() {
        // At large message sizes the bandwidth terms dominate: the bound
        // must capture a decent fraction of the true cost, otherwise it
        // prunes nothing.
        let preset = mini(4, 4);
        let cfg = HanConfig::default().with_fs(256 * 1024);
        let m = 8 << 20;
        let lb = lower_bound(&preset, &cfg, Coll::Bcast, m).unwrap();
        let t = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, m, 0).unwrap();
        assert!(
            lb.as_ps() * 4 >= t.as_ps(),
            "bound {lb} too loose vs cost {t}"
        );
    }

    #[test]
    fn unbounded_collectives_return_none() {
        let preset = mini(2, 2);
        let cfg = HanConfig::default();
        for coll in [Coll::Gather, Coll::Scatter, Coll::Allgather, Coll::Barrier] {
            assert_eq!(lower_bound(&preset, &cfg, coll, 4096), None);
        }
    }

    #[test]
    fn heterogeneous_and_multi_rail_bounds_hold() {
        use han_machine::{dgx_like, gpu_hier};
        for preset in [dgx_like(2, 4), dgx_like(4, 2), gpu_hier(&[2, 2, 2])] {
            for cfg in configs().into_iter().step_by(3) {
                for coll in [Coll::Bcast, Coll::Allreduce, Coll::Reduce] {
                    for m in [4096u64, 1 << 20] {
                        let Some(lb) = lower_bound(&preset, &cfg, coll, m) else {
                            continue;
                        };
                        let t = time_coll(&Han::with_config(cfg), &preset, coll, m, 0).unwrap();
                        assert!(
                            lb <= t,
                            "{} {coll:?} m={m} cfg={cfg:?}: bound {lb} > cost {t}",
                            preset.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn three_level_socketized_bound_holds() {
        let preset = socketize(mini(2, 8), 2, 0.6);
        for smod in [IntraModule::Sm, IntraModule::Solo] {
            let cfg = HanConfig::default()
                .with_fs(128 * 1024)
                .with_intra(smod)
                .with_deep(2, IntraModule::Sm);
            for coll in [Coll::Bcast, Coll::Allreduce] {
                let m = 2 << 20;
                let lb = lower_bound(&preset, &cfg, coll, m).unwrap();
                let t = time_coll(&Han::with_config(cfg), &preset, coll, m, 0).unwrap();
                assert!(lb <= t, "{coll:?}: bound {lb} > cost {t}");
            }
        }
    }
}
