//! Search-space pruning heuristics (paper section III-C).
//!
//! "For instance, we only use the SOLO submodule when the segment size is
//! larger than 512KB since experimental results suggest SM has better
//! performance than SOLO for small messages. … we know that the chain
//! algorithm in ADAPT can only perform well when there are enough segments
//! to kick-start the pipelining, we can therefore prevent the chain
//! algorithm from being tested when there are less than a certain number
//! of segments depending on the number of processes involved."
//!
//! Heuristics trade search time for accuracy (Figs. 8/9 quantify both
//! directions), so they are strictly opt-in.

use han_colls::{InterAlg, IntraModule};
use han_core::HanConfig;

/// SOLO pays its window-setup cost only above this segment size.
pub const SOLO_MIN_SEG: u64 = 512 * 1024;

/// Admit a configuration for message size `m` on `nodes` nodes?
pub fn admit(cfg: &HanConfig, m: u64, nodes: usize) -> bool {
    admit_seg(cfg, nodes) && admit_chain(cfg, m, nodes)
}

/// Segment-size-only rules (usable before the message size is known).
pub fn admit_seg(cfg: &HanConfig, _nodes: usize) -> bool {
    admit_module(cfg.smod, cfg.fs)
}

/// The SM/SOLO crossover rule for one submodule choice — applied to the
/// Table-II `smod` and to every per-level `deep` override alike.
pub fn admit_module(smod: IntraModule, fs: u64) -> bool {
    match smod {
        IntraModule::Solo => fs >= SOLO_MIN_SEG,
        IntraModule::Sm => fs < SOLO_MIN_SEG,
    }
}

/// The chain algorithm needs enough segments to fill its pipeline: the
/// number of HAN segments must be at least the number of pipeline hops
/// (nodes - 1).
pub fn admit_chain(cfg: &HanConfig, m: u64, nodes: usize) -> bool {
    if cfg.ibalg != InterAlg::Chain && cfg.iralg != InterAlg::Chain {
        return true;
    }
    cfg.segments(m) as usize >= nodes.saturating_sub(1).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::InterModule;

    fn cfg(fs: u64, smod: IntraModule, alg: InterAlg) -> HanConfig {
        HanConfig {
            fs,
            imod: InterModule::Adapt,
            smod,
            ibalg: alg,
            iralg: alg,
            ibs: None,
            irs: None,
            deep: [None; han_core::MAX_DEEP],
            route: None,
        }
    }

    #[test]
    fn solo_only_for_large_segments() {
        assert!(!admit_seg(
            &cfg(64 * 1024, IntraModule::Solo, InterAlg::Binomial),
            8
        ));
        assert!(admit_seg(
            &cfg(512 * 1024, IntraModule::Solo, InterAlg::Binomial),
            8
        ));
        assert!(admit_seg(
            &cfg(64 * 1024, IntraModule::Sm, InterAlg::Binomial),
            8
        ));
        assert!(!admit_seg(
            &cfg(1 << 20, IntraModule::Sm, InterAlg::Binomial),
            8
        ));
    }

    #[test]
    fn chain_needs_segments() {
        // 8 nodes: chain needs >= 7 segments.
        let c = cfg(128 * 1024, IntraModule::Sm, InterAlg::Chain);
        assert!(!admit_chain(&c, 256 * 1024, 8)); // 2 segments
        assert!(admit_chain(&c, 1 << 20, 8)); // 8 segments
                                              // Non-chain algorithms are never pruned by this rule.
        let b = cfg(128 * 1024, IntraModule::Sm, InterAlg::Binomial);
        assert!(admit_chain(&b, 4, 64));
    }

    #[test]
    fn combined_rule() {
        let c = cfg(1 << 20, IntraModule::Solo, InterAlg::Chain);
        assert!(admit(&c, 16 << 20, 8)); // 16 segments >= 7, solo >= 512K
        assert!(!admit(&c, 2 << 20, 8)); // only 2 segments
    }
}
