//! Fitting analytic model parameters from measurements (PLogP-style).
//!
//! The conventional models the paper criticizes (section I-B) are
//! parameterized by a handful of network constants that practitioners
//! *measure* — Kielmann et al.'s PLogP paper (ref \[18\]) is exactly a
//! fast measurement procedure. This module fits the LogGP-style
//! `T(m) = α + m·G` from ping-pong samples so the analytic baselines in
//! [`crate::analytic`] can be driven by measured rather than nominal
//! parameters, the fairest version of the comparison.

use han_sim::Time;

/// Fitted point-to-point parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedP2p {
    /// Zero-byte one-way latency (α): intercept of the fit.
    pub alpha: Time,
    /// Per-byte gap (G), seconds per byte: slope of the fit.
    pub gap_per_byte: f64,
    /// Equivalent asymptotic bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Coefficient of determination of the linear fit (sanity signal:
    /// protocol switch points show up as poor fits).
    pub r2: f64,
}

/// Fit `T(m) = α + m·G` to `(bytes, one_way_time)` samples by ordinary
/// least squares. At least two distinct sizes are required.
pub fn fit_logp(samples: &[(u64, Time)]) -> FittedP2p {
    assert!(
        samples.len() >= 2,
        "need at least two samples to fit α and G"
    );
    let n = samples.len() as f64;
    let xs: Vec<f64> = samples.iter().map(|(b, _)| *b as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|(_, t)| t.as_secs_f64()).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 0.0, "need at least two distinct sizes");
    let g = (n * sxy - sx * sy) / denom;
    let a = (sy - g * sx) / n;

    // R²
    let mean_y = sy / n;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (y - (a + g * x)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    FittedP2p {
        alpha: Time::from_secs_f64(a.max(0.0)),
        gap_per_byte: g.max(0.0),
        bandwidth: if g > 0.0 { 1.0 / g } else { f64::INFINITY },
        r2,
    }
}

/// Fit only over samples at or above `min_bytes` (skip the eager/latency
/// regime, where the linear model does not hold).
pub fn fit_logp_large(samples: &[(u64, Time)], min_bytes: u64) -> FittedP2p {
    let large: Vec<(u64, Time)> = samples
        .iter()
        .copied()
        .filter(|(b, _)| *b >= min_bytes)
        .collect();
    fit_logp(&large)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(alpha_us: f64, bw: f64, sizes: &[u64]) -> Vec<(u64, Time)> {
        sizes
            .iter()
            .map(|&b| (b, Time::from_secs_f64(alpha_us * 1e-6 + b as f64 / bw)))
            .collect()
    }

    #[test]
    fn recovers_exact_linear_parameters() {
        let samples = synth(2.0, 10e9, &[1024, 4096, 65536, 1 << 20, 16 << 20]);
        let fit = fit_logp(&samples);
        assert!((fit.alpha.as_us_f64() - 2.0).abs() < 0.05, "{fit:?}");
        assert!((fit.bandwidth - 10e9).abs() / 10e9 < 0.01, "{fit:?}");
        assert!(fit.r2 > 0.9999);
    }

    #[test]
    fn protocol_kink_lowers_r2() {
        // A rendezvous step at 64 KB breaks linearity.
        let mut samples = synth(2.0, 10e9, &[1024, 4096, 16384]);
        for &b in &[65536u64, 1 << 20, 16 << 20] {
            samples.push((
                b,
                Time::from_secs_f64(12.0e-6 + b as f64 / 10e9), // +10us handshake
            ));
        }
        let kinked = fit_logp(&samples);
        let clean = fit_logp(&synth(2.0, 10e9, &[1024, 65536, 1 << 20, 16 << 20]));
        assert!(kinked.r2 <= clean.r2);
        // Restricting to the large regime recovers the true bandwidth.
        let large = fit_logp_large(&samples, 65536);
        assert!((large.bandwidth - 10e9).abs() / 10e9 < 0.01);
        assert!((large.alpha.as_us_f64() - 12.0).abs() < 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_underdetermined_input() {
        fit_logp(&[(1024, Time::from_us(3))]);
    }

    #[test]
    fn fit_matches_simulated_pingpong_shape() {
        // End-to-end: fit against the simulator's own transport and check
        // the recovered bandwidth is near the configured NIC rate.
        use han_machine::{mini, Flavor, Machine};
        use han_mpi::{execute, ExecOpts, ProgramBuilder};
        let preset = mini(2, 1);
        let mut samples = Vec::new();
        for bytes in [256 * 1024u64, 1 << 20, 4 << 20, 16 << 20] {
            let mut b = ProgramBuilder::new(2);
            let (_, r1) = b.send_recv(0, 1, bytes, None, None, &[], &[]);
            b.send_recv(1, 0, bytes, None, None, &[r1], &[]);
            let prog = b.build();
            let mut m = Machine::from_preset(&preset);
            let rep = execute(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p()));
            samples.push((bytes, rep.makespan / 2));
        }
        let fit = fit_logp(&samples);
        let nic = preset.net.nic_bw;
        assert!(
            (fit.bandwidth - nic).abs() / nic < 0.1,
            "fitted {:.3e} vs nic {nic:.3e}",
            fit.bandwidth
        );
        assert!(fit.r2 > 0.999);
    }
}
