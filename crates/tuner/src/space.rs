//! Search spaces: the inputs of autotuning (Table I) and the enumeration
//! of candidate configurations (Table II).

use crate::heuristics;
use han_colls::{InterAlg, InterModule, IntraModule};
use han_core::{HanConfig, MAX_DEEP};
use han_machine::Topology;
use serde::{Deserialize, Serialize};

/// The discrete search space over which autotuning runs. The continuous
/// message-size axis is sampled at powers of two ("most approaches use
/// discrete message sizes such as 4B, 8B, 16B, 32B, …, to sample the
/// continuous value").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Message sizes `M`.
    pub msg_sizes: Vec<u64>,
    /// HAN segment sizes `S` (candidate `fs` values).
    pub seg_sizes: Vec<u64>,
    /// Inter-node (submodule, algorithm) pairs `A`. Libnbc ignores the
    /// algorithm (always binomial), so it contributes one entry.
    pub inter: Vec<(InterModule, InterAlg)>,
    /// Intra-node submodules.
    pub intra: Vec<IntraModule>,
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

impl SearchSpace {
    /// The space used by the tuning experiments (Figs. 4, 8, 9): messages
    /// 4 B – 16 MB, segments 4 KB – 4 MB.
    pub fn standard() -> Self {
        SearchSpace {
            msg_sizes: pow2_range(4, 16 << 20),
            seg_sizes: pow2_range(4 * 1024, 4 << 20),
            inter: Self::inter_full(),
            intra: vec![IntraModule::Sm, IntraModule::Solo],
        }
    }

    /// A reduced space for tests and examples.
    pub fn small() -> Self {
        SearchSpace {
            msg_sizes: pow2_range(1024, 1 << 20),
            seg_sizes: pow2_range(16 * 1024, 512 * 1024),
            inter: Self::inter_full(),
            intra: vec![IntraModule::Sm, IntraModule::Solo],
        }
    }

    fn inter_full() -> Vec<(InterModule, InterAlg)> {
        let mut v = vec![(InterModule::Libnbc, InterAlg::Binomial)];
        for alg in InterAlg::ALL {
            v.push((InterModule::Adapt, alg));
        }
        v
    }

    /// Number of algorithm combinations `A` (submodules × algorithms).
    pub fn algo_count(&self) -> usize {
        self.inter.len() * self.intra.len()
    }

    /// Enumerate candidate configurations for message size `m`, optionally
    /// pruned by the section III-C heuristics. Segment sizes larger than
    /// the message collapse to a single whole-message segment (deduped).
    pub fn configs(&self, m: u64, nodes: usize, heuristic: bool) -> Vec<HanConfig> {
        let mut out = Vec::new();
        let mut seen_fs = Vec::new();
        for &fs_raw in &self.seg_sizes {
            let fs = fs_raw.min(m.max(1));
            if seen_fs.contains(&fs) {
                continue;
            }
            seen_fs.push(fs);
            for &(imod, alg) in &self.inter {
                for &smod in &self.intra {
                    let cfg = HanConfig {
                        fs,
                        imod,
                        smod,
                        ibalg: alg,
                        iralg: alg,
                        ibs: None,
                        irs: None,
                        deep: [None; MAX_DEEP],
                        route: None,
                    };
                    if heuristic && !heuristics::admit(&cfg, m, nodes) {
                        continue;
                    }
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// Configurations across all segment sizes ignoring the message size
    /// (the task-based search benchmarks per segment size, not per
    /// message).
    pub fn seg_configs(&self, nodes: usize, heuristic: bool) -> Vec<HanConfig> {
        let mut out = Vec::new();
        for &fs in &self.seg_sizes {
            for &(imod, alg) in &self.inter {
                for &smod in &self.intra {
                    let cfg = HanConfig {
                        fs,
                        imod,
                        smod,
                        ibalg: alg,
                        iralg: alg,
                        ibs: None,
                        irs: None,
                        deep: [None; MAX_DEEP],
                        route: None,
                    };
                    // For seg-level pruning only segment-dependent rules
                    // apply (the chain rule needs m; use a permissive
                    // many-segment assumption here and re-check per m).
                    if heuristic && !heuristics::admit_seg(&cfg, nodes) {
                        continue;
                    }
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// [`SearchSpace::configs`], generalized to an N-level topology: on a
    /// two-level machine this is byte-identical to `configs`; deeper
    /// machines additionally cross in per-level `deep` submodule overrides
    /// for levels `2..depth`. A `deep` entry equal to the base `smod` is
    /// redundant (the fallback already selects it), so only genuinely
    /// distinct overrides are enumerated — the space grows by the number
    /// of *observably different* per-level assignments, not `|intra|^d`.
    pub fn configs_for(&self, m: u64, topo: &Topology, heuristic: bool) -> Vec<HanConfig> {
        self.deepen(self.configs(m, topo.nodes(), heuristic), topo, heuristic)
    }

    /// [`SearchSpace::seg_configs`], generalized to an N-level topology
    /// (same deep-override enumeration as [`SearchSpace::configs_for`]).
    pub fn seg_configs_for(&self, topo: &Topology, heuristic: bool) -> Vec<HanConfig> {
        self.deepen(self.seg_configs(topo.nodes(), heuristic), topo, heuristic)
    }

    /// Cross a two-level candidate list with per-level `deep` overrides for
    /// the topology's levels below the node leader level.
    fn deepen(&self, base: Vec<HanConfig>, topo: &Topology, heuristic: bool) -> Vec<HanConfig> {
        let deep_levels = topo.depth().saturating_sub(2);
        if deep_levels == 0 {
            return base;
        }
        let mut out = Vec::new();
        for cfg in base {
            // Per deep level: keep the fallback (None) or override with a
            // distinct submodule that the heuristics admit at this segment
            // size.
            let choices: Vec<Vec<Option<IntraModule>>> = (0..deep_levels)
                .map(|_| {
                    let mut c = vec![None];
                    for &sm in &self.intra {
                        if sm != cfg.smod && (!heuristic || heuristics::admit_module(sm, cfg.fs)) {
                            c.push(Some(sm));
                        }
                    }
                    c
                })
                .collect();
            let mut assign = vec![0usize; deep_levels];
            loop {
                let mut c = cfg;
                for (d, &i) in assign.iter().enumerate() {
                    c.deep[d] = choices[d][i];
                }
                out.push(c);
                // Odometer increment over the per-level choice lists.
                let mut d = 0;
                loop {
                    if d == deep_levels {
                        break;
                    }
                    assign[d] += 1;
                    if assign[d] < choices[d].len() {
                        break;
                    }
                    assign[d] = 0;
                    d += 1;
                }
                if d == deep_levels {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ranges() {
        assert_eq!(pow2_range(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(pow2_range(8, 8), vec![8]);
        assert!(pow2_range(16, 8).is_empty());
    }

    #[test]
    fn standard_space_dimensions() {
        let s = SearchSpace::standard();
        // 4B..16MB = 23 sizes; 4KB..4MB = 11 segment sizes.
        assert_eq!(s.msg_sizes.len(), 23);
        assert_eq!(s.seg_sizes.len(), 11);
        // A = (libnbc + adapt×3) × (sm, solo) = 8.
        assert_eq!(s.algo_count(), 8);
    }

    #[test]
    fn configs_dedupe_oversized_segments() {
        let s = SearchSpace::small();
        // m smaller than every segment size: all fs collapse to m.
        let configs = s.configs(1024, 8, false);
        assert!(configs.iter().all(|c| c.fs == 1024));
        assert_eq!(configs.len(), s.algo_count());
    }

    #[test]
    fn heuristics_prune() {
        let s = SearchSpace::standard();
        let all = s.configs(16 << 20, 8, false);
        let pruned = s.configs(16 << 20, 8, true);
        assert!(pruned.len() < all.len());
        // SOLO never below 512K segments, SM never at/above.
        for c in &pruned {
            if c.fs < 512 * 1024 {
                assert_eq!(c.smod, han_colls::IntraModule::Sm, "{c}");
            } else {
                assert_eq!(c.smod, han_colls::IntraModule::Solo, "{c}");
            }
        }
    }

    #[test]
    fn full_space_size_matches_formula() {
        // |configs(m)| = S × A when m ≥ max segment.
        let s = SearchSpace::standard();
        let configs = s.configs(16 << 20, 8, false);
        assert_eq!(configs.len(), s.seg_sizes.len() * s.algo_count());
    }
}
