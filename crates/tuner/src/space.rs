//! Search spaces: the inputs of autotuning (Table I) and the enumeration
//! of candidate configurations (Table II).

use crate::heuristics;
use han_colls::{InterAlg, InterModule, IntraModule};
use han_core::HanConfig;
use serde::{Deserialize, Serialize};

/// The discrete search space over which autotuning runs. The continuous
/// message-size axis is sampled at powers of two ("most approaches use
/// discrete message sizes such as 4B, 8B, 16B, 32B, …, to sample the
/// continuous value").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Message sizes `M`.
    pub msg_sizes: Vec<u64>,
    /// HAN segment sizes `S` (candidate `fs` values).
    pub seg_sizes: Vec<u64>,
    /// Inter-node (submodule, algorithm) pairs `A`. Libnbc ignores the
    /// algorithm (always binomial), so it contributes one entry.
    pub inter: Vec<(InterModule, InterAlg)>,
    /// Intra-node submodules.
    pub intra: Vec<IntraModule>,
}

/// Powers of two from `lo` to `hi` inclusive.
pub fn pow2_range(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut x = lo;
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

impl SearchSpace {
    /// The space used by the tuning experiments (Figs. 4, 8, 9): messages
    /// 4 B – 16 MB, segments 4 KB – 4 MB.
    pub fn standard() -> Self {
        SearchSpace {
            msg_sizes: pow2_range(4, 16 << 20),
            seg_sizes: pow2_range(4 * 1024, 4 << 20),
            inter: Self::inter_full(),
            intra: vec![IntraModule::Sm, IntraModule::Solo],
        }
    }

    /// A reduced space for tests and examples.
    pub fn small() -> Self {
        SearchSpace {
            msg_sizes: pow2_range(1024, 1 << 20),
            seg_sizes: pow2_range(16 * 1024, 512 * 1024),
            inter: Self::inter_full(),
            intra: vec![IntraModule::Sm, IntraModule::Solo],
        }
    }

    fn inter_full() -> Vec<(InterModule, InterAlg)> {
        let mut v = vec![(InterModule::Libnbc, InterAlg::Binomial)];
        for alg in InterAlg::ALL {
            v.push((InterModule::Adapt, alg));
        }
        v
    }

    /// Number of algorithm combinations `A` (submodules × algorithms).
    pub fn algo_count(&self) -> usize {
        self.inter.len() * self.intra.len()
    }

    /// Enumerate candidate configurations for message size `m`, optionally
    /// pruned by the section III-C heuristics. Segment sizes larger than
    /// the message collapse to a single whole-message segment (deduped).
    pub fn configs(&self, m: u64, nodes: usize, heuristic: bool) -> Vec<HanConfig> {
        let mut out = Vec::new();
        let mut seen_fs = Vec::new();
        for &fs_raw in &self.seg_sizes {
            let fs = fs_raw.min(m.max(1));
            if seen_fs.contains(&fs) {
                continue;
            }
            seen_fs.push(fs);
            for &(imod, alg) in &self.inter {
                for &smod in &self.intra {
                    let cfg = HanConfig {
                        fs,
                        imod,
                        smod,
                        ibalg: alg,
                        iralg: alg,
                        ibs: None,
                        irs: None,
                    };
                    if heuristic && !heuristics::admit(&cfg, m, nodes) {
                        continue;
                    }
                    out.push(cfg);
                }
            }
        }
        out
    }

    /// Configurations across all segment sizes ignoring the message size
    /// (the task-based search benchmarks per segment size, not per
    /// message).
    pub fn seg_configs(&self, nodes: usize, heuristic: bool) -> Vec<HanConfig> {
        let mut out = Vec::new();
        for &fs in &self.seg_sizes {
            for &(imod, alg) in &self.inter {
                for &smod in &self.intra {
                    let cfg = HanConfig {
                        fs,
                        imod,
                        smod,
                        ibalg: alg,
                        iralg: alg,
                        ibs: None,
                        irs: None,
                    };
                    // For seg-level pruning only segment-dependent rules
                    // apply (the chain rule needs m; use a permissive
                    // many-segment assumption here and re-check per m).
                    if heuristic && !heuristics::admit_seg(&cfg, nodes) {
                        continue;
                    }
                    out.push(cfg);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_ranges() {
        assert_eq!(pow2_range(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(pow2_range(8, 8), vec![8]);
        assert!(pow2_range(16, 8).is_empty());
    }

    #[test]
    fn standard_space_dimensions() {
        let s = SearchSpace::standard();
        // 4B..16MB = 23 sizes; 4KB..4MB = 11 segment sizes.
        assert_eq!(s.msg_sizes.len(), 23);
        assert_eq!(s.seg_sizes.len(), 11);
        // A = (libnbc + adapt×3) × (sm, solo) = 8.
        assert_eq!(s.algo_count(), 8);
    }

    #[test]
    fn configs_dedupe_oversized_segments() {
        let s = SearchSpace::small();
        // m smaller than every segment size: all fs collapse to m.
        let configs = s.configs(1024, 8, false);
        assert!(configs.iter().all(|c| c.fs == 1024));
        assert_eq!(configs.len(), s.algo_count());
    }

    #[test]
    fn heuristics_prune() {
        let s = SearchSpace::standard();
        let all = s.configs(16 << 20, 8, false);
        let pruned = s.configs(16 << 20, 8, true);
        assert!(pruned.len() < all.len());
        // SOLO never below 512K segments, SM never at/above.
        for c in &pruned {
            if c.fs < 512 * 1024 {
                assert_eq!(c.smod, han_colls::IntraModule::Sm, "{c}");
            } else {
                assert_eq!(c.smod, han_colls::IntraModule::Solo, "{c}");
            }
        }
    }

    #[test]
    fn full_space_size_matches_formula() {
        // |configs(m)| = S × A when m ≥ max segment.
        let s = SearchSpace::standard();
        let configs = s.configs(16 << 20, 8, false);
        assert_eq!(configs.len(), s.seg_sizes.len() * s.algo_count());
    }
}
