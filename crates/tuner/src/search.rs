//! The four tuning strategies compared in Figs. 8 and 9.
//!
//! * **Exhaustive** — benchmark every configuration of the whole
//!   collective at every message size: search space `M×S×A` (per machine
//!   shape), guaranteed optimal, extremely expensive.
//! * **Exhaustive + heuristics** — the same with the section III-C
//!   pruning rules.
//! * **Task-based** (HAN) — benchmark tasks once per configuration
//!   (`T×S×A`), then evaluate the eq. (3)/(4) cost model per message
//!   size. Task costs are reused across message sizes *and* collectives.
//! * **Task-based + heuristics** — both reductions combined.
//!
//! Tuning cost is measured in *virtual benchmark time* (what the cluster
//! would spend) plus the run count; both are reported per strategy.

use crate::bound::lower_bound;
use crate::cache::CostCache;
use crate::delta::DeltaSim;
use crate::model::predict;
use crate::space::SearchSpace;
use crate::table::LookupTable;
use crate::taskbench::{TaskBench, BENCH_ITERS};
use han_colls::stack::{time_coll_on, Coll, Unsupported};
use han_colls::template::{time_coll_templated, TemplateStore};
use han_colls::MpiStack;
use han_core::{Han, HanConfig};
use han_machine::{Machine, MachinePreset};
use han_mpi::{ExecOpts, Program};
use han_sim::Time;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    Exhaustive,
    ExhaustiveHeuristic,
    TaskBased,
    TaskBasedHeuristic,
}

impl Strategy {
    pub const ALL: [Strategy; 4] = [
        Strategy::Exhaustive,
        Strategy::ExhaustiveHeuristic,
        Strategy::TaskBased,
        Strategy::TaskBasedHeuristic,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::ExhaustiveHeuristic => "exhaustive+heuristics",
            Strategy::TaskBased => "task-based",
            Strategy::TaskBasedHeuristic => "task-based+heuristics",
        }
    }

    pub fn heuristic(&self) -> bool {
        matches!(
            self,
            Strategy::ExhaustiveHeuristic | Strategy::TaskBasedHeuristic
        )
    }

    pub fn task_based(&self) -> bool {
        matches!(self, Strategy::TaskBased | Strategy::TaskBasedHeuristic)
    }
}

/// The outcome of one tuning run.
#[derive(Debug)]
pub struct TuneResult {
    pub strategy: Strategy,
    pub table: LookupTable,
    /// Total virtual benchmark time (the Fig. 8 metric).
    pub tuning_time: Time,
    /// Number of benchmark runs executed.
    pub searches: u64,
    /// For the exhaustive strategies: every measured `(coll, m, cfg, cost)`
    /// sample, enabling best/median/average analysis (Fig. 9).
    pub samples: Vec<(Coll, u64, HanConfig, Time)>,
    /// Collectives the stack or cost model declined, deduplicated — the
    /// sweep skips them and reports here instead of panicking.
    pub skipped: Vec<Unsupported>,
    /// Candidate configurations skipped because their analytic lower bound
    /// already exceeded the incumbent best (see [`crate::bound`]); always
    /// zero unless [`TuneOpts::prune`] is set.
    pub pruned: u64,
}

/// Knobs for [`tune_with_opts`] beyond strategy and cache.
#[derive(Debug, Clone, Copy)]
pub struct TuneOpts {
    /// Skip simulating candidates whose analytic lower bound strictly
    /// exceeds the incumbent best for the same `(coll, m)` group. Winners
    /// are provably identical; `tuning_time`/`searches`/`samples` shrink
    /// to the simulated subset.
    pub prune: bool,
    /// Serve sweep candidates by delta re-simulation ([`crate::delta`]):
    /// structurally identical programs replay the unchanged event prefix
    /// from a recorded checkpoint and re-simulate only the divergent
    /// suffix. Every reported cost is bit-identical to a full simulation,
    /// so this defaults to on.
    pub delta: bool,
}

impl Default for TuneOpts {
    fn default() -> Self {
        TuneOpts {
            prune: false,
            delta: true,
        }
    }
}

fn note_skip(skipped: &mut Vec<Unsupported>, e: Unsupported) {
    if !skipped.contains(&e) {
        skipped.push(e);
    }
}

/// Run autotuning over `space` for the given collectives.
pub fn tune(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
) -> TuneResult {
    tune_with_cache(preset, space, colls, strategy, None)
}

/// [`tune`], optionally memoizing simulated costs in a shared
/// [`CostCache`]. Results (tables, samples, virtual tuning times) are
/// identical with or without a cache — only host wall-clock differs.
pub fn tune_with_cache(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
) -> TuneResult {
    tune_with_opts(preset, space, colls, strategy, cache, TuneOpts::default())
}

/// [`tune_with_cache`] with explicit [`TuneOpts`]. With `prune` enabled
/// the exhaustive strategies skip provably-losing candidates; the selected
/// winners are identical either way.
pub fn tune_with_opts(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
    opts: TuneOpts,
) -> TuneResult {
    if strategy.task_based() {
        tune_task_based(preset, space, colls, strategy, cache)
    } else {
        tune_exhaustive(preset, space, colls, strategy, cache, opts)
    }
}

/// Simulate (or recall) the latency of one HAN collective configuration.
/// Sweeps pass a [`TemplateStore`] plus a worker-local scratch program so
/// repeated shapes specialize an interned template into reused allocations
/// instead of rebuilding the DAG, and optionally a worker-local
/// [`DeltaSim`] so structurally identical candidates replay their shared
/// event prefix instead of re-simulating from scratch — bit-identical
/// results either way.
#[allow(clippy::too_many_arguments)]
fn coll_cost(
    machine: &mut Machine,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
    cfg: HanConfig,
    cache: Option<&CostCache>,
    templates: Option<(&TemplateStore, &mut Program)>,
    delta: Option<&mut DeltaSim>,
) -> Result<Time, Unsupported> {
    if let Some(t) = cache.and_then(|c| c.lookup_coll(coll, &cfg, m)) {
        return Ok(t);
    }
    let han = Han::with_config(cfg);
    let t = match (templates, delta) {
        (Some((store, scratch)), Some(ds)) => {
            let key = store.build_into(&han, preset, coll, m, 0, scratch)?;
            let opts = ExecOpts::timing(han.flavor().p2p());
            ds.time(machine, scratch, &opts, key)
        }
        (Some((store, scratch)), None) => {
            time_coll_templated(&han, store, machine, preset, coll, m, 0, scratch)?
        }
        (None, _) => time_coll_on(&han, machine, preset, coll, m, 0)?,
    };
    if let Some(c) = cache {
        c.record_coll(coll, &cfg, m, t);
    }
    Ok(t)
}

/// Per-config outcome within one `(coll, m)` group.
enum Outcome {
    Cost(Result<Time, Unsupported>),
    Pruned,
}

fn tune_exhaustive(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
    opts: TuneOpts,
) -> TuneResult {
    let mut table = LookupTable::for_topology(&preset.topology);
    let mut tuning_time = Time::ZERO;
    let mut searches = 0u64;
    let mut pruned = 0u64;
    let mut skipped: Vec<Unsupported> = Vec::new();

    // Enumerate every `(coll, m)` group with its candidate configs up
    // front, in deterministic order. Parallelism is work-stealing over
    // *groups* via an atomic cursor: large message sizes cost orders of
    // magnitude more than small ones, so static striping load-imbalances
    // badly. Within a group, candidates run sequentially in ascending
    // `(lower bound, enumeration index)` order against a running
    // incumbent, so bound pruning is deterministic — the visit order, and
    // therefore the pruned set, never depends on worker count or
    // completion timing. Results are merged by group index, making the
    // whole sweep bit-identical to a sequential one.
    let mut groups: Vec<(Coll, u64, Vec<HanConfig>)> = Vec::new();
    for &coll in colls {
        for &m in &space.msg_sizes {
            let cfgs = space.configs_for(m, &preset.topology, strategy.heuristic());
            groups.push((coll, m, cfgs));
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(groups.len().max(1));

    // Shared template store: every worker re-stamps interned program
    // shapes instead of cold-building (results are bit-identical).
    let templates = TemplateStore::new();
    // Shared delta bases: structurally identical candidates usually sit
    // in different `(coll, m)` groups (same config, neighbouring message
    // sizes), which the cursor hands to different workers — sharing the
    // recordings is what lets one worker's base serve another's replay.
    let delta_bases = DeltaSim::shared_bases();
    let next = AtomicUsize::new(0);
    let mut outcomes: Vec<Vec<Outcome>> = Vec::with_capacity(groups.len());
    std::thread::scope(|s| {
        let groups = &groups;
        let next = &next;
        let cache = cache.as_deref();
        let templates = &templates;
        let delta_bases = &delta_bases;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    // One machine, one scratch program, and (when enabled)
                    // one delta-resimulation context per worker; the
                    // machine is reset between jobs by the executor, the
                    // scratch's allocations are reused by specialization,
                    // and the DeltaSims pool their recorded bases in the
                    // shared cache so replays work across groups and
                    // workers.
                    let mut machine = Machine::from_preset(preset);
                    let mut scratch = Program::default();
                    let mut ds = if opts.delta {
                        Some(DeltaSim::with_shared(delta_bases.clone()))
                    } else {
                        None
                    };
                    let mut out: Vec<(usize, Vec<Outcome>)> = Vec::new();
                    loop {
                        let g = next.fetch_add(1, Ordering::Relaxed);
                        if g >= groups.len() {
                            break;
                        }
                        let (coll, m, cfgs) = &groups[g];
                        out.push((
                            g,
                            run_group(
                                &mut machine,
                                &mut scratch,
                                preset,
                                *coll,
                                *m,
                                cfgs,
                                cache,
                                templates,
                                ds.as_mut(),
                                opts,
                            ),
                        ));
                    }
                    out
                })
            })
            .collect();
        let mut merged: Vec<Option<Vec<Outcome>>> = (0..groups.len()).map(|_| None).collect();
        for h in handles {
            for (g, r) in h.join().unwrap() {
                merged[g] = Some(r);
            }
        }
        outcomes.extend(merged.into_iter().map(|r| r.expect("every group ran")));
    });

    let mut samples = Vec::new();
    for ((coll, m, cfgs), results) in groups.iter().zip(&outcomes) {
        for (cfg, r) in cfgs.iter().zip(results) {
            match r {
                Outcome::Cost(Ok(t)) => {
                    tuning_time += *t * BENCH_ITERS;
                    searches += 1;
                    samples.push((*coll, *m, *cfg, *t));
                }
                Outcome::Cost(Err(e)) => note_skip(&mut skipped, e.clone()),
                Outcome::Pruned => pruned += 1,
            }
        }
    }

    for &coll in colls {
        for &m in &space.msg_sizes {
            if let Some((_, _, cfg, cost)) = samples
                .iter()
                .filter(|(c, mm, _, _)| *c == coll && *mm == m)
                .min_by_key(|(_, _, _, t)| *t)
            {
                table.insert(coll, m, *cfg, *cost);
            }
        }
    }

    TuneResult {
        strategy,
        table,
        tuning_time,
        searches,
        samples,
        skipped,
        pruned,
    }
}

/// Benchmark one `(coll, m)` group, optionally pruning candidates whose
/// analytic lower bound exceeds the incumbent best.
///
/// Soundness of the winner set: the true optimum `c*` has
/// `bound(c*) ≤ cost(c*) ≤ incumbent` at every point of the scan, so it is
/// never pruned (the comparison is strict); conversely any pruned `c` has
/// `cost(c) ≥ bound(c) > incumbent ≥ min cost`, so it can neither win nor
/// tie. The surviving minimum — and, because candidates keep their
/// enumeration order in the output, the tie-broken winner — is identical
/// to the unpruned sweep's.
#[allow(clippy::too_many_arguments)]
fn run_group(
    machine: &mut Machine,
    scratch: &mut Program,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
    cfgs: &[HanConfig],
    cache: Option<&CostCache>,
    templates: &TemplateStore,
    mut delta: Option<&mut DeltaSim>,
    opts: TuneOpts,
) -> Vec<Outcome> {
    // Visit candidates cheapest-bound-first: tight early incumbents
    // maximize later prunes, and the fixed `(bound, index)` key keeps the
    // scan deterministic. Without pruning the visit order is irrelevant
    // (results are keyed by index), so skip the bound computation
    // entirely — it would be pure overhead on warm-cache sweeps.
    let order: Vec<(Option<Time>, usize)> = if opts.prune {
        let mut order: Vec<(Option<Time>, usize)> = cfgs
            .iter()
            .enumerate()
            .map(|(i, cfg)| (lower_bound(preset, cfg, coll, m), i))
            .collect();
        order.sort_by_key(|&(b, i)| (b.unwrap_or(Time::ZERO), i));
        order
    } else {
        (0..cfgs.len()).map(|i| (None, i)).collect()
    };

    let mut results: Vec<Option<Outcome>> = (0..cfgs.len()).map(|_| None).collect();
    let mut incumbent: Option<Time> = None;
    for (bound, i) in order {
        if opts.prune {
            if let (Some(b), Some(inc)) = (bound, incumbent) {
                if b > inc {
                    results[i] = Some(Outcome::Pruned);
                    continue;
                }
            }
        }
        let r = coll_cost(
            machine,
            preset,
            coll,
            m,
            cfgs[i],
            cache,
            Some((templates, &mut *scratch)),
            delta.as_deref_mut(),
        );
        if let Ok(t) = &r {
            incumbent = Some(incumbent.map_or(*t, |inc| inc.min(*t)));
        }
        results[i] = Some(Outcome::Cost(r));
    }
    results
        .into_iter()
        .map(|r| r.expect("every candidate visited"))
        .collect()
}

fn tune_task_based(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
) -> TuneResult {
    let mut table = LookupTable::for_topology(&preset.topology);
    let mut tb = TaskBench::new(preset);
    if let Some(cache) = cache {
        tb = tb.with_shared_cache(cache);
    }
    let mut samples = Vec::new();
    let mut skipped: Vec<Unsupported> = Vec::new();

    for &coll in colls {
        for &m in &space.msg_sizes {
            let mut best: Option<(HanConfig, Time)> = None;
            for cfg in space.configs_for(m, &preset.topology, strategy.heuristic()) {
                let t = match predict(&mut tb, &cfg, coll, m) {
                    Ok(t) => t,
                    Err(e) => {
                        note_skip(&mut skipped, e);
                        continue;
                    }
                };
                samples.push((coll, m, cfg, t));
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((cfg, t));
                }
            }
            if let Some((cfg, cost)) = best {
                table.insert(coll, m, cfg, cost);
            }
        }
    }

    TuneResult {
        strategy,
        table,
        tuning_time: tb.spent,
        searches: tb.runs,
        samples,
        skipped,
        pruned: 0,
    }
}

/// Simulate every candidate configuration `space` enumerates for one
/// `(coll, m)` group — unpruned, in enumeration order. This is the ground
/// truth a tuned table must dominate: `han_verify`'s table-dominance
/// guideline checks the table winner against every `(cfg, cost)` pair
/// returned here, pinning bound-pruning soundness end-to-end.
pub fn candidate_costs(
    preset: &MachinePreset,
    space: &SearchSpace,
    coll: Coll,
    m: u64,
    heuristic: bool,
) -> Vec<(HanConfig, Result<Time, Unsupported>)> {
    let mut machine = Machine::from_preset(preset);
    space
        .configs_for(m, &preset.topology, heuristic)
        .into_iter()
        .map(|cfg| {
            let r = coll_cost(&mut machine, preset, coll, m, cfg, None, None, None);
            (cfg, r)
        })
        .collect()
}

/// Measure the *achieved* collective latency of a tuned table: run the
/// collective with the configuration the table selects (the red/green
/// bars of Fig. 9).
pub fn achieved_latency(
    preset: &MachinePreset,
    table: &LookupTable,
    coll: Coll,
    m: u64,
) -> Result<Time, Unsupported> {
    achieved_latency_with_cache(preset, table, coll, m, None)
}

/// [`achieved_latency`], optionally recalling the measurement from a
/// shared [`CostCache`] instead of re-simulating it.
pub fn achieved_latency_with_cache(
    preset: &MachinePreset,
    table: &LookupTable,
    coll: Coll,
    m: u64,
    cache: Option<&CostCache>,
) -> Result<Time, Unsupported> {
    let cfg = table.nearest(coll, m).map(|e| e.cfg).unwrap_or_default();
    let han = Han::with_config(cfg);
    let _ = han.name();
    let mut machine = Machine::from_preset(preset);
    coll_cost(&mut machine, preset, coll, m, cfg, cache, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::pow2_range;
    use han_machine::mini;

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            msg_sizes: pow2_range(4 * 1024, 16 << 20),
            seg_sizes: pow2_range(64 * 1024, 512 * 1024),
            inter: vec![
                (han_colls::InterModule::Adapt, han_colls::InterAlg::Binomial),
                (han_colls::InterModule::Adapt, han_colls::InterAlg::Chain),
            ],
            intra: vec![han_colls::IntraModule::Sm],
        }
    }

    #[test]
    fn task_based_is_much_cheaper_than_exhaustive() {
        let preset = mini(4, 4);
        let space = tiny_space();
        let ex = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let tk = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
        assert!(
            tk.tuning_time < ex.tuning_time,
            "task-based {} must beat exhaustive {}",
            tk.tuning_time,
            ex.tuning_time
        );
        assert!(tk.searches < ex.searches);
        // Both produce a full table.
        assert_eq!(
            tk.table.sampled_sizes(Coll::Bcast).len(),
            space.msg_sizes.len()
        );
        assert_eq!(
            ex.table.sampled_sizes(Coll::Bcast).len(),
            space.msg_sizes.len()
        );
    }

    #[test]
    fn task_based_achieves_near_optimal_latency() {
        let preset = mini(4, 4);
        let space = tiny_space();
        let ex = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let tk = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
        for &m in &space.msg_sizes {
            let best = ex.table.get(Coll::Bcast, m).unwrap();
            let achieved = achieved_latency(&preset, &tk.table, Coll::Bcast, m).unwrap();
            let optimal = achieved_latency(&preset, &ex.table, Coll::Bcast, m).unwrap();
            assert_eq!(
                Time::from_ps(best.cost_ps),
                optimal,
                "exhaustive is measured"
            );
            assert!(
                achieved.as_ps() as f64 <= optimal.as_ps() as f64 * 1.25,
                "m={m}: task-based pick {achieved} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn heuristics_reduce_searches() {
        let preset = mini(4, 4);
        let mut space = tiny_space();
        space.intra = vec![han_colls::IntraModule::Sm, han_colls::IntraModule::Solo];
        let plain = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let heur = tune(
            &preset,
            &space,
            &[Coll::Bcast],
            Strategy::ExhaustiveHeuristic,
        );
        assert!(heur.searches < plain.searches);
        assert!(heur.tuning_time < plain.tuning_time);
    }

    #[test]
    fn unmodelled_collectives_skip_and_report() {
        let preset = mini(2, 2);
        let space = tiny_space();
        let tk = tune(
            &preset,
            &space,
            &[Coll::Bcast, Coll::Reduce],
            Strategy::TaskBased,
        );
        // Bcast tunes normally; Reduce (no task model) is skipped once,
        // reported, and never reaches the table.
        assert!(!tk.table.sampled_sizes(Coll::Bcast).is_empty());
        assert!(tk.table.sampled_sizes(Coll::Reduce).is_empty());
        assert_eq!(tk.skipped.len(), 1);
        assert_eq!(tk.skipped[0].coll, Coll::Reduce);
    }

    #[test]
    fn pruned_sweep_selects_identical_winners() {
        // Pruning may only skip candidates that provably cannot win or
        // tie, so the resulting lookup table — winner configs *and*
        // costs — must be byte-for-byte the unpruned table's, on both
        // two- and three-level machines.
        for preset in [mini(2, 4), han_machine::mini3(2, 2, 2)] {
            let mut space = tiny_space();
            space.intra = vec![han_colls::IntraModule::Sm, han_colls::IntraModule::Solo];
            let colls = [Coll::Bcast, Coll::Allreduce, Coll::Reduce];
            let plain = tune_with_opts(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
                TuneOpts {
                    prune: false,
                    ..TuneOpts::default()
                },
            );
            let fast = tune_with_opts(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
                TuneOpts {
                    prune: true,
                    ..TuneOpts::default()
                },
            );
            assert_eq!(plain.pruned, 0);
            assert!(
                fast.pruned > 0,
                "{}: pruning should fire on this space",
                preset.name
            );
            assert_eq!(fast.searches + fast.pruned, plain.searches);
            for &coll in &colls {
                for &m in &space.msg_sizes {
                    let a = plain.table.get(coll, m);
                    let b = fast.table.get(coll, m);
                    assert_eq!(
                        a.map(|e| (e.cfg, e.cost_ps)),
                        b.map(|e| (e.cfg, e.cost_ps)),
                        "{} {coll:?} m={m}: pruned winner differs",
                        preset.name
                    );
                }
            }
        }
    }

    #[test]
    fn delta_sweep_is_bit_identical_to_full_sweep() {
        // Delta re-simulation must not change a single sample: every
        // `(coll, m, cfg)` cost — not just the winners — is compared
        // bit-for-bit against the delta-disabled sweep.
        for preset in [mini(2, 4), han_machine::mini3(2, 2, 2)] {
            let space = tiny_space();
            let colls = [Coll::Bcast, Coll::Allreduce];
            let full = tune_with_opts(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
                TuneOpts {
                    prune: false,
                    delta: false,
                },
            );
            let delta = tune_with_opts(
                &preset,
                &space,
                &colls,
                Strategy::Exhaustive,
                None,
                TuneOpts {
                    prune: false,
                    delta: true,
                },
            );
            assert_eq!(full.searches, delta.searches, "{}", preset.name);
            assert_eq!(full.tuning_time, delta.tuning_time, "{}", preset.name);
            assert_eq!(full.samples, delta.samples, "{}", preset.name);
        }
    }

    #[test]
    fn strategy_metadata() {
        assert!(Strategy::TaskBasedHeuristic.heuristic());
        assert!(Strategy::TaskBasedHeuristic.task_based());
        assert!(!Strategy::Exhaustive.heuristic());
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
