//! The four tuning strategies compared in Figs. 8 and 9.
//!
//! * **Exhaustive** — benchmark every configuration of the whole
//!   collective at every message size: search space `M×S×A` (per machine
//!   shape), guaranteed optimal, extremely expensive.
//! * **Exhaustive + heuristics** — the same with the section III-C
//!   pruning rules.
//! * **Task-based** (HAN) — benchmark tasks once per configuration
//!   (`T×S×A`), then evaluate the eq. (3)/(4) cost model per message
//!   size. Task costs are reused across message sizes *and* collectives.
//! * **Task-based + heuristics** — both reductions combined.
//!
//! Tuning cost is measured in *virtual benchmark time* (what the cluster
//! would spend) plus the run count; both are reported per strategy.

use crate::cache::CostCache;
use crate::model::predict;
use crate::space::SearchSpace;
use crate::table::LookupTable;
use crate::taskbench::{TaskBench, BENCH_ITERS};
use han_colls::stack::{time_coll_on, Coll, Unsupported};
use han_colls::MpiStack;
use han_core::{Han, HanConfig};
use han_machine::{Machine, MachinePreset};
use han_sim::Time;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    Exhaustive,
    ExhaustiveHeuristic,
    TaskBased,
    TaskBasedHeuristic,
}

impl Strategy {
    pub const ALL: [Strategy; 4] = [
        Strategy::Exhaustive,
        Strategy::ExhaustiveHeuristic,
        Strategy::TaskBased,
        Strategy::TaskBasedHeuristic,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::ExhaustiveHeuristic => "exhaustive+heuristics",
            Strategy::TaskBased => "task-based",
            Strategy::TaskBasedHeuristic => "task-based+heuristics",
        }
    }

    pub fn heuristic(&self) -> bool {
        matches!(
            self,
            Strategy::ExhaustiveHeuristic | Strategy::TaskBasedHeuristic
        )
    }

    pub fn task_based(&self) -> bool {
        matches!(self, Strategy::TaskBased | Strategy::TaskBasedHeuristic)
    }
}

/// The outcome of one tuning run.
#[derive(Debug)]
pub struct TuneResult {
    pub strategy: Strategy,
    pub table: LookupTable,
    /// Total virtual benchmark time (the Fig. 8 metric).
    pub tuning_time: Time,
    /// Number of benchmark runs executed.
    pub searches: u64,
    /// For the exhaustive strategies: every measured `(coll, m, cfg, cost)`
    /// sample, enabling best/median/average analysis (Fig. 9).
    pub samples: Vec<(Coll, u64, HanConfig, Time)>,
    /// Collectives the stack or cost model declined, deduplicated — the
    /// sweep skips them and reports here instead of panicking.
    pub skipped: Vec<Unsupported>,
}

fn note_skip(skipped: &mut Vec<Unsupported>, e: Unsupported) {
    if !skipped.contains(&e) {
        skipped.push(e);
    }
}

/// Run autotuning over `space` for the given collectives.
pub fn tune(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
) -> TuneResult {
    tune_with_cache(preset, space, colls, strategy, None)
}

/// [`tune`], optionally memoizing simulated costs in a shared
/// [`CostCache`]. Results (tables, samples, virtual tuning times) are
/// identical with or without a cache — only host wall-clock differs.
pub fn tune_with_cache(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
) -> TuneResult {
    if strategy.task_based() {
        tune_task_based(preset, space, colls, strategy, cache)
    } else {
        tune_exhaustive(preset, space, colls, strategy, cache)
    }
}

/// Simulate (or recall) the latency of one HAN collective configuration.
fn coll_cost(
    machine: &mut Machine,
    preset: &MachinePreset,
    coll: Coll,
    m: u64,
    cfg: HanConfig,
    cache: Option<&CostCache>,
) -> Result<Time, Unsupported> {
    if let Some(t) = cache.and_then(|c| c.lookup_coll(coll, &cfg, m)) {
        return Ok(t);
    }
    let han = Han::with_config(cfg);
    let t = time_coll_on(&han, machine, preset, coll, m, 0)?;
    if let Some(c) = cache {
        c.record_coll(coll, &cfg, m, t);
    }
    Ok(t)
}

fn tune_exhaustive(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
) -> TuneResult {
    let mut table = LookupTable::for_topology(&preset.topology);
    let mut tuning_time = Time::ZERO;
    let mut searches = 0u64;
    let mut skipped: Vec<Unsupported> = Vec::new();

    // Enumerate every benchmark point up front in deterministic order.
    // Parallelism is work-stealing over this flat job list: large message
    // sizes cost orders of magnitude more than small ones, so static
    // striping load-imbalances badly; an atomic cursor keeps every worker
    // busy until the queue drains. Results are stored by job index, so the
    // outcome is bit-identical to a sequential sweep regardless of worker
    // count or completion order.
    let mut jobs: Vec<(Coll, u64, HanConfig)> = Vec::new();
    for &coll in colls {
        for &m in &space.msg_sizes {
            for cfg in space.configs_for(m, &preset.topology, strategy.heuristic()) {
                jobs.push((coll, m, cfg));
            }
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let mut costs: Vec<Result<Time, Unsupported>> = Vec::with_capacity(jobs.len());
    std::thread::scope(|s| {
        let jobs = &jobs;
        let next = &next;
        let cache = cache.as_deref();
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    // One machine per worker, reset between jobs by the
                    // executor — never rebuilt from the preset.
                    let mut machine = Machine::from_preset(preset);
                    let mut out: Vec<(usize, Result<Time, Unsupported>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let (coll, m, cfg) = jobs[i];
                        let t = coll_cost(&mut machine, preset, coll, m, cfg, cache);
                        out.push((i, t));
                    }
                    out
                })
            })
            .collect();
        let mut merged: Vec<Option<Result<Time, Unsupported>>> = vec![None; jobs.len()];
        for h in handles {
            for (i, t) in h.join().unwrap() {
                merged[i] = Some(t);
            }
        }
        costs.extend(merged.into_iter().map(|t| t.expect("every job ran")));
    });

    let mut samples = Vec::with_capacity(jobs.len());
    for (&(coll, m, cfg), t) in jobs.iter().zip(&costs) {
        match t {
            Ok(t) => {
                tuning_time += *t * BENCH_ITERS;
                searches += 1;
                samples.push((coll, m, cfg, *t));
            }
            Err(e) => note_skip(&mut skipped, e.clone()),
        }
    }

    for &coll in colls {
        for &m in &space.msg_sizes {
            if let Some((_, _, cfg, cost)) = samples
                .iter()
                .filter(|(c, mm, _, _)| *c == coll && *mm == m)
                .min_by_key(|(_, _, _, t)| *t)
            {
                table.insert(coll, m, *cfg, *cost);
            }
        }
    }

    TuneResult {
        strategy,
        table,
        tuning_time,
        searches,
        samples,
        skipped,
    }
}

fn tune_task_based(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
    strategy: Strategy,
    cache: Option<Arc<CostCache>>,
) -> TuneResult {
    let mut table = LookupTable::for_topology(&preset.topology);
    let mut tb = TaskBench::new(preset);
    if let Some(cache) = cache {
        tb = tb.with_shared_cache(cache);
    }
    let mut samples = Vec::new();
    let mut skipped: Vec<Unsupported> = Vec::new();

    for &coll in colls {
        for &m in &space.msg_sizes {
            let mut best: Option<(HanConfig, Time)> = None;
            for cfg in space.configs_for(m, &preset.topology, strategy.heuristic()) {
                let t = match predict(&mut tb, &cfg, coll, m) {
                    Ok(t) => t,
                    Err(e) => {
                        note_skip(&mut skipped, e);
                        continue;
                    }
                };
                samples.push((coll, m, cfg, t));
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((cfg, t));
                }
            }
            if let Some((cfg, cost)) = best {
                table.insert(coll, m, cfg, cost);
            }
        }
    }

    TuneResult {
        strategy,
        table,
        tuning_time: tb.spent,
        searches: tb.runs,
        samples,
        skipped,
    }
}

/// Measure the *achieved* collective latency of a tuned table: run the
/// collective with the configuration the table selects (the red/green
/// bars of Fig. 9).
pub fn achieved_latency(
    preset: &MachinePreset,
    table: &LookupTable,
    coll: Coll,
    m: u64,
) -> Result<Time, Unsupported> {
    achieved_latency_with_cache(preset, table, coll, m, None)
}

/// [`achieved_latency`], optionally recalling the measurement from a
/// shared [`CostCache`] instead of re-simulating it.
pub fn achieved_latency_with_cache(
    preset: &MachinePreset,
    table: &LookupTable,
    coll: Coll,
    m: u64,
    cache: Option<&CostCache>,
) -> Result<Time, Unsupported> {
    let cfg = table.nearest(coll, m).map(|e| e.cfg).unwrap_or_default();
    let han = Han::with_config(cfg);
    let _ = han.name();
    let mut machine = Machine::from_preset(preset);
    coll_cost(&mut machine, preset, coll, m, cfg, cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::pow2_range;
    use han_machine::mini;

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            msg_sizes: pow2_range(4 * 1024, 16 << 20),
            seg_sizes: pow2_range(64 * 1024, 512 * 1024),
            inter: vec![
                (han_colls::InterModule::Adapt, han_colls::InterAlg::Binomial),
                (han_colls::InterModule::Adapt, han_colls::InterAlg::Chain),
            ],
            intra: vec![han_colls::IntraModule::Sm],
        }
    }

    #[test]
    fn task_based_is_much_cheaper_than_exhaustive() {
        let preset = mini(4, 4);
        let space = tiny_space();
        let ex = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let tk = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
        assert!(
            tk.tuning_time < ex.tuning_time,
            "task-based {} must beat exhaustive {}",
            tk.tuning_time,
            ex.tuning_time
        );
        assert!(tk.searches < ex.searches);
        // Both produce a full table.
        assert_eq!(
            tk.table.sampled_sizes(Coll::Bcast).len(),
            space.msg_sizes.len()
        );
        assert_eq!(
            ex.table.sampled_sizes(Coll::Bcast).len(),
            space.msg_sizes.len()
        );
    }

    #[test]
    fn task_based_achieves_near_optimal_latency() {
        let preset = mini(4, 4);
        let space = tiny_space();
        let ex = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let tk = tune(&preset, &space, &[Coll::Bcast], Strategy::TaskBased);
        for &m in &space.msg_sizes {
            let best = ex.table.get(Coll::Bcast, m).unwrap();
            let achieved = achieved_latency(&preset, &tk.table, Coll::Bcast, m).unwrap();
            let optimal = achieved_latency(&preset, &ex.table, Coll::Bcast, m).unwrap();
            assert_eq!(
                Time::from_ps(best.cost_ps),
                optimal,
                "exhaustive is measured"
            );
            assert!(
                achieved.as_ps() as f64 <= optimal.as_ps() as f64 * 1.25,
                "m={m}: task-based pick {achieved} vs optimal {optimal}"
            );
        }
    }

    #[test]
    fn heuristics_reduce_searches() {
        let preset = mini(4, 4);
        let mut space = tiny_space();
        space.intra = vec![han_colls::IntraModule::Sm, han_colls::IntraModule::Solo];
        let plain = tune(&preset, &space, &[Coll::Bcast], Strategy::Exhaustive);
        let heur = tune(
            &preset,
            &space,
            &[Coll::Bcast],
            Strategy::ExhaustiveHeuristic,
        );
        assert!(heur.searches < plain.searches);
        assert!(heur.tuning_time < plain.tuning_time);
    }

    #[test]
    fn unmodelled_collectives_skip_and_report() {
        let preset = mini(2, 2);
        let space = tiny_space();
        let tk = tune(
            &preset,
            &space,
            &[Coll::Bcast, Coll::Reduce],
            Strategy::TaskBased,
        );
        // Bcast tunes normally; Reduce (no task model) is skipped once,
        // reported, and never reaches the table.
        assert!(!tk.table.sampled_sizes(Coll::Bcast).is_empty());
        assert!(tk.table.sampled_sizes(Coll::Reduce).is_empty());
        assert_eq!(tk.skipped.len(), 1);
        assert_eq!(tk.skipped[0].coll, Coll::Reduce);
    }

    #[test]
    fn strategy_metadata() {
        assert!(Strategy::TaskBasedHeuristic.heuristic());
        assert!(Strategy::TaskBasedHeuristic.task_based());
        assert!(!Strategy::Exhaustive.heuristic());
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
