//! Task benchmarking (paper section III-A2).
//!
//! Measures the cost of HAN tasks on each node leader, reproducing the
//! paper's methodology:
//!
//! * simple tasks (`ib(0)`, `sb(0)`) are timed by running them alone —
//!   "a simple benchmark using a loop around a timed task";
//! * tasks that follow other tasks are timed with *delayed participation*:
//!   each node starts at the virtual time its leader finished the
//!   preceding tasks ("we need to delay the participation of each process
//!   by the duration of the ib(0) step to simulate the different starting
//!   time of sbib(1)");
//! * repeated tasks are re-measured occurrence by occurrence until their
//!   cost stabilizes (Fig. 3), and the stabilized cost is reused.
//!
//! Every actual benchmark run adds its virtual duration (× the repetition
//! count a real harness would use) to [`TaskBench::spent`] — the quantity
//! Fig. 8 compares across tuning strategies. Cache hits cost nothing,
//! which is exactly how task reuse across message sizes and collectives
//! saves tuning time.

use crate::cache::CostCache;
use han_core::task::{task_program, TaskSpec};
use han_core::HanConfig;
use han_machine::{Flavor, Machine, MachinePreset};
use han_mpi::{execute, ExecOpts};
use han_sim::Time;
use std::collections::HashMap;
use std::sync::Arc;

/// Repetitions a real offline tuner would run per measurement (IMB-style).
pub const BENCH_ITERS: u64 = 10;

/// Relative change (of the slowest leader's cost) below which two
/// consecutive occurrence measurements count as stabilized.
const STABLE_TOL: f64 = 0.03;

/// Cache key: configuration, task, segment size, and the *relative* start
/// skew pattern (costs are invariant under a uniform shift of all nodes,
/// but not under changes of the inter-node skew shape — that is the whole
/// point of the delayed-participation benchmark).
type Key = (HanConfig, TaskSpec, u64, Vec<u64>);

fn skew_key(skew: &[Time]) -> Vec<u64> {
    let min = skew.iter().copied().min().unwrap_or(Time::ZERO);
    skew.iter().map(|s| (*s - min).as_ps()).collect()
}

/// A benchmarking session over one machine preset.
pub struct TaskBench {
    preset: MachinePreset,
    machine: Machine,
    cache: HashMap<Key, Vec<Time>>,
    /// `(cfg, spec, seg)` → `(occurrence threshold, stabilized cost)`:
    /// occurrences at or beyond the threshold reuse the stabilized cost.
    frozen: HashMap<(HanConfig, TaskSpec, u64), (u32, Vec<Time>)>,
    /// Last actually-measured occurrence per task, for the stabilization
    /// comparison.
    last_measured: HashMap<(HanConfig, TaskSpec, u64), (u32, Vec<Time>)>,
    /// Global occurrence counter per task across all cost-model walks:
    /// once a task type has been benchmarked (to `max_occurrences` depth),
    /// every later pipeline — any message size, any collective — reuses
    /// its cost, exactly the paper's reuse argument.
    global_occ: HashMap<(HanConfig, TaskSpec, u64), u32>,
    /// Occurrence index at which a repeated task's cost is frozen as
    /// stabilized even if still drifting. The default (1) is the paper's
    /// scheme — each task type is benchmarked once, with the
    /// delayed-participation skew standing in for its predecessors (so the
    /// single `sbib` measurement *is* `sbib(1)`), giving exactly `T`
    /// benchmark types per configuration (3 for Bcast, 8 for Allreduce).
    /// Raise it to study the Fig. 3 stabilization trend.
    pub max_occurrences: u32,
    /// Total virtual time spent in actual benchmark runs.
    pub spent: Time,
    /// Number of actual benchmark runs (cache misses).
    pub runs: u64,
    /// Optional cross-run memo: measurements found here skip the
    /// simulation but are accounted (`spent`, `runs`) exactly as if they
    /// had run, so virtual tuning-time figures are cache-independent.
    shared: Option<Arc<CostCache>>,
}

impl TaskBench {
    pub fn new(preset: &MachinePreset) -> Self {
        TaskBench {
            preset: *preset,
            machine: Machine::from_preset(preset),
            cache: HashMap::new(),
            frozen: HashMap::new(),
            last_measured: HashMap::new(),
            global_occ: HashMap::new(),
            max_occurrences: 1,
            spent: Time::ZERO,
            runs: 0,
            shared: None,
        }
    }

    /// Attach a shared [`CostCache`] (must be for the same preset).
    pub fn with_shared_cache(mut self, cache: Arc<CostCache>) -> Self {
        assert_eq!(
            cache.fingerprint(),
            crate::cache::preset_fingerprint(&self.preset),
            "cost cache belongs to a different machine preset"
        );
        self.shared = Some(cache);
        self
    }

    /// Measure repeated tasks up to `n` occurrences before freezing
    /// (Fig. 3 studies; the tuner default is 1).
    pub fn with_max_occurrences(mut self, n: u32) -> Self {
        self.max_occurrences = n.max(1);
        self
    }

    pub fn preset(&self) -> &MachinePreset {
        &self.preset
    }

    /// Number of node leaders (= nodes).
    pub fn leaders(&self) -> usize {
        self.preset.topology.nodes()
    }

    /// Measure one task occurrence: run `spec` with per-node start skew
    /// and return each leader's cost (finish − its skew).
    fn measure(&mut self, cfg: &HanConfig, spec: TaskSpec, seg: u64, skew: &[Time]) -> Vec<Time> {
        // Warm path: a prior run (possibly a previous process) already
        // simulated this exact measurement. Account for it identically.
        let rel = skew_key(skew);
        if let Some(shared) = &self.shared {
            if let Some((cost, window)) = shared.lookup_task(cfg, spec, seg, &rel) {
                self.spent += window * BENCH_ITERS;
                self.runs += 1;
                return cost;
            }
        }
        let tp = task_program(&self.preset, cfg, spec, seg, 0);
        let topo = self.preset.topology;
        let mut start = vec![Time::ZERO; topo.world_size()];
        for (node, &s) in skew.iter().enumerate() {
            for r in topo.node_ranks(node) {
                start[r] = s;
            }
        }
        let opts = ExecOpts::timing(Flavor::OpenMpi.p2p()).with_skew(start);
        let rep = execute(&mut self.machine, &tp.program, &opts);
        // The benchmark occupies the cluster from the first participant's
        // start to the last completion; the lead-in skew itself is not
        // re-paid per measurement (a real tuner injects delays relative to
        // the benchmark's own clock).
        let window = rep
            .makespan
            .saturating_sub(skew.iter().copied().min().unwrap_or(Time::ZERO));
        self.spent += window * BENCH_ITERS;
        self.runs += 1;
        let cost: Vec<Time> = tp
            .observers
            .iter()
            .enumerate()
            .map(|(ul, &(_, op))| rep.finish(op).saturating_sub(skew[ul]))
            .collect();
        if let Some(shared) = &self.shared {
            shared.record_task(cfg, spec, seg, rel, &cost, window);
        }
        cost
    }

    /// Cost of the `occ`-th occurrence of `spec` within a task pipeline
    /// whose preceding tasks account for `skew` virtual time per node.
    ///
    /// Occurrences at or beyond the stabilization point reuse the frozen
    /// stabilized cost (Fig. 3). Identical `(cfg, spec, seg, relative
    /// skew)` combinations are served from cache — this is the task-cost
    /// reuse across message sizes and collectives.
    pub fn occurrence_cost(
        &mut self,
        cfg: &HanConfig,
        spec: TaskSpec,
        seg: u64,
        occ: u32,
        skew: &[Time],
    ) -> Vec<Time> {
        let fkey = (*cfg, spec, seg);
        if let Some((at, cost)) = self.frozen.get(&fkey) {
            if occ >= *at {
                return cost.clone();
            }
        }
        let key = (*cfg, spec, seg, skew_key(skew));
        if let Some(c) = self.cache.get(&key) {
            return c.clone();
        }
        let cost = self.measure(cfg, spec, seg, skew);
        // Stabilization: freeze after the configured number of
        // occurrences, or earlier if consecutive measurements agree. The
        // threshold never reaches down to occurrence 0, so first
        // occurrences in a *different* skew context (e.g. the unskewed
        // `ib∥sb` probe of Fig. 2 vs the pipeline's `sbib(1)`) are always
        // measured on their own terms.
        if occ + 1 >= self.max_occurrences {
            self.frozen.insert(fkey, (occ.max(1), cost.clone()));
        } else if let Some((prev_occ, prev)) = self.last_measured.get(&fkey) {
            if occ == prev_occ + 1 {
                let a = prev.iter().max().copied().unwrap_or(Time::ZERO);
                let b = cost.iter().max().copied().unwrap_or(Time::ZERO);
                let rel = (a.as_ps() as f64 - b.as_ps() as f64).abs() / (b.as_ps().max(1) as f64);
                if rel < STABLE_TOL {
                    self.frozen.insert(fkey, (occ, cost.clone()));
                }
            }
        }
        self.last_measured.insert(fkey, (occ, cost.clone()));
        self.cache.insert(key, cost.clone());
        cost
    }

    /// Cost of the next pipeline occurrence of `spec`, with a global
    /// per-task occurrence counter: the cost-model walks in
    /// [`crate::model::predict`] call this, so task costs are benchmarked
    /// once and reused across message sizes and collectives.
    pub fn pipeline_cost(
        &mut self,
        cfg: &HanConfig,
        spec: TaskSpec,
        seg: u64,
        skew: &[Time],
    ) -> Vec<Time> {
        let fkey = (*cfg, spec, seg);
        let occ = self.global_occ.get(&fkey).copied().unwrap_or(0);
        let cost = self.occurrence_cost(cfg, spec, seg, occ, skew);
        self.global_occ.insert(fkey, occ + 1);
        cost
    }

    /// Direct cost of a task with no predecessor (e.g. `ib(0)`, the blue
    /// bars of Fig. 2).
    pub fn first_cost(&mut self, cfg: &HanConfig, spec: TaskSpec, seg: u64) -> Vec<Time> {
        let skew = vec![Time::ZERO; self.leaders()];
        self.occurrence_cost(cfg, spec, seg, 0, &skew)
    }

    /// The per-occurrence cost trace of a repeated task following a
    /// lead-in sequence — the data of Fig. 3. Returns `count` cost vectors.
    pub fn occurrence_trace(
        &mut self,
        cfg: &HanConfig,
        leadin: &[TaskSpec],
        spec: TaskSpec,
        seg: u64,
        count: u32,
    ) -> Vec<Vec<Time>> {
        let nl = self.leaders();
        let mut skew = vec![Time::ZERO; nl];
        for (occ, &pre) in leadin.iter().enumerate() {
            let c = self.occurrence_cost(cfg, pre, seg, occ as u32, &skew);
            for (s, d) in skew.iter_mut().zip(&c) {
                *s += *d;
            }
        }
        let mut out = Vec::with_capacity(count as usize);
        for occ in 0..count {
            let c = self.occurrence_cost(cfg, spec, seg, occ, &skew);
            for (s, d) in skew.iter_mut().zip(&c) {
                *s += *d;
            }
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    fn bench() -> TaskBench {
        TaskBench::new(&mini(4, 4))
    }

    #[test]
    fn ib_costs_differ_across_leaders() {
        let mut tb = bench();
        let c = tb.first_cost(&HanConfig::default(), TaskSpec::IB, 64 * 1024);
        assert_eq!(c.len(), 4);
        // The root finishes when its sends complete; deeper leaders later.
        assert!(c.iter().max() > c.iter().min());
        assert!(c.iter().all(|&t| t > Time::ZERO));
    }

    #[test]
    fn cache_avoids_reruns() {
        let mut tb = bench();
        let cfg = HanConfig::default();
        tb.first_cost(&cfg, TaskSpec::IB, 64 * 1024);
        let runs = tb.runs;
        let spent = tb.spent;
        tb.first_cost(&cfg, TaskSpec::IB, 64 * 1024);
        assert_eq!(tb.runs, runs, "cache hit must not re-run");
        assert_eq!(tb.spent, spent);
    }

    #[test]
    fn different_configs_are_benchmarked_separately() {
        let mut tb = bench();
        let a = tb.first_cost(&HanConfig::default(), TaskSpec::IB, 64 * 1024);
        let cfg2 = HanConfig::default()
            .with_inter(han_colls::InterModule::Adapt, han_colls::InterAlg::Chain);
        let b = tb.first_cost(&cfg2, TaskSpec::IB, 64 * 1024);
        assert_ne!(a, b, "chain and binomial must differ");
        assert_eq!(tb.runs, 2);
    }

    #[test]
    fn occurrence_trace_stabilizes() {
        let mut tb = bench().with_max_occurrences(4);
        let cfg = HanConfig::default();
        let trace = tb.occurrence_trace(&cfg, &[TaskSpec::IB], TaskSpec::SBIB, 128 * 1024, 8);
        assert_eq!(trace.len(), 8);
        // Later occurrences must be identical (frozen stabilized cost).
        assert_eq!(trace[6], trace[7], "stabilized cost reused");
        // And the whole trace costs at most max_occurrences runs of sbib
        // plus one ib run.
        assert!(tb.runs <= 4 + 1, "runs={}", tb.runs);
    }

    #[test]
    fn default_freezes_after_single_measurement() {
        // The paper's scheme: one benchmark per task type — T=3 for bcast.
        let mut tb = bench();
        let cfg = HanConfig::default();
        let trace = tb.occurrence_trace(&cfg, &[TaskSpec::IB], TaskSpec::SBIB, 128 * 1024, 8);
        assert_eq!(trace.len(), 8);
        assert_eq!(trace[0], trace[7], "sbib(1) reused as sbib(s)");
        assert_eq!(tb.runs, 2, "one ib + one sbib measurement");
    }

    #[test]
    fn spent_accumulates_virtual_time() {
        let mut tb = bench();
        tb.first_cost(&HanConfig::default(), TaskSpec::SB, 64 * 1024);
        assert!(tb.spent > Time::ZERO);
        assert_eq!(tb.runs, 1);
    }
}
