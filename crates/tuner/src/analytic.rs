//! Conventional analytic cost models, for the accuracy comparison that
//! motivates HAN's empirical approach (paper section I-B).
//!
//! "Conventional models such as Hockney, LogP, LogGP and PLogP assume the
//! cost of MPI point-to-point operations between any two processes remains
//! constant. However, this assumption is no longer valid on heterogeneous
//! systems." These implementations predict a hierarchical broadcast's cost
//! from closed-form network parameters only — no task measurement — so
//! their error against the simulated ground truth quantifies what HAN's
//! measured-task model buys (an ablation bench regenerates this
//! comparison).

use han_core::HanConfig;
use han_machine::{Flavor, MachinePreset};
use han_sim::Time;

/// Which analytic model to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalyticModel {
    /// `T = depth · (α + m/B)` with a single latency/bandwidth pair.
    Hockney,
    /// LogP with fixed-size packets: per hop `L + 2o + g·ceil(m/w)`.
    LogP,
    /// LogGP: per hop `L + 2o + (m-1)·G`.
    LogGp,
    /// PLogP: size-dependent overheads `o(m)`, `g(m)`.
    PLogP,
    /// Hierarchical with the perfect-overlap assumption of prior work
    /// ([2, 21]): `T = max(T_inter, T_intra)` per steady-state segment.
    PerfectOverlap,
}

impl AnalyticModel {
    pub const ALL: [AnalyticModel; 5] = [
        AnalyticModel::Hockney,
        AnalyticModel::LogP,
        AnalyticModel::LogGp,
        AnalyticModel::PLogP,
        AnalyticModel::PerfectOverlap,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            AnalyticModel::Hockney => "Hockney",
            AnalyticModel::LogP => "LogP",
            AnalyticModel::LogGp => "LogGP",
            AnalyticModel::PLogP => "PLogP",
            AnalyticModel::PerfectOverlap => "perfect-overlap",
        }
    }
}

fn log2_ceil(n: usize) -> u64 {
    (usize::BITS - n.max(1).saturating_sub(1).leading_zeros()) as u64
}

/// Predict the cost of a hierarchical `MPI_Bcast` of `m` bytes under
/// configuration `cfg` on `preset`, using closed-form parameters only.
pub fn predict_bcast(
    model: AnalyticModel,
    preset: &MachinePreset,
    cfg: &HanConfig,
    m: u64,
) -> Time {
    let p2p = Flavor::OpenMpi.p2p();
    let nodes = preset.topology.nodes();
    let ppn = preset.topology.ppn();
    let np = nodes * ppn;
    // Closed-form models see one network pipe (all rails aggregated) and
    // one intra latency — exactly their flat-machine assumption. On
    // uniform single-rail presets these are the historical
    // `net.nic_bw`/`net.latency`/`node.flag_latency` values.
    let lv = preset.level_params();
    let net_bw = lv.get(0).bandwidth * preset.net.rails as f64;
    let net_latency = lv.get(0).latency;
    let alpha = net_latency + p2p.o_send + p2p.o_recv;
    let big_g = 1.0 / net_bw; // seconds per byte

    match model {
        AnalyticModel::Hockney => {
            // Flat binomial over all processes; one α+m/B per hop.
            let depth = log2_ceil(np);
            (alpha + Time::for_bytes(m, net_bw)) * depth
        }
        AnalyticModel::LogP => {
            let w = 16 * 1024u64; // packet size
            let g = Time::for_bytes(w, net_bw);
            let per_hop = alpha + g * m.div_ceil(w);
            per_hop * log2_ceil(np)
        }
        AnalyticModel::LogGp => {
            let per_hop = alpha + Time::from_secs_f64(big_g * m.saturating_sub(1) as f64);
            per_hop * log2_ceil(np)
        }
        AnalyticModel::PLogP => {
            // Size-dependent o(m): protocol switch adds the rendezvous
            // handshake beyond the eager limit; g(m) is the wire time.
            let o_m = if p2p.is_eager(m) {
                p2p.o_send + p2p.o_recv + p2p.cpu_byte_time(m) * 2
            } else {
                p2p.o_send + p2p.o_recv + p2p.rndv_handshake
            };
            let per_hop = net_latency + o_m + Time::for_bytes(m, net_bw);
            per_hop * log2_ceil(np)
        }
        AnalyticModel::PerfectOverlap => {
            // Two-level pipeline with perfectly-overlapping levels:
            // fill (one inter hop chain) + u·max(seg_inter, seg_intra).
            let u = cfg.segments(m);
            let seg = cfg.fs.min(m.max(1));
            let t_inter = (alpha + Time::for_bytes(seg, net_bw)) * log2_ceil(nodes);
            let t_intra = Time::for_bytes(seg, preset.node.copy_rate) * 2
                + lv.innermost().latency * (ppn as u64);
            t_inter + t_inter.max(t_intra) * (u.saturating_sub(1)) + t_intra
        }
    }
}

/// Mean absolute relative error of a model against ground-truth pairs
/// `(predicted, actual)`.
pub fn mean_relative_error(pairs: &[(Time, Time)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs
        .iter()
        .map(|(p, a)| {
            let (p, a) = (p.as_ps() as f64, a.as_ps().max(1) as f64);
            (p - a).abs() / a
        })
        .sum::<f64>()
        / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::{time_coll, Coll};
    use han_core::Han;
    use han_machine::mini;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn models_produce_positive_growing_predictions() {
        let preset = mini(4, 4);
        let cfg = HanConfig::default();
        for model in AnalyticModel::ALL {
            let small = predict_bcast(model, &preset, &cfg, 4 * 1024);
            let large = predict_bcast(model, &preset, &cfg, 4 << 20);
            assert!(small > Time::ZERO, "{}", model.name());
            assert!(large > small, "{} must grow with size", model.name());
        }
    }

    #[test]
    fn task_model_beats_analytic_models() {
        // The paper's motivation: measured-task prediction is more
        // accurate than closed-form models for hierarchical collectives.
        let preset = mini(4, 4);
        let cfg = HanConfig::default().with_fs(256 * 1024);
        let m = 4 << 20;
        let actual = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, m, 0).unwrap();

        let mut tb = crate::taskbench::TaskBench::new(&preset);
        let task_pred = crate::model::predict(&mut tb, &cfg, Coll::Bcast, m).unwrap();
        let task_err = mean_relative_error(&[(task_pred, actual)]);

        for model in [AnalyticModel::Hockney, AnalyticModel::LogGp] {
            let pred = predict_bcast(model, &preset, &cfg, m);
            let err = mean_relative_error(&[(pred, actual)]);
            assert!(
                task_err < err,
                "{}: task model err {task_err:.3} should beat {err:.3}",
                model.name()
            );
        }
    }

    #[test]
    fn mean_relative_error_math() {
        let pairs = [
            (Time::from_us(110), Time::from_us(100)),
            (Time::from_us(80), Time::from_us(100)),
        ];
        let e = mean_relative_error(&pairs);
        assert!((e - 0.15).abs() < 1e-9);
        assert_eq!(mean_relative_error(&[]), 0.0);
    }
}
