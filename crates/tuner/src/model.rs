//! The task-based cost model (paper equations 1–4).
//!
//! The cost of a collective is the maximum over node leaders of the sum of
//! its task costs. The task sequences mirror the pipelines built by
//! `han-core`:
//!
//! * Bcast: `ib(0), sbib(1), …, sbib(u-1), sb(u-1)` — eq. (3):
//!   `max_i( T_i(ib(0)) + (u-1)·T_i(sbib(s)) + T_i(sb(u-1)) )`.
//! * Allreduce: `sr, irsr, ibirsr, sbibirsr × (u-3), sbibir, sbib, sb` —
//!   eq. (4) — generalized to short pipelines (`u < 4`) by deriving each
//!   pipeline step's component set directly.
//!
//! Task costs come from [`crate::taskbench::TaskBench`], which measures
//! each occurrence with the delayed-start method and freezes stabilized
//! costs; this function merely replays the sequence, so predicting a new
//! message size after the tasks are cached costs *zero* additional
//! benchmarking — the heart of the paper's tuning-time reduction.

use crate::taskbench::TaskBench;
use han_colls::stack::Unsupported;
use han_colls::Coll;
use han_core::task::TaskSpec;
use han_core::HanConfig;
use han_sim::Time;

/// The pipeline step sequence for a broadcast of `u` segments.
pub fn bcast_sequence(u: usize) -> Vec<TaskSpec> {
    (0..u + 1)
        .map(|t| TaskSpec {
            ib: t < u,
            sb: t >= 1,
            ir: false,
            sr: false,
        })
        .collect()
}

/// The pipeline step sequence for an allreduce of `u` segments.
pub fn allreduce_sequence(u: usize) -> Vec<TaskSpec> {
    (0..u + 3)
        .map(|t| TaskSpec {
            sr: t < u,
            ir: t >= 1 && t - 1 < u,
            ib: t >= 2 && t - 2 < u,
            sb: t >= 3 && t - 3 < u,
        })
        .collect()
}

/// Predict the cost of `coll` on message size `m` under `cfg`, using (and
/// populating) the task benchmark cache. The paper derives task sequences
/// only for Bcast (eq. 3) and Allreduce (eq. 4); any other collective is
/// reported as [`Unsupported`] so sweeps skip it rather than panic.
pub fn predict(
    tb: &mut TaskBench,
    cfg: &HanConfig,
    coll: Coll,
    m: u64,
) -> Result<Time, Unsupported> {
    // The builders coarsen `fs` on launch-charging (GPU-like) levels; the
    // model must count the tasks they actually emit.
    let preset = *tb.preset();
    let fs = han_machine::coarsen_fs(cfg.fs.max(1), m, &preset.node, &preset.level_params());
    let u = if m == 0 { 1 } else { m.div_ceil(fs) } as usize;
    let seq = match coll {
        Coll::Bcast => bcast_sequence(u),
        Coll::Allreduce => allreduce_sequence(u),
        other => {
            return Err(Unsupported {
                stack: "HAN task-based cost model".to_string(),
                coll: other,
            })
        }
    };
    let seg = fs.min(m.max(1));
    let nl = tb.leaders();
    let mut acc = vec![Time::ZERO; nl];
    for spec in seq {
        let cost = tb.pipeline_cost(cfg, spec, seg, &acc);
        for (a, c) in acc.iter_mut().zip(&cost) {
            *a += *c;
        }
    }
    Ok(acc.into_iter().max().unwrap_or(Time::ZERO))
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::{time_coll, Coll};
    use han_core::Han;
    use han_machine::mini;

    #[test]
    fn bcast_sequence_matches_paper_tasks() {
        let seq = bcast_sequence(4);
        let names: Vec<_> = seq.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ib", "sbib", "sbib", "sbib", "sb"]);
        // u=1: ib then sb, no sbib.
        let names: Vec<_> = bcast_sequence(1).iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ib", "sb"]);
    }

    #[test]
    fn allreduce_sequence_matches_paper_tasks() {
        let names: Vec<_> = allreduce_sequence(6).iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "sr", "irsr", "ibirsr", "sbibirsr", "sbibirsr", "sbibirsr", "sbibir", "sbib", "sb"
            ]
        );
        let names: Vec<_> = allreduce_sequence(1).iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["sr", "ir", "ib", "sb"]);
        let names: Vec<_> = allreduce_sequence(2).iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["sr", "irsr", "ibir", "sbib", "sb"]);
    }

    #[test]
    fn distinct_specs_per_collective_match_paper_counts() {
        // "3 for MPI_Bcast and 8 for MPI_Allreduce" (section III-C) — the
        // allreduce leader path has 7 distinct specs; sbsr (the non-leader
        // task) is the 8th.
        let mut set = std::collections::HashSet::new();
        for s in bcast_sequence(10) {
            set.insert(s);
        }
        assert_eq!(set.len(), 3);
        let mut set = std::collections::HashSet::new();
        for s in allreduce_sequence(10) {
            set.insert(s);
        }
        set.insert(TaskSpec::SBSR);
        assert_eq!(set.len(), 8);
    }

    /// Model accuracy: prediction within a reasonable band of the actual
    /// simulated collective, and — more importantly (paper Fig. 4) — the
    /// *ranking* of configurations is preserved well enough to find a
    /// near-optimal configuration.
    #[test]
    fn prediction_tracks_actual() {
        let preset = mini(4, 4);
        let mut tb = TaskBench::new(&preset);
        let m = 2 << 20;
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for fs in [128 * 1024u64, 512 * 1024, 2 << 20] {
            let cfg = HanConfig::default().with_fs(fs);
            let pred = predict(&mut tb, &cfg, Coll::Bcast, m).unwrap();
            let act = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, m, 0).unwrap();
            let ratio = pred.as_ps() as f64 / act.as_ps() as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "fs={fs}: pred {pred} vs actual {act} (ratio {ratio:.2})"
            );
            preds.push(pred);
            actuals.push(act);
        }
        // Best-predicted config should be the best (or nearly best) actual.
        let best_pred = preds.iter().enumerate().min_by_key(|(_, t)| **t).unwrap().0;
        let best_act = actuals
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .unwrap()
            .0;
        let chosen = actuals[best_pred];
        let optimal = actuals[best_act];
        assert!(
            chosen.as_ps() as f64 <= optimal.as_ps() as f64 * 1.15,
            "model pick {chosen} must be within 15% of optimal {optimal}"
        );
    }

    #[test]
    fn prediction_reuses_tasks_across_message_sizes() {
        let preset = mini(4, 4);
        let mut tb = TaskBench::new(&preset);
        let cfg = HanConfig::default().with_fs(256 * 1024);
        predict(&mut tb, &cfg, Coll::Bcast, 1 << 20).unwrap();
        let runs = tb.runs;
        // Larger message, same segment size: only cache hits.
        predict(&mut tb, &cfg, Coll::Bcast, 16 << 20).unwrap();
        assert_eq!(tb.runs, runs, "no new benchmarks for a new message size");
    }

    #[test]
    fn unmodelled_collective_is_reported_not_panicked() {
        let preset = mini(2, 2);
        let mut tb = TaskBench::new(&preset);
        let err = predict(&mut tb, &HanConfig::default(), Coll::Gather, 1024).unwrap_err();
        assert_eq!(err.coll, Coll::Gather);
        assert!(err.to_string().contains("not implemented"), "{err}");
    }

    #[test]
    fn allreduce_prediction_reasonable() {
        let preset = mini(4, 4);
        let mut tb = TaskBench::new(&preset);
        let m = 4 << 20;
        let cfg = HanConfig::default()
            .with_fs(512 * 1024)
            .with_intra(han_colls::IntraModule::Solo);
        let pred = predict(&mut tb, &cfg, Coll::Allreduce, m).unwrap();
        let act = time_coll(&Han::with_config(cfg), &preset, Coll::Allreduce, m, 0).unwrap();
        let ratio = pred.as_ps() as f64 / act.as_ps() as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "pred {pred} vs actual {act} (ratio {ratio:.2})"
        );
    }
}
