//! Online statistics for benchmark reporting.
//!
//! The paper reports collective latencies the way IMB and the OSU benchmarks
//! do: the maximum across processes, and (for the tuning-quality experiment
//! of Fig. 9) best / median / average across configurations. These helpers
//! compute those summaries without retaining every sample when not needed.

use crate::time::Time;

/// Running min/max/mean/variance over `f64` samples (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// A retained-sample summary of `Time` values: best / median / average / worst.
///
/// Used where the paper compares the distribution of all configurations
/// against the tuned pick (Fig. 9).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<Time>,
}

impl FromIterator<Time> for Summary {
    fn from_iter<I: IntoIterator<Item = Time>>(iter: I) -> Self {
        Summary {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Summary {
    pub fn new() -> Self {
        Summary::default()
    }

    pub fn push(&mut self, t: Time) {
        self.samples.push(t);
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn best(&self) -> Time {
        self.samples.iter().copied().min().unwrap_or(Time::ZERO)
    }

    pub fn worst(&self) -> Time {
        self.samples.iter().copied().max().unwrap_or(Time::ZERO)
    }

    pub fn average(&self) -> Time {
        if self.samples.is_empty() {
            return Time::ZERO;
        }
        let total: u128 = self.samples.iter().map(|t| t.as_ps() as u128).sum();
        Time::from_ps((total / self.samples.len() as u128) as u64)
    }

    /// Median (lower median for even-length sets, like IMB's reporting).
    pub fn median(&self) -> Time {
        if self.samples.is_empty() {
            return Time::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[(s.len() - 1) / 2]
    }

    /// p-th percentile with nearest-rank semantics, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Time {
        if self.samples.is_empty() {
            return Time::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        let rank = ((p / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
        s[rank.min(s.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std-dev of this classic dataset is ~2.138.
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        let mut s = OnlineStats::new();
        s.push(3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::from_iter([40, 10, 30, 20].map(Time::from_ns));
        assert_eq!(s.best(), Time::from_ns(10));
        assert_eq!(s.worst(), Time::from_ns(40));
        assert_eq!(s.average(), Time::from_ns(25));
        assert_eq!(s.median(), Time::from_ns(20)); // lower median of 20/30
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_iter((1..=100).map(Time::from_ns));
        assert_eq!(s.percentile(0.0), Time::from_ns(1));
        assert_eq!(s.percentile(100.0), Time::from_ns(100));
        assert_eq!(s.percentile(50.0), Time::from_ns(51)); // nearest rank
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.best(), Time::ZERO);
        assert_eq!(s.median(), Time::ZERO);
        assert_eq!(s.average(), Time::ZERO);
    }
}
