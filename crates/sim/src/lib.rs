//! # han-sim — discrete-event simulation engine
//!
//! The bottom layer of the HAN reproduction stack. The paper evaluates HAN on
//! two supercomputers (Shaheen II, Stampede2); this crate provides the
//! deterministic virtual-time substrate on which `han-machine` models those
//! systems and `han-mpi` executes communication programs.
//!
//! The engine is intentionally small and explicit:
//!
//! * [`time`] — a picosecond-resolution virtual clock type ([`time::Time`])
//!   with exact integer arithmetic, plus bandwidth/duration conversions.
//! * [`event`] — a deterministic event queue ([`event::EventQueue`]) with
//!   FIFO tie-breaking for simultaneous events.
//! * [`resource`] — FIFO-serialized resources ([`resource::Resource`]): the
//!   primitive from which CPUs, memory buses and NICs are built. Resource
//!   serialization is what produces the paper's key observation that
//!   communications on different levels overlap *imperfectly* (section
//!   III-A2): concurrent `ib` and `sb` compete for the memory bus and the
//!   single-threaded MPI progression engine.
//! * [`rng`] — a seeded RNG wrapper so every run is reproducible.
//! * [`stats`] — small online statistics helpers used by benchmarking
//!   harnesses (IMB-style max/min/avg reporting).
//!
//! Everything is single-threaded and deterministic: the same inputs always
//! produce bit-identical virtual timings, which is what makes the
//! autotuning-accuracy experiments (Figs. 8 and 9) meaningful.

pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EngineStats, EventQueue, QueueSnapshot};
pub use resource::{PoolState, Resource, ResourcePool};
pub use rng::SimRng;
pub use stats::{OnlineStats, Summary};
pub use time::Time;
