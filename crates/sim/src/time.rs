//! Virtual time in integer picoseconds.
//!
//! Picosecond resolution keeps every duration computation exact for the
//! regimes this simulator cares about (nanosecond latencies, multi-GB/s
//! bandwidths, sub-second collectives) while `u64` still covers ~214 days of
//! virtual time — far beyond any experiment in the paper.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a duration, in picoseconds.
///
/// The same type is used for instants and durations; the simulator's
/// arithmetic is simple enough that a separate `Duration` type would only
/// add noise.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Time(pub u64);

pub const PS_PER_NS: u64 = 1_000;
pub const PS_PER_US: u64 = 1_000_000;
pub const PS_PER_MS: u64 = 1_000_000_000;
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl Time {
    pub const ZERO: Time = Time(0);
    pub const MAX: Time = Time(u64::MAX);

    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * PS_PER_US)
    }

    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * PS_PER_MS)
    }

    /// Convert a floating-point number of seconds, rounding to the nearest
    /// picosecond. Used when deriving durations from bandwidths.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration: {s}");
        Time((s * PS_PER_S as f64).round() as u64)
    }

    /// Time to move `bytes` at `bytes_per_sec`, exact in integer arithmetic.
    #[inline]
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        debug_assert!(bytes_per_sec > 0.0, "non-positive bandwidth");
        let ps = (bytes as u128 * PS_PER_S as u128) / (bytes_per_sec as u128).max(1);
        Time(ps.min(u64::MAX as u128) as u64)
    }

    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }

    /// Scale a duration by a dimensionless factor (e.g. congestion factors).
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        debug_assert!(factor >= 0.0);
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        debug_assert!(self.0 >= rhs.0, "time underflow: {self:?} - {rhs:?}");
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        debug_assert!(self.0 >= rhs.0);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", human(*self))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", human(*self))
    }
}

/// Render a time with an adaptive unit, e.g. `3.2us` or `1.25ms`.
pub fn human(t: Time) -> String {
    let ps = t.0;
    if ps == 0 {
        "0".to_string()
    } else if ps < PS_PER_NS {
        format!("{ps}ps")
    } else if ps < PS_PER_US {
        format!("{:.2}ns", ps as f64 / PS_PER_NS as f64)
    } else if ps < PS_PER_MS {
        format!("{:.2}us", ps as f64 / PS_PER_US as f64)
    } else if ps < PS_PER_S {
        format!("{:.2}ms", ps as f64 / PS_PER_MS as f64)
    } else {
        format!("{:.3}s", ps as f64 / PS_PER_S as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs_f64(1.0), Time::from_ms(1_000));
    }

    #[test]
    fn bandwidth_durations() {
        // 1 GiB at 1 GiB/s = 1 s.
        let gib = 1u64 << 30;
        let t = Time::for_bytes(gib, gib as f64);
        assert_eq!(t, Time::from_secs_f64(1.0));
        // 64 KiB at 10 GB/s = 6.5536 us.
        let t = Time::for_bytes(64 * 1024, 10e9);
        assert_eq!(t.as_ps(), 6_553_600);
    }

    #[test]
    fn zero_bytes_is_zero_time() {
        assert_eq!(Time::for_bytes(0, 1e9), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_us(3);
        let b = Time::from_us(1);
        assert_eq!(a + b, Time::from_us(4));
        assert_eq!(a - b, Time::from_us(2));
        assert_eq!(a * 2, Time::from_us(6));
        assert_eq!(a / 3, Time::from_us(1));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn scaling() {
        assert_eq!(Time::from_ns(100).scale(1.5), Time::from_ns(150));
        assert_eq!(Time::from_ns(100).scale(0.0), Time::ZERO);
    }

    #[test]
    fn summation() {
        let total: Time = (1..=4).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(Time::ZERO), "0");
        assert_eq!(human(Time::from_ps(500)), "500ps");
        assert_eq!(human(Time::from_ns(2)), "2.00ns");
        assert_eq!(human(Time::from_us(3)), "3.00us");
        assert_eq!(human(Time::from_ms(4)), "4.00ms");
        assert_eq!(human(Time::from_secs_f64(1.5)), "1.500s");
    }
}
