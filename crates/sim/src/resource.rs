//! FIFO-serialized resources.
//!
//! Every shared hardware component in the machine model — a rank's CPU (the
//! single-threaded MPI progression engine), a node's memory bus, a NIC
//! direction, the network core — is a [`Resource`]: it serves one request at
//! a time, in the order requests arrive, and tracks how busy it has been.
//!
//! This is the mechanism behind the paper's central empirical observation
//! (section III-A2): an inter-node broadcast and an intra-node broadcast
//! *mostly* overlap because they occupy different resources, but not
//! perfectly, because the inter-node transfer must push data back to memory
//! (sharing the memory bus with the intra-node copies) and both operations
//! are progressed by the same CPU. With FIFO resources those interference
//! effects emerge from the model instead of being hand-tuned constants.

use crate::time::Time;

/// A single-server FIFO resource.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    free_at: Time,
    busy: Time,
    requests: u64,
}

impl Resource {
    pub fn new() -> Self {
        Resource::default()
    }

    /// Request exclusive use for `dur`, no earlier than `at`.
    ///
    /// Returns `(start, end)`: the request starts when both the caller is
    /// ready and the resource is free, and occupies the resource until
    /// `end = start + dur`.
    #[inline]
    pub fn acquire(&mut self, at: Time, dur: Time) -> (Time, Time) {
        let start = at.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        self.requests += 1;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total time this resource has been occupied.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of acquisitions served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Reset to idle (used when reusing a machine across benchmark runs).
    pub fn reset(&mut self) {
        *self = Resource::default();
    }
}

/// A frozen copy of every resource's dynamic state in a [`ResourcePool`]
/// (the names/layout are static and not repeated here). Taken by
/// [`ResourcePool::save`] and replayed by [`ResourcePool::restore`].
#[derive(Debug, Clone, Default)]
pub struct PoolState {
    states: Vec<Resource>,
}

/// A named, indexed collection of resources.
///
/// The machine model hands out stable `usize` ids at construction time
/// (`cpu(rank)`, `bus(node)`, ...); the executor then addresses resources by
/// id without borrowing the whole machine.
#[derive(Debug, Default)]
pub struct ResourcePool {
    resources: Vec<Resource>,
    names: Vec<String>,
}

impl ResourcePool {
    pub fn new() -> Self {
        ResourcePool::default()
    }

    /// Add a resource, returning its id.
    pub fn add(&mut self, name: impl Into<String>) -> usize {
        self.resources.push(Resource::new());
        self.names.push(name.into());
        self.resources.len() - 1
    }

    #[inline]
    pub fn acquire(&mut self, id: usize, at: Time, dur: Time) -> (Time, Time) {
        self.resources[id].acquire(at, dur)
    }

    pub fn get(&self, id: usize) -> &Resource {
        &self.resources[id]
    }

    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    pub fn len(&self) -> usize {
        self.resources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Reset every resource to idle, keeping the layout.
    pub fn reset(&mut self) {
        for r in &mut self.resources {
            r.reset();
        }
    }

    /// Copy every resource's dynamic state into `out` (allocation-reusing;
    /// checkpoint support for delta re-simulation).
    pub fn save_into(&self, out: &mut PoolState) {
        out.states.clone_from(&self.resources);
    }

    /// Snapshot every resource's dynamic state.
    pub fn save(&self) -> PoolState {
        let mut s = PoolState::default();
        self.save_into(&mut s);
        s
    }

    /// Restore a snapshot taken from a pool with the same layout.
    pub fn restore(&mut self, state: &PoolState) {
        assert_eq!(
            self.resources.len(),
            state.states.len(),
            "pool state from a different machine layout"
        );
        self.resources.clone_from(&state.states);
    }

    /// `(name, busy, requests)` rows for utilization reports.
    pub fn utilization(&self) -> impl Iterator<Item = (&str, Time, u64)> + '_ {
        self.resources
            .iter()
            .zip(self.names.iter())
            .map(|(r, n)| (n.as_str(), r.busy_time(), r.requests()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        let (s, e) = r.acquire(Time::from_ns(10), Time::from_ns(5));
        assert_eq!(s, Time::from_ns(10));
        assert_eq!(e, Time::from_ns(15));
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = Resource::new();
        r.acquire(Time::ZERO, Time::from_ns(100));
        // Requested at t=10 but the resource is busy until t=100.
        let (s, e) = r.acquire(Time::from_ns(10), Time::from_ns(50));
        assert_eq!(s, Time::from_ns(100));
        assert_eq!(e, Time::from_ns(150));
        assert_eq!(r.busy_time(), Time::from_ns(150));
        assert_eq!(r.requests(), 2);
    }

    #[test]
    fn gap_leaves_resource_idle() {
        let mut r = Resource::new();
        r.acquire(Time::ZERO, Time::from_ns(10));
        let (s, _) = r.acquire(Time::from_ns(50), Time::from_ns(10));
        assert_eq!(s, Time::from_ns(50));
        // Busy time counts only occupied time, not the idle gap.
        assert_eq!(r.busy_time(), Time::from_ns(20));
    }

    #[test]
    fn zero_duration_acquire_is_free() {
        let mut r = Resource::new();
        let (s, e) = r.acquire(Time::from_ns(5), Time::ZERO);
        assert_eq!(s, e);
        assert_eq!(r.free_at(), Time::from_ns(5));
    }

    #[test]
    fn serialization_models_contention() {
        // Two 1 KiB copies through one bus take twice as long as one:
        // the "imperfect overlap" effect in miniature.
        let mut bus = Resource::new();
        let dur = Time::for_bytes(1024, 1e9);
        let (_, e1) = bus.acquire(Time::ZERO, dur);
        let (_, e2) = bus.acquire(Time::ZERO, dur);
        assert_eq!(e1, dur);
        assert_eq!(e2, dur * 2);
    }

    #[test]
    fn pool_round_trip() {
        let mut pool = ResourcePool::new();
        let a = pool.add("cpu0");
        let b = pool.add("bus0");
        assert_eq!(pool.len(), 2);
        pool.acquire(a, Time::ZERO, Time::from_ns(3));
        pool.acquire(b, Time::ZERO, Time::from_ns(7));
        assert_eq!(pool.get(a).busy_time(), Time::from_ns(3));
        assert_eq!(pool.name(b), "bus0");
        let rows: Vec<_> = pool.utilization().collect();
        assert_eq!(rows[1], ("bus0", Time::from_ns(7), 1));
        pool.reset();
        assert_eq!(pool.get(a).busy_time(), Time::ZERO);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_state_round_trip() {
        let mut pool = ResourcePool::new();
        let a = pool.add("cpu0");
        let b = pool.add("bus0");
        pool.acquire(a, Time::ZERO, Time::from_ns(3));
        let snap = pool.save();
        pool.acquire(a, Time::from_ns(3), Time::from_ns(9));
        pool.acquire(b, Time::ZERO, Time::from_ns(7));
        pool.restore(&snap);
        assert_eq!(pool.get(a).free_at(), Time::from_ns(3));
        assert_eq!(pool.get(a).requests(), 1);
        assert_eq!(pool.get(b).requests(), 0);
        // Continuing from the restored state matches the original timeline.
        let (s, _) = pool.acquire(a, Time::ZERO, Time::from_ns(1));
        assert_eq!(s, Time::from_ns(3));
    }
}
