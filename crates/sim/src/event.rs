//! Deterministic event queue.
//!
//! An arena-backed two-tier bucket ("calendar") queue keyed by
//! `(time, sequence)`. The sequence number makes pops of simultaneous
//! events FIFO in push order, which is the property that keeps the whole
//! simulator deterministic: two runs of the same program produce identical
//! resource-acquisition orders and therefore identical virtual timings.
//!
//! Layout: a near-future ring of fixed-width time buckets (width
//! `2^BUCKET_SHIFT` ps) holds events close to the current clock; events
//! beyond the ring land in a far-future overflow heap. Buckets partition
//! the time axis, so the first occupied bucket always contains the global
//! near minimum; within a bucket, nodes are kept in `(time, seq)`-stable
//! append order so the first node carrying the bucket's minimum timestamp
//! is also the lowest-sequence one. The far heap only drains into the ring
//! ("migration") when the ring is empty, re-anchoring the ring base; every
//! far event then lives in a bucket at or beyond the new base, so far
//! events are never earlier than near ones.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// log2 of the bucket width in picoseconds (2^16 ps ≈ 65.5 ns).
const BUCKET_SHIFT: u32 = 16;
/// Number of near-future buckets; the ring spans `NBUCKETS << BUCKET_SHIFT`
/// picoseconds (≈ 67 µs) past its base.
const NBUCKETS: usize = 1024;
const OCC_WORDS: usize = NBUCKETS / 64;
const NIL: u32 = u32::MAX;

/// Engine counters accumulated over the queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Events scheduled.
    pub pushes: u64,
    /// Events processed.
    pub pops: u64,
    /// Events scheduled in the past and clamped to `now` (release builds
    /// only — debug builds panic instead). Nonzero means a simulator bug.
    pub clamped: u64,
    /// High-water mark of pending events.
    pub max_depth: u64,
}

impl EngineStats {
    /// Accumulate another engine's counters (max-merges `max_depth`).
    pub fn merge(&mut self, other: &EngineStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.clamped += other.clamped;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

#[derive(Debug)]
struct Node<E> {
    at: Time,
    seq: u64,
    next: u32,
    payload: Option<E>,
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
    /// Exact minimum timestamp over the bucket's list (valid when occupied).
    min_at: Time,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
    min_at: Time::ZERO,
};

/// An event queue over payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    arena: Vec<Node<E>>,
    free: u32,
    buckets: Vec<Bucket>,
    occ: [u64; OCC_WORDS],
    /// Bucket index (absolute, `time >> BUCKET_SHIFT`) of ring slot 0.
    base: u64,
    near_len: usize,
    /// Far-future overflow: min-heap on `(time, seq)`; the `u32` is the
    /// arena slot holding the payload.
    far: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    now: Time,
    stats: EngineStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            arena: Vec::new(),
            free: NIL,
            buckets: vec![EMPTY_BUCKET; NBUCKETS],
            occ: [0; OCC_WORDS],
            base: 0,
            near_len: 0,
            far: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            stats: EngineStats::default(),
        }
    }

    fn alloc(&mut self, at: Time, seq: u64, payload: E) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let n = &mut self.arena[i as usize];
            self.free = n.next;
            n.at = at;
            n.seq = seq;
            n.next = NIL;
            n.payload = Some(payload);
            i
        } else {
            self.arena.push(Node {
                at,
                seq,
                next: NIL,
                payload: Some(payload),
            });
            (self.arena.len() - 1) as u32
        }
    }

    fn release(&mut self, i: u32) -> E {
        let n = &mut self.arena[i as usize];
        let payload = n.payload.take().expect("node already released");
        n.next = self.free;
        self.free = i;
        payload
    }

    /// Append an arena node to ring slot `r`, maintaining append order and
    /// the bucket's exact minimum.
    fn bucket_append(&mut self, r: usize, i: u32) {
        let at = self.arena[i as usize].at;
        let b = &mut self.buckets[r];
        if b.head == NIL {
            b.head = i;
            b.tail = i;
            b.min_at = at;
            self.occ[r / 64] |= 1u64 << (r % 64);
        } else {
            let t = b.tail;
            b.tail = i;
            b.min_at = b.min_at.min(at);
            self.arena[t as usize].next = i;
        }
        self.near_len += 1;
    }

    /// Slot of the first occupied bucket, if any.
    fn first_occupied(&self) -> Option<usize> {
        for (w, &bits) in self.occ.iter().enumerate() {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Remove and return the `(time, seq)`-minimal node of bucket `r`.
    ///
    /// The list is in stable append order, so among nodes sharing the
    /// minimal timestamp the first one found is the lowest-sequence one.
    fn bucket_pop_min(&mut self, r: usize) -> u32 {
        let min_at = self.buckets[r].min_at;
        // Find the first node carrying the bucket minimum.
        let mut prev = NIL;
        let mut cur = self.buckets[r].head;
        while self.arena[cur as usize].at != min_at {
            prev = cur;
            cur = self.arena[cur as usize].next;
        }
        // Unlink it.
        let next = self.arena[cur as usize].next;
        if prev == NIL {
            self.buckets[r].head = next;
        } else {
            self.arena[prev as usize].next = next;
        }
        if next == NIL {
            self.buckets[r].tail = prev;
        }
        self.near_len -= 1;
        // Recompute the bucket minimum; stop early on an equal timestamp
        // (nothing in the bucket can be below the old minimum).
        if self.buckets[r].head == NIL {
            self.buckets[r] = EMPTY_BUCKET;
            self.occ[r / 64] &= !(1u64 << (r % 64));
        } else {
            let mut m = Time::MAX;
            let mut i = self.buckets[r].head;
            while i != NIL {
                let at = self.arena[i as usize].at;
                if at == min_at {
                    m = at;
                    break;
                }
                m = m.min(at);
                i = self.arena[i as usize].next;
            }
            self.buckets[r].min_at = m;
        }
        cur
    }

    /// Drain every far-heap event that now fits the ring, re-anchoring the
    /// ring base at the far minimum. Only called when the ring is empty, so
    /// re-anchoring cannot reorder near events. The heap yields events in
    /// `(time, seq)` order, preserving stable append order in each bucket.
    fn migrate(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        let Some(&Reverse((t, _, _))) = self.far.peek() else {
            return;
        };
        self.base = t.as_ps() >> BUCKET_SHIFT;
        let horizon = self.base + NBUCKETS as u64;
        while let Some(&Reverse((t, _, i))) = self.far.peek() {
            let b = t.as_ps() >> BUCKET_SHIFT;
            if b >= horizon {
                break;
            }
            self.far.pop();
            self.bucket_append((b - self.base) as usize, i);
        }
    }

    /// Schedule `payload` at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a simulator bug; it panics in debug builds
    /// and is clamped to `now` (and counted in [`EngineStats::clamped`]) in
    /// release builds.
    pub fn push(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let at = if at < self.now {
            self.stats.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.stats.pushes += 1;
        if self.near_len == 0 && self.far.is_empty() {
            // Queue is empty: re-anchor the ring so the event lands near
            // slot 0 and the ring window stays useful as time advances.
            self.base = at.as_ps() >> BUCKET_SHIFT;
        }
        let b = at.as_ps() >> BUCKET_SHIFT;
        if b >= self.base + NBUCKETS as u64 {
            let i = self.alloc(at, seq, payload);
            self.far.push(Reverse((at, seq, i)));
        } else {
            // `b < base` can only happen transiently right after a far
            // migration re-anchored the ring ahead of a not-yet-advanced
            // clock; slot 0 is still the earliest bucket, and its exact
            // `min_at` keeps ordering correct.
            let r = b.saturating_sub(self.base) as usize;
            let i = self.alloc(at, seq, payload);
            self.bucket_append(r, i);
        }
        self.stats.max_depth = self.stats.max_depth.max(self.len() as u64);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.near_len == 0 {
            self.migrate();
        }
        let r = self.first_occupied()?;
        let i = self.bucket_pop_min(r);
        let at = self.arena[i as usize].at;
        let payload = self.release(i);
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.stats.pops += 1;
        Some((at, payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if self.near_len > 0 {
            // Buckets partition time: the first occupied bucket holds the
            // global near minimum, and (ring empty ⇒ migration) far events
            // are never earlier than near ones.
            let r = self.first_occupied().expect("near_len > 0");
            Some(self.buckets[r].min_at)
        } else {
            self.far.peek().map(|&Reverse((t, _, _))| t)
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn is_empty(&self) -> bool {
        self.near_len == 0 && self.far.is_empty()
    }

    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Total number of events processed so far (engine statistic).
    pub fn processed(&self) -> u64 {
        self.stats.pops
    }

    /// Lifetime engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(25), ());
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    /// Reference check: the calendar queue must pop in exactly the
    /// `(time, seq)` order a plain sorted list would.
    fn assert_matches_reference(pushes: &[u64]) {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for (i, &ps) in pushes.iter().enumerate() {
            q.push(Time::from_ps(ps), i);
            reference.push((ps, i));
        }
        reference.sort();
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, p)| (t.as_ps(), p))
            .collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn cross_bucket_ordering_matches_reference() {
        // Times straddling bucket boundaries, duplicates included.
        let w = 1u64 << BUCKET_SHIFT;
        assert_matches_reference(&[
            3 * w + 1,
            w - 1,
            w,
            w + 1,
            0,
            w - 1,
            5 * w,
            2 * w - 1,
            2 * w,
            w,
        ]);
    }

    #[test]
    fn far_future_events_migrate_in_order() {
        let w = 1u64 << BUCKET_SHIFT;
        let ring = NBUCKETS as u64 * w;
        // Mix of near events and events far beyond the ring horizon, with
        // equal-time pairs on both sides of the migration boundary.
        assert_matches_reference(&[
            5,
            3 * ring + 7,
            ring + 1,
            5,
            3 * ring + 7,
            10 * ring,
            2 * ring + w,
            2 * ring + w,
            0,
        ]);
    }

    #[test]
    fn interleaved_push_pop_across_migrations() {
        let w = 1u64 << BUCKET_SHIFT;
        let ring = NBUCKETS as u64 * w;
        let mut q = EventQueue::new();
        q.push(Time::from_ps(1), 0u32);
        q.push(Time::from_ps(2 * ring), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        // After this pop the ring is empty; the next pop migrates the far
        // event, re-anchoring base ahead of `now`. A push landing between
        // `now` and the new base must still pop first.
        q.push(Time::from_ps(2 * ring + 5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_ps(2 * ring + 5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_flood_within_one_bucket() {
        // Large same-timestamp bursts exercise the O(1) head-pop path.
        let mut q = EventQueue::new();
        let t = Time::from_ps(12345);
        for i in 0..1000 {
            q.push(t, i);
        }
        // A later, earlier-within-bucket event must pop before the flood's
        // tail but after nothing (it is the new minimum).
        q.push(Time::from_ps(12000), 5000);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        let mut expect: Vec<i32> = vec![5000];
        expect.extend(0..1000);
        assert_eq!(order, expect);
    }

    #[test]
    fn stats_track_pushes_pops_and_depth() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(Time::from_ns(i), i);
        }
        assert_eq!(q.stats().pushes, 10);
        assert_eq!(q.stats().max_depth, 10);
        for _ in 0..4 {
            q.pop();
        }
        assert_eq!(q.stats().pops, 4);
        assert_eq!(q.stats().clamped, 0);
        assert_eq!(q.len(), 6);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_events_are_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 0);
        q.pop();
        q.push(Time::from_ns(5), 1); // in the past: clamped to now
        let (t, p) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(10));
        assert_eq!(p, 1);
        assert_eq!(q.stats().clamped, 1);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.push(Time::from_ns(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        // Steady-state churn must not grow the arena past the peak depth.
        assert!(q.arena.len() <= 8, "arena grew to {}", q.arena.len());
    }

    #[test]
    fn stats_merge_accumulates() {
        let a = EngineStats {
            pushes: 3,
            pops: 2,
            clamped: 1,
            max_depth: 5,
        };
        let mut b = EngineStats {
            pushes: 10,
            pops: 10,
            clamped: 0,
            max_depth: 2,
        };
        b.merge(&a);
        assert_eq!(
            b,
            EngineStats {
                pushes: 13,
                pops: 12,
                clamped: 1,
                max_depth: 5,
            }
        );
    }
}
