//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! sequence number makes pops of simultaneous events FIFO in push order,
//! which is the property that keeps the whole simulator deterministic: two
//! runs of the same program produce identical resource-acquisition orders
//! and therefore identical virtual timings.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// An event queue over payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// Schedule `payload` at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a simulator bug; it panics in debug builds
    /// and is clamped to `now` in release builds.
    pub fn push(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue went backwards");
        self.now = e.at;
        self.popped += 1;
        Some((e.at, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events processed so far (engine statistic).
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(25), ());
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
