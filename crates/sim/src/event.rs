//! Deterministic event queue.
//!
//! An arena-backed two-tier bucket ("calendar") queue keyed by
//! `(time, sequence)`. The sequence number makes pops of simultaneous
//! events FIFO in push order, which is the property that keeps the whole
//! simulator deterministic: two runs of the same program produce identical
//! resource-acquisition orders and therefore identical virtual timings.
//!
//! Layout: a near-future ring of fixed-width time buckets (width
//! `2^BUCKET_SHIFT` ps) holds events close to the current clock; events
//! beyond the ring land in a far-future overflow heap. Buckets partition
//! the time axis, so the first occupied bucket always contains the global
//! near minimum; within a bucket, nodes are kept in `(time, seq)`-stable
//! append order so the first node carrying the bucket's minimum timestamp
//! is also the lowest-sequence one. The far heap only drains into the ring
//! ("migration") when the ring is empty, re-anchoring the ring base; every
//! far event then lives in a bucket at or beyond the new base, so far
//! events are never earlier than near ones.
//!
//! Node storage is struct-of-arrays (`at` / `next` / `slot` indexed by a
//! `u32` arena id); near nodes carry no sequence number at all because
//! bucket append order *is* sequence order — only the far heap keeps
//! explicit sequences in its tuples. Pops are batch-drained: one pass over
//! the first occupied bucket extracts every event sharing the minimal
//! timestamp, and subsequent pops serve from that batch in O(1) without
//! touching the bitmap or bucket lists.
//!
//! Pushes at exactly the current timestamp — the dominant pattern in
//! dependency-driven programs, where finishing one op readies the next at
//! the same instant — append straight onto the live batch: a refill takes
//! *every* pending event at the minimum timestamp with it, so nothing at
//! `now` remains in the buckets or the far heap, and an appended event's
//! sequence number is by construction larger than everything already in
//! the batch. The append is therefore exact FIFO order at O(1), skipping
//! node allocation, the bucket list and the next bitmap scan entirely.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// log2 of the bucket width in picoseconds (2^16 ps ≈ 65.5 ns).
const BUCKET_SHIFT: u32 = 16;
/// Number of near-future buckets; the ring spans `NBUCKETS << BUCKET_SHIFT`
/// picoseconds (≈ 67 µs) past its base.
const NBUCKETS: usize = 1024;
const OCC_WORDS: usize = NBUCKETS / 64;
const NIL: u32 = u32::MAX;

/// Engine counters accumulated over the queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Events scheduled.
    pub pushes: u64,
    /// Events processed.
    pub pops: u64,
    /// Events scheduled in the past and clamped to `now` (release builds
    /// only — debug builds panic instead). Nonzero means a simulator bug.
    pub clamped: u64,
    /// High-water mark of pending events.
    pub max_depth: u64,
    /// Pops served from a same-timestamp batch beyond its first event,
    /// i.e. pops that skipped the bitmap scan and bucket walk entirely.
    pub batched_pops: u64,
    /// Largest same-timestamp batch drained in one bucket pass.
    pub max_batch: u64,
}

impl EngineStats {
    /// Accumulate another engine's counters (max-merges the high-water
    /// marks `max_depth` and `max_batch`).
    pub fn merge(&mut self, other: &EngineStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.clamped += other.clamped;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.batched_pops += other.batched_pops;
        self.max_batch = self.max_batch.max(other.max_batch);
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
    /// Exact minimum timestamp over the bucket's list (valid when occupied).
    min_at: Time,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
    min_at: Time::ZERO,
};

/// A frozen copy of a queue's pending events in exact pop order, plus the
/// clock and counters needed to continue a run from this point. Taken by
/// [`EventQueue::snapshot`] and replayed by [`EventQueue::restore`]; the
/// delta re-simulation checkpoints in `han-mpi` are built on this.
#[derive(Debug, Clone)]
pub struct QueueSnapshot<E> {
    now: Time,
    stats: EngineStats,
    /// Pending `(time, payload)` pairs, sorted by pop order.
    events: Vec<(Time, E)>,
}

impl<E> QueueSnapshot<E> {
    /// Number of pending events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// An event queue over payloads of type `E`.
///
/// Node state lives in parallel arrays indexed by `u32` arena slot; freed
/// slots are threaded through `next` as a free list, so steady-state churn
/// allocates nothing. [`EventQueue::reset`] rewinds the queue for reuse
/// across simulations while keeping every allocation.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Timestamp of each arena slot (SoA with `next` / `slot`).
    at: Vec<Time>,
    /// Intrusive bucket list / free list link of each arena slot.
    next: Vec<u32>,
    /// Payload of each arena slot (`None` while on the free list).
    slot: Vec<Option<E>>,
    free: u32,
    buckets: Vec<Bucket>,
    occ: [u64; OCC_WORDS],
    /// Bucket index (absolute, `time >> BUCKET_SHIFT`) of ring slot 0.
    base: u64,
    near_len: usize,
    /// Lower bound on the first occupied ring slot. Pushes never land
    /// before `now`, so after a drain at slot `r` the next occupied slot is
    /// `>= r` until a migration or empty-queue re-anchor resets the ring;
    /// the bitmap scan starts here instead of word 0.
    cursor: usize,
    /// Far-future overflow: min-heap on `(time, seq)`; the `u32` is the
    /// arena slot holding the payload.
    far: BinaryHeap<Reverse<(Time, u64, u32)>>,
    seq: u64,
    now: Time,
    /// Same-timestamp batch being served, in pop order (front to back).
    /// All events are at `batch_at`; pushes at `now` append at the back.
    batch: VecDeque<E>,
    batch_at: Time,
    stats: EngineStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            at: Vec::new(),
            next: Vec::new(),
            slot: Vec::new(),
            free: NIL,
            buckets: vec![EMPTY_BUCKET; NBUCKETS],
            occ: [0; OCC_WORDS],
            base: 0,
            near_len: 0,
            cursor: NBUCKETS,
            far: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            batch: VecDeque::new(),
            batch_at: Time::ZERO,
            stats: EngineStats::default(),
        }
    }

    /// Rewind to the just-constructed state while keeping every arena,
    /// bucket and batch allocation — the per-worker "bump arena" pattern:
    /// one queue per thread, `reset()` between simulations. When the queue
    /// already drained to empty (the normal end of a run) this touches no
    /// bucket memory at all.
    pub fn reset(&mut self) {
        if self.near_len > 0 {
            let mut w = 0;
            while w < OCC_WORDS {
                let mut bits = self.occ[w];
                while bits != 0 {
                    let r = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.buckets[r] = EMPTY_BUCKET;
                }
                self.occ[w] = 0;
                w += 1;
            }
            self.near_len = 0;
        }
        self.at.clear();
        self.next.clear();
        self.slot.clear();
        self.free = NIL;
        self.base = 0;
        self.cursor = NBUCKETS;
        self.far.clear();
        self.seq = 0;
        self.now = Time::ZERO;
        self.batch.clear();
        self.stats = EngineStats::default();
    }

    fn alloc(&mut self, at: Time, payload: E) -> u32 {
        if self.free != NIL {
            let i = self.free;
            self.free = self.next[i as usize];
            self.at[i as usize] = at;
            self.next[i as usize] = NIL;
            self.slot[i as usize] = Some(payload);
            i
        } else {
            self.at.push(at);
            self.next.push(NIL);
            self.slot.push(Some(payload));
            (self.at.len() - 1) as u32
        }
    }

    /// Append an arena node to ring slot `r`, maintaining append order and
    /// the bucket's exact minimum.
    fn bucket_append(&mut self, r: usize, i: u32) {
        let at = self.at[i as usize];
        let b = &mut self.buckets[r];
        if b.head == NIL {
            b.head = i;
            b.tail = i;
            b.min_at = at;
            self.occ[r / 64] |= 1u64 << (r % 64);
            self.cursor = self.cursor.min(r);
        } else {
            let t = b.tail;
            b.tail = i;
            b.min_at = b.min_at.min(at);
            self.next[t as usize] = i;
        }
        self.near_len += 1;
    }

    /// Slot of the first occupied bucket, if any. Starts the bitmap scan
    /// at the monotone cursor (no occupied slot can be below it).
    fn first_occupied(&self) -> Option<usize> {
        for w in self.cursor / 64..OCC_WORDS {
            let bits = self.occ[w];
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Refill the batch from the first occupied bucket: one pass over its
    /// list moves *every* node carrying the bucket minimum into the batch
    /// (in FIFO append order), relinks the rest in place, and recomputes
    /// the remainder's exact minimum. Returns `false` when the queue is
    /// exhausted.
    fn refill_batch(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        if self.near_len == 0 {
            self.migrate();
        }
        let Some(r) = self.first_occupied() else {
            return false;
        };
        self.cursor = r;
        let min_at = self.buckets[r].min_at;
        let mut head = NIL;
        let mut tail = NIL;
        let mut rest_min = Time::MAX;
        let mut cur = self.buckets[r].head;
        let mut k = 0u64;
        while cur != NIL {
            let i = cur as usize;
            let nxt = self.next[i];
            if self.at[i] == min_at {
                let payload = self.slot[i].take().expect("node already released");
                self.batch.push_back(payload);
                self.next[i] = self.free;
                self.free = cur;
                k += 1;
            } else {
                rest_min = rest_min.min(self.at[i]);
                if head == NIL {
                    head = cur;
                } else {
                    self.next[tail as usize] = cur;
                }
                tail = cur;
            }
            cur = nxt;
        }
        self.near_len -= k as usize;
        if head == NIL {
            self.buckets[r] = EMPTY_BUCKET;
            self.occ[r / 64] &= !(1u64 << (r % 64));
        } else {
            self.next[tail as usize] = NIL;
            self.buckets[r] = Bucket {
                head,
                tail,
                min_at: rest_min,
            };
        }
        self.batch_at = min_at;
        self.stats.batched_pops += k - 1;
        self.stats.max_batch = self.stats.max_batch.max(k);
        true
    }

    /// Drain every far-heap event that now fits the ring, re-anchoring the
    /// ring base at the far minimum. Only called when the ring is empty, so
    /// re-anchoring cannot reorder near events. The heap yields events in
    /// `(time, seq)` order, preserving stable append order in each bucket.
    fn migrate(&mut self) {
        debug_assert_eq!(self.near_len, 0);
        let Some(&Reverse((t, _, _))) = self.far.peek() else {
            return;
        };
        self.base = t.as_ps() >> BUCKET_SHIFT;
        self.cursor = NBUCKETS;
        let horizon = self.base + NBUCKETS as u64;
        while let Some(&Reverse((t, _, i))) = self.far.peek() {
            let b = t.as_ps() >> BUCKET_SHIFT;
            if b >= horizon {
                break;
            }
            self.far.pop();
            self.bucket_append((b - self.base) as usize, i);
        }
    }

    /// Schedule `payload` at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a simulator bug; it panics in debug builds
    /// and is clamped to `now` (and counted in [`EngineStats::clamped`]) in
    /// release builds.
    pub fn push(&mut self, at: Time, payload: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let at = if at < self.now {
            self.stats.clamped += 1;
            self.now
        } else {
            at
        };
        self.stats.pushes += 1;
        if at == self.now {
            // Same-instant fast path: nothing at `now` can remain outside
            // the batch (a refill takes every minimal-timestamp event with
            // it, later buckets and the far heap hold strictly later
            // times), and this push's sequence number exceeds everything
            // already batched — appending IS exact (time, seq) FIFO order.
            self.batch_at = at;
            self.batch.push_back(payload);
        } else {
            self.push_inner(at, payload);
        }
        // Every push adds one pending event and every pop removes one, so
        // `pushes - pops` IS the current depth — no need to recount.
        let depth = self.stats.pushes - self.stats.pops;
        if depth > self.stats.max_depth {
            self.stats.max_depth = depth;
        }
    }

    /// Insert without stats accounting (shared by `push` and `restore`).
    fn push_inner(&mut self, at: Time, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        if self.near_len == 0 && self.far.is_empty() {
            // Queue is empty: re-anchor the ring so the event lands near
            // slot 0 and the ring window stays useful as time advances.
            self.base = at.as_ps() >> BUCKET_SHIFT;
            self.cursor = NBUCKETS;
        }
        let b = at.as_ps() >> BUCKET_SHIFT;
        if b >= self.base + NBUCKETS as u64 {
            let i = self.alloc(at, payload);
            self.far.push(Reverse((at, seq, i)));
        } else {
            // `b < base` can only happen transiently right after a far
            // migration re-anchored the ring ahead of a not-yet-advanced
            // clock; slot 0 is still the earliest bucket, and its exact
            // `min_at` keeps ordering correct.
            let r = b.saturating_sub(self.base) as usize;
            let i = self.alloc(at, payload);
            self.bucket_append(r, i);
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.batch.is_empty() && !self.refill_batch() {
            return None;
        }
        let payload = self.batch.pop_front().expect("batch refilled");
        let at = self.batch_at;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.stats.pops += 1;
        Some((at, payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if !self.batch.is_empty() {
            // The batch holds the globally minimal timestamp: everything
            // pushed since the drain is at or after `now == batch_at`.
            Some(self.batch_at)
        } else if self.near_len > 0 {
            // Buckets partition time: the first occupied bucket holds the
            // global near minimum, and (ring empty ⇒ migration) far events
            // are never earlier than near ones.
            let r = self.first_occupied().expect("near_len > 0");
            Some(self.buckets[r].min_at)
        } else {
            self.far.peek().map(|&Reverse((t, _, _))| t)
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    pub fn is_empty(&self) -> bool {
        self.batch.is_empty() && self.near_len == 0 && self.far.is_empty()
    }

    pub fn len(&self) -> usize {
        self.batch.len() + self.near_len + self.far.len()
    }

    /// Total number of events processed so far (engine statistic).
    pub fn processed(&self) -> u64 {
        self.stats.pops
    }

    /// Lifetime engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }
}

impl<E: Clone> EventQueue<E> {
    /// Freeze the pending events (in exact pop order), clock and counters.
    /// `restore` of the snapshot on any queue — including this one, later —
    /// reproduces bit-identical pop behaviour from this point on.
    pub fn snapshot(&self) -> QueueSnapshot<E> {
        let mut events: Vec<(Time, E)> = Vec::with_capacity(self.len());
        // Batch remainder first, already in pop order; same-instant pushes
        // appended to it are included in their correct FIFO position.
        for e in self.batch.iter() {
            events.push((self.batch_at, e.clone()));
        }
        let batch_rem = events.len();
        // Near events in bucket traversal order, then a stable sort by
        // time. Equal-time events always share a bucket and sit in its list
        // in sequence order, so the stable sort yields exact pop order
        // (and keeps the batch remainder ahead of equal-time newcomers).
        for w in 0..OCC_WORDS {
            let mut bits = self.occ[w];
            while bits != 0 {
                let r = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let mut cur = self.buckets[r].head;
                while cur != NIL {
                    let i = cur as usize;
                    let payload = self.slot[i].clone().expect("live node");
                    events.push((self.at[i], payload));
                    cur = self.next[i];
                }
            }
        }
        events[batch_rem..].sort_by_key(|&(t, _)| t);
        if !self.batch.is_empty() && events.len() > batch_rem {
            debug_assert!(events[batch_rem].0 >= self.batch_at);
        }
        // Far events are never earlier than near ones; sort by (time, seq)
        // and append.
        let mut far: Vec<&Reverse<(Time, u64, u32)>> = self.far.iter().collect();
        far.sort_by_key(|&&Reverse((t, s, _))| (t, s));
        for &&Reverse((t, _, i)) in &far {
            events.push((t, self.slot[i as usize].clone().expect("live node")));
        }
        QueueSnapshot {
            now: self.now,
            stats: self.stats,
            events,
        }
    }

    /// Replace this queue's entire state with a snapshot's. Pending events
    /// are re-inserted in pop order (their relative sequence order — the
    /// only thing FIFO tie-breaking observes — is preserved), the clock and
    /// counters are restored, and subsequent pushes order after them
    /// exactly as they would have in the original run.
    pub fn restore(&mut self, snap: &QueueSnapshot<E>) {
        self.reset();
        self.now = snap.now;
        // Events at `snap.now` must land in the live batch, not a bucket:
        // the same-instant push fast path appends to the batch, so a
        // bucketed event at `now` would be drained *after* every later
        // fast-path push, breaking FIFO. The snapshot lists the batch
        // remainder first (all at `snap.now`), so appending preserves order.
        for (t, e) in &snap.events {
            if *t == snap.now {
                self.batch_at = snap.now;
                self.batch.push_back(e.clone());
            } else {
                self.push_inner(*t, e.clone());
            }
        }
        self.stats = snap.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), "c");
        q.push(Time::from_ns(10), "a");
        q.push(Time::from_ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(10), ());
        q.push(Time::from_ns(25), ());
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_sees_batch_remainder() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(3);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        // One event is still batched; peek/len must reflect it.
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((t, 1)));
        assert!(q.is_empty());
    }

    /// Reference check: the calendar queue must pop in exactly the
    /// `(time, seq)` order a plain sorted list would.
    fn assert_matches_reference(pushes: &[u64]) {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        for (i, &ps) in pushes.iter().enumerate() {
            q.push(Time::from_ps(ps), i);
            reference.push((ps, i));
        }
        reference.sort();
        let got: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, p)| (t.as_ps(), p))
            .collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn cross_bucket_ordering_matches_reference() {
        // Times straddling bucket boundaries, duplicates included.
        let w = 1u64 << BUCKET_SHIFT;
        assert_matches_reference(&[
            3 * w + 1,
            w - 1,
            w,
            w + 1,
            0,
            w - 1,
            5 * w,
            2 * w - 1,
            2 * w,
            w,
        ]);
    }

    #[test]
    fn far_future_events_migrate_in_order() {
        let w = 1u64 << BUCKET_SHIFT;
        let ring = NBUCKETS as u64 * w;
        // Mix of near events and events far beyond the ring horizon, with
        // equal-time pairs on both sides of the migration boundary.
        assert_matches_reference(&[
            5,
            3 * ring + 7,
            ring + 1,
            5,
            3 * ring + 7,
            10 * ring,
            2 * ring + w,
            2 * ring + w,
            0,
        ]);
    }

    #[test]
    fn interleaved_push_pop_across_migrations() {
        let w = 1u64 << BUCKET_SHIFT;
        let ring = NBUCKETS as u64 * w;
        let mut q = EventQueue::new();
        q.push(Time::from_ps(1), 0u32);
        q.push(Time::from_ps(2 * ring), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        // After this pop the ring is empty; the next pop migrates the far
        // event, re-anchoring base ahead of `now`. A push landing between
        // `now` and the new base must still pop first.
        q.push(Time::from_ps(2 * ring + 5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_ps(2 * ring + 5), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_flood_within_one_bucket() {
        // Large same-timestamp bursts exercise the batch-drain path.
        let mut q = EventQueue::new();
        let t = Time::from_ps(12345);
        for i in 0..1000 {
            q.push(t, i);
        }
        // A later, earlier-within-bucket event must pop before the flood's
        // tail but after nothing (it is the new minimum).
        q.push(Time::from_ps(12000), 5000);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        let mut expect: Vec<i32> = vec![5000];
        expect.extend(0..1000);
        assert_eq!(order, expect);
        // The flood drained as one 1000-event batch (999 batched pops).
        assert_eq!(q.stats().max_batch, 1000);
        assert_eq!(q.stats().batched_pops, 999);
    }

    #[test]
    fn same_time_push_during_batch_drain_orders_after() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(4);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop(), Some((t, 0)));
        // Pushed while event 1 is still batched: must pop after it.
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_pushes_pops_and_depth() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(Time::from_ns(i), i);
        }
        assert_eq!(q.stats().pushes, 10);
        assert_eq!(q.stats().max_depth, 10);
        for _ in 0..4 {
            q.pop();
        }
        assert_eq!(q.stats().pops, 4);
        assert_eq!(q.stats().clamped, 0);
        assert_eq!(q.len(), 6);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_events_are_clamped_and_counted() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), 0);
        q.pop();
        q.push(Time::from_ns(5), 1); // in the past: clamped to now
        let (t, p) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(10));
        assert_eq!(p, 1);
        assert_eq!(q.stats().clamped, 1);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.push(Time::from_ns(round * 100 + i), i);
            }
            while q.pop().is_some() {}
        }
        // Steady-state churn must not grow the arena past the peak depth.
        assert!(q.at.len() <= 8, "arena grew to {}", q.at.len());
    }

    #[test]
    fn reset_rewinds_but_keeps_capacity() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(Time::from_ns(i), i);
        }
        for _ in 0..40 {
            q.pop();
        }
        let cap = q.at.capacity();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.stats(), EngineStats::default());
        assert_eq!(q.at.capacity(), cap);
        // The queue behaves exactly like a fresh one.
        q.push(Time::from_ns(2), 200u64);
        q.push(Time::from_ns(1), 100u64);
        assert_eq!(q.pop(), Some((Time::from_ns(1), 100)));
        assert_eq!(q.pop(), Some((Time::from_ns(2), 200)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn snapshot_restore_is_pop_identical() {
        let w = 1u64 << BUCKET_SHIFT;
        let ring = NBUCKETS as u64 * w;
        // Mixed near/far/same-time state, including a half-served batch.
        let times = [5, 5, 5, 12, w + 3, 2 * ring + 7, 2 * ring + 7, 12];
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ps(t), i);
        }
        assert_eq!(q.pop().unwrap().1, 0); // leaves 1, 2 batched
        let snap = q.snapshot();
        assert_eq!(snap.len(), q.len());
        let drain = |q: &mut EventQueue<usize>| -> Vec<(u64, usize)> {
            std::iter::from_fn(|| q.pop())
                .map(|(t, p)| (t.as_ps(), p))
                .collect()
        };
        let original = drain(&mut q);
        let mut r = EventQueue::new();
        r.restore(&snap);
        assert_eq!(drain(&mut r), original);
        // Restoring onto the drained original queue works too.
        q.restore(&snap);
        assert_eq!(drain(&mut q), original);
    }

    #[test]
    fn restore_preserves_ordering_against_new_pushes() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(9);
        q.push(t, 0);
        q.push(t, 1);
        q.pop();
        let snap = q.snapshot();
        let mut r = EventQueue::new();
        r.restore(&snap);
        assert_eq!(r.now(), t);
        assert_eq!(r.stats(), q.stats());
        // A push after restore orders behind the restored equal-time event.
        r.push(t, 2);
        assert_eq!(r.pop(), Some((t, 1)));
        assert_eq!(r.pop(), Some((t, 2)));
    }

    #[test]
    fn stats_merge_accumulates() {
        let a = EngineStats {
            pushes: 3,
            pops: 2,
            clamped: 1,
            max_depth: 5,
            batched_pops: 1,
            max_batch: 4,
        };
        let mut b = EngineStats {
            pushes: 10,
            pops: 10,
            clamped: 0,
            max_depth: 2,
            batched_pops: 6,
            max_batch: 2,
        };
        b.merge(&a);
        assert_eq!(
            b,
            EngineStats {
                pushes: 13,
                pops: 12,
                clamped: 1,
                max_depth: 5,
                batched_pops: 7,
                max_batch: 4,
            }
        );
    }
}
