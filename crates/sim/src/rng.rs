//! Seeded randomness for reproducible experiments.
//!
//! The simulator itself is fully deterministic; randomness only enters
//! through explicit knobs (process-arrival jitter, workload generation).
//! Centralizing RNG construction behind a seed keeps every figure
//! regeneration bit-reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG with convenience helpers for the jitter models used
/// by the machine layer and the workload generators.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, e.g. one per rank, so adding a
    /// consumer does not perturb the draws other consumers see.
    pub fn stream(&self, stream: u64) -> Self {
        // SplitMix64 over (seed-derived state, stream) gives well-spread
        // child seeds without correlations between adjacent streams.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut clone = self.clone();
        let base: u64 = clone.inner.random();
        SimRng::seeded(base ^ z)
    }

    #[inline]
    pub fn u64(&mut self, bound: u64) -> u64 {
        self.inner.random_range(0..bound.max(1))
    }

    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform draw in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.random_range(lo..hi)
    }

    /// A multiplicative jitter factor in `[1 - spread, 1 + spread]`.
    #[inline]
    pub fn jitter(&mut self, spread: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&spread));
        if spread == 0.0 {
            1.0
        } else {
            1.0 + self.inner.random_range(-spread..=spread)
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.random_range(0..=i);
            xs.swap(i, j);
        }
    }

    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.u64(1_000_000), b.u64(1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..64).filter(|_| a.u64(1 << 40) == b.u64(1 << 40)).count();
        assert!(same < 4);
    }

    #[test]
    fn child_streams_are_independent_of_sibling_count() {
        let root = SimRng::seeded(7);
        let mut s3a = root.stream(3);
        let mut s3b = root.stream(3);
        assert_eq!(s3a.u64(u64::MAX), s3b.u64(u64::MAX));
        let mut s4 = root.stream(4);
        assert_ne!(root.stream(3).u64(u64::MAX), s4.u64(u64::MAX));
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1_000 {
            let j = r.jitter(0.25);
            assert!((0.75..=1.25).contains(&j));
        }
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seeded(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
