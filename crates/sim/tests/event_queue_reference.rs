//! Property test: the calendar event queue is observationally equivalent
//! to a plain `BinaryHeap` ordered by `(time, seq)` under arbitrary
//! interleavings of pushes and pops — including far-future events that
//! cross the ring horizon and migrate back, and (release builds only)
//! pushes into the past, which must clamp to the current clock exactly
//! like the reference model.

use han_sim::{EventQueue, Time};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bucket width and ring span of the calendar queue (mirrors the
/// constants in `han_sim::event`; the property holds for any values, the
/// offsets below just aim the generator at the boundaries).
const BUCKET_W: u64 = 1 << 16;
const RING: u64 = 1024 * BUCKET_W;

/// Reference model: min-heap on `(time_ps, seq)` plus the popped clock.
#[derive(Default)]
struct Model {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    seq: u64,
    now: u64,
}

impl Model {
    fn push(&mut self, at_ps: u64) {
        self.heap.push(Reverse((at_ps, self.seq)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let Reverse((t, s)) = self.heap.pop()?;
        self.now = t;
        Some((t, s))
    }
}

/// One generated operation: `kind` selects push-near / push-far / pop,
/// `off` is a time offset from the current virtual clock.
fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..8, 0u64..3 * RING), 1..250)
}

fn run_against_reference(ops: &[(u64, u64)], past_pushes: bool) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Model::default();
    let mut expect_clamped = 0u64;
    for &(kind, off) in ops {
        match kind {
            // Frequent near pushes around bucket boundaries.
            0..=3 => {
                let at = model.now + off % (4 * BUCKET_W);
                q.push(Time::from_ps(at), model.seq);
                model.push(at);
            }
            // Occasional pushes up to several ring spans out.
            4..=5 => {
                let at = model.now + off;
                q.push(Time::from_ps(at), model.seq);
                model.push(at);
            }
            // Release builds clamp past events to `now`; model likewise.
            6 if past_pushes => {
                let at = model.now.saturating_sub(off % (2 * BUCKET_W));
                if at < model.now {
                    expect_clamped += 1;
                }
                q.push(Time::from_ps(at), model.seq);
                model.push(at.max(model.now));
            }
            _ => {
                let got = q.pop();
                let want = model.pop();
                assert_eq!(
                    got.map(|(t, p)| (t.as_ps(), p)),
                    want,
                    "pop diverged from reference"
                );
                assert_eq!(q.now().as_ps(), model.now);
            }
        }
        assert_eq!(q.len(), model.heap.len());
        assert_eq!(
            q.peek_time().map(Time::as_ps),
            model.heap.peek().map(|r| r.0 .0)
        );
    }
    // Drain: every remaining event pops in exact (time, seq) order.
    while let Some(want) = model.pop() {
        let (t, p) = q.pop().expect("queue drained before reference");
        assert_eq!((t.as_ps(), p), want);
    }
    assert!(q.pop().is_none());
    assert!(q.is_empty());
    let stats = q.stats();
    assert_eq!(stats.pushes, model.seq);
    assert_eq!(stats.pops, model.seq);
    assert_eq!(stats.clamped, expect_clamped);
}

/// Burst generator: interleave same-timestamp bursts (the batch-drain
/// fast path pops these without re-probing the calendar) with single
/// pushes at fresh times and pops. `(kind, burst_len, off)` per op.
fn arb_burst_ops() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    proptest::collection::vec((0u64..8, 1u64..32, 0u64..4 * BUCKET_W), 1..200)
}

/// Same-timestamp bursts must pop in exact push (seq) order even when the
/// batch-drain path serves them from a cached bucket slice, and the
/// `batched_pops`/`max_batch` counters must account for every burst.
fn run_bursts_against_reference(ops: &[(u64, u64, u64)]) {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Model::default();
    for &(kind, burst, off) in ops {
        match kind {
            // A burst of events sharing one timestamp, possibly at the
            // current clock (drainable immediately), possibly ahead.
            0..=3 => {
                let at = model.now + off % (2 * BUCKET_W);
                for _ in 0..burst {
                    q.push(Time::from_ps(at), model.seq);
                    model.push(at);
                }
            }
            // A single event at a fresh time, splitting bursts.
            4..=5 => {
                let at = model.now + off;
                q.push(Time::from_ps(at), model.seq);
                model.push(at);
            }
            // Pop a whole burst's worth, crossing batch boundaries.
            _ => {
                for _ in 0..burst {
                    let got = q.pop();
                    let want = model.pop();
                    assert_eq!(
                        got.map(|(t, p)| (t.as_ps(), p)),
                        want,
                        "burst pop diverged from reference"
                    );
                }
            }
        }
    }
    while let Some(want) = model.pop() {
        let (t, p) = q.pop().expect("queue drained before reference");
        assert_eq!((t.as_ps(), p), want);
    }
    assert!(q.pop().is_none());
    let stats = q.stats();
    assert_eq!(stats.pushes, model.seq);
    assert_eq!(stats.pops, model.seq);
    // Batching is an internal accounting of the same pops, never extra
    // ones: each batch of size k contributes k-1 batched pops, and the
    // largest observed batch bounds them all.
    assert!(stats.batched_pops <= stats.pops.saturating_sub(1));
    assert!(stats.max_batch <= stats.pops);
    if stats.batched_pops > 0 {
        assert!(stats.max_batch >= 2);
        assert!(stats.max_batch <= stats.batched_pops + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_queue_matches_binary_heap(ops in arb_ops()) {
        run_against_reference(&ops, false);
    }

    /// Same-timestamp bursts exercise the batch-drain fast path; FIFO
    /// order within a timestamp must match the `(time, seq)` heap.
    #[test]
    fn batch_drain_matches_binary_heap(ops in arb_burst_ops()) {
        run_bursts_against_reference(&ops);
    }

    /// Past-time pushes panic under `debug_assert`, so the clamp branch is
    /// only reachable — and only modeled — in release builds.
    #[test]
    #[cfg(not(debug_assertions))]
    fn calendar_queue_matches_binary_heap_with_clamps(ops in arb_ops()) {
        run_against_reference(&ops, true);
    }
}
