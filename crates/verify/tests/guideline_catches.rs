//! The acceptance property of the verification harness itself: a healthy
//! system passes the whole catalog, and deliberately broken inputs — a
//! stack whose cost shrinks with message size, a tampered lookup table —
//! are caught as structured violations.

use han_colls::stack::{BuildCtx, Coll};
use han_colls::{Frontier, MpiStack};
use han_core::{Han, HanConfig};
use han_machine::{mini, Flavor};
use han_mpi::{BufRange, Comm};
use han_tuner::{tune_with_opts, SearchSpace, Strategy, TuneOpts};
use han_verify::guidelines::{
    enumerate_candidates, msg_monotonicity, serve_agreement, serve_agreement_against,
    synth_bound_soundness, synth_dominance, table_dominance,
};
use han_verify::{run_suite_with, SuiteOpts};

/// A deliberately broken stack: beyond 1 MB it silently broadcasts only
/// the first KiB, so its cost *drops* as the message grows — exactly the
/// truncation bug msg-monotonicity exists to catch.
struct ShrinkingBcast(Han);

impl MpiStack for ShrinkingBcast {
    fn name(&self) -> String {
        "broken-shrinking-bcast".into()
    }

    fn flavor(&self) -> Flavor {
        Flavor::OpenMpi
    }

    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let sliced: Vec<BufRange> = bufs
            .iter()
            .map(|b| {
                if b.len >= 1 << 20 {
                    b.slice(0, 1024)
                } else {
                    *b
                }
            })
            .collect();
        self.0.bcast(cx, comm, root, &sliced, deps)
    }

    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: han_mpi::ReduceOp,
        dtype: han_mpi::DataType,
        deps: &Frontier,
    ) -> Frontier {
        self.0.allreduce(cx, comm, bufs, op, dtype, deps)
    }
}

#[test]
fn broken_stack_is_caught_as_monotonicity_violation() {
    let preset = mini(2, 2);
    let sizes = [16 * 1024u64, 256 * 1024, 4 << 20];
    let honest = Han::with_config(HanConfig::default());
    let ok = msg_monotonicity(&preset, &honest, "HAN", &[Coll::Bcast], &sizes, 0.02);
    assert!(ok.passed(), "honest stack must pass: {:?}", ok.violations);
    assert_eq!(ok.checks, 2);

    let broken = ShrinkingBcast(Han::with_config(HanConfig::default()));
    let bad = msg_monotonicity(&preset, &broken, "broken", &[Coll::Bcast], &sizes, 0.02);
    assert!(!bad.passed(), "the shrinking bcast must be caught");
    let v = &bad.violations[0];
    assert_eq!(v.guideline, "msg-monotonicity");
    assert_eq!(v.coll, "bcast");
    assert_eq!(v.m, 4 << 20);
    assert!(v.observed_ps < v.bound_ps);
    assert!(v.rel_slack < 0.0, "cost dropped: negative slack");
}

fn tiny_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![64 * 1024, 1 << 20],
        seg_sizes: vec![64 * 1024, 256 * 1024],
        inter: vec![
            (
                han_colls::InterModule::Libnbc,
                han_colls::InterAlg::Binomial,
            ),
            (han_colls::InterModule::Adapt, han_colls::InterAlg::Chain),
        ],
        intra: vec![han_colls::IntraModule::Sm],
    }
}

#[test]
fn tampered_table_is_caught_as_dominance_violation() {
    let preset = mini(2, 2);
    let space = tiny_space();
    let colls = [Coll::Bcast];
    let tuned = tune_with_opts(
        &preset,
        &space,
        &colls,
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    );
    let cands = enumerate_candidates(&preset, &space, &colls);

    // The honest (pruned) table dominates its own search space.
    let ok = table_dominance(&preset, &tuned.table, &cands);
    assert!(ok.passed(), "honest table must pass: {:?}", ok.violations);
    assert!(ok.checks > 0);

    // Tamper 1: claim an impossibly low cost for the winner. No candidate
    // beats it, but re-simulating the winning config exposes the lie.
    let mut cheat = tuned.table.clone();
    cheat.entries[0].cost_ps = 1;
    let bad = table_dominance(&preset, &cheat, &cands);
    assert!(!bad.passed());
    assert!(bad.violations[0].detail.contains("re-simulation"));

    // Tamper 2: swap the winner for the most expensive candidate while
    // keeping its (cheap) recorded cost — a candidate now beats the
    // recorded config's true cost.
    let mut swapped = tuned.table.clone();
    let (coll, m) = (swapped.entries[0].coll.clone(), swapped.entries[0].m);
    let (_, _, group) = cands
        .iter()
        .find(|(c, mm, _)| c.name() == coll && *mm == m)
        .unwrap();
    let (worst_cfg, worst_t) = group
        .iter()
        .filter_map(|(cfg, r)| r.as_ref().ok().map(|t| (*cfg, *t)))
        .max_by_key(|&(_, t)| t)
        .unwrap();
    swapped.entries[0].cfg = worst_cfg;
    swapped.entries[0].cost_ps = worst_t.as_ps();
    let bad = table_dominance(&preset, &swapped, &cands);
    assert!(
        !bad.passed(),
        "a swapped-in losing config must lose to some candidate"
    );
    assert!(bad.violations.iter().any(|v| v.detail.contains("loses to")));
}

#[test]
fn tampered_served_table_is_caught_as_serve_disagreement() {
    let preset = mini(2, 2);
    let colls = [Coll::Bcast];
    let tuned = tune_with_opts(
        &preset,
        &tiny_space(),
        &colls,
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    )
    .table;

    // A daemon serving the honest table agrees bit-for-bit.
    let ok = serve_agreement(&preset, &tuned, &colls);
    assert!(ok.passed(), "honest daemon must pass: {:?}", ok.violations);
    assert!(ok.checks > 0);

    // A daemon serving a table with one corrupted cost is flagged.
    let mut tampered = tuned.clone();
    tampered.entries[0].cost_ps += 12_345;
    let bad = serve_agreement_against(&preset, &tuned, &tampered, &colls);
    assert!(!bad.passed(), "tampered served table must be caught");
    let v = &bad.violations[0];
    assert_eq!(v.guideline, "serve-agreement");
    assert_eq!(v.coll, "bcast");
    assert!(v.detail.contains("disagrees"));
}

#[test]
fn tampered_synth_front_is_caught() {
    let preset = mini(2, 2);
    let mut synth = han_synth::synthesize(
        &preset,
        &tiny_space(),
        &[Coll::Bcast],
        han_synth::SynthOpts::default(),
    );
    assert!(synth_dominance(&preset, &synth).passed());
    assert!(synth_bound_soundness(&preset, &synth).passed());

    // Inflate a front winner past the menu best: dominance must flag it.
    let mut tampered = han_synth::synthesize(
        &preset,
        &tiny_space(),
        &[Coll::Bcast],
        han_synth::SynthOpts::default(),
    );
    let f = &mut tampered.fronts[0];
    let mb = f.menu_best_ps.unwrap();
    f.points.last_mut().unwrap().bw_ps = mb + 1_000_000;
    let bad = synth_dominance(&preset, &tampered);
    assert!(!bad.passed(), "inflated winner must be caught");
    assert_eq!(bad.violations[0].guideline, "synth-dominance");

    // Deflate a sample below its own lower bound: bound-soundness must
    // flag it.
    let s = synth
        .samples
        .iter_mut()
        .find(|s| s.bound_bw.is_some())
        .expect("bounded sample");
    s.bw = han_sim::Time::from_ps(s.bound_bw.unwrap().as_ps() / 2);
    let bad = synth_bound_soundness(&preset, &synth);
    assert!(!bad.passed(), "sub-bound cost must be caught");
    assert_eq!(bad.violations[0].guideline, "synth-bound-soundness");
}

#[test]
fn tiny_suite_runs_green() {
    // A shrunken end-to-end suite run: every guideline present, every
    // check green. (`repro verify` runs the full-size version.)
    let opts = SuiteOpts {
        sizes: vec![4 * 1024, 64 * 1024, 512 * 1024],
        space: tiny_space(),
        dominance_colls: vec![Coll::Bcast, Coll::Allreduce],
        ..SuiteOpts::default()
    };
    let report = run_suite_with(&[mini(2, 2)], &opts);
    assert!(
        report.passed(),
        "violations: {:#?}",
        report.violations().collect::<Vec<_>>()
    );
    assert!(report.total_checks > 50, "got {}", report.total_checks);
    assert!(
        report.guidelines.len() >= 8,
        "catalog too small: {}",
        report.guidelines.len()
    );
}
