//! # han-verify — performance-guideline verification with differential
//! oracles
//!
//! The autotuner's value claim is self-referential: it picks winners by
//! simulating candidates, so a bug in the sweep engine (bound pruning,
//! template interning, the calendar event queue) can silently corrupt
//! both the measurements *and* the baseline they are compared against.
//! This crate breaks the loop with machine-checkable **performance
//! guidelines** — self-consistency inequalities in the tradition of
//! Hunold & Träff's "Tuning MPI Collectives by Verifying Performance
//! Guidelines" and PICO — plus **differential oracles** that compare
//! independent implementations of the same semantics.
//!
//! The catalog ([`guidelines`]) currently checks:
//!
//! | id | property |
//! |----|----------|
//! | `msg-monotonicity` | cost non-decreasing in message size |
//! | `rank-monotonicity` | cost non-decreasing in node count |
//! | `allreduce-composition` | Allreduce ≤ Reduce + Bcast |
//! | `bcast-composition` | Bcast ≤ Scatter + Allgather |
//! | `reduce-vs-allreduce` | Reduce ≤ Allreduce |
//! | `table-dominance` | tuned winner ≤ every candidate in its space |
//! | `bound-soundness` | pruning lower bound ≤ simulated cost |
//! | `task-model-band` | task model within the relative error band |
//! | `analytic-envelope` | analytic models within a bounded factor |
//! | `classic-agreement` | N-level builders ≡ classic two-level oracles |
//! | `delta-agreement` | delta re-simulation ≡ full simulation, exactly |
//! | `serve-agreement` | han-serve daemon answers ≡ direct table lookups, across hot-swaps |
//!
//! Every failed inequality becomes a structured [`Violation`] (guideline
//! id, preset, collective, config, sizes, observed vs bound, relative
//! slack); [`suite::run_suite`] aggregates them into a [`VerifyReport`]
//! that `repro verify` writes to `results/verify.json` and CI gates on.

pub mod guidelines;
pub mod report;
pub mod suite;

pub use report::{GuidelineReport, VerifyReport, Violation};
pub use suite::{corner_configs, run_suite, run_suite_with, standard_presets, SuiteOpts};
