//! Structured guideline outcomes: violations, per-guideline reports, and
//! the aggregated suite report that `repro verify` serializes to
//! `results/verify.json` for the CI gate.

use serde::{Deserialize, Serialize};

/// One broken performance guideline: the configuration and message size
/// at which the observed cost exceeded (or, for equality oracles,
/// diverged from) the bound the guideline promises.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Violation {
    /// Stable guideline identifier (e.g. `msg-monotonicity`).
    pub guideline: String,
    /// Machine preset the check ran on.
    pub preset: String,
    /// Collective under test.
    pub coll: String,
    /// Stack / configuration label (a `HanConfig` display or stack name).
    pub config: String,
    /// Message size in bytes (0 when size-independent, e.g. Barrier).
    pub m: u64,
    /// The cost the guideline constrains, in picoseconds.
    pub observed_ps: u64,
    /// The bound it had to stay within, in picoseconds.
    pub bound_ps: u64,
    /// `(observed − bound) / bound`: how far past the bound we landed.
    pub rel_slack: f64,
    /// Human-readable explanation of the failed inequality.
    pub detail: String,
}

impl Violation {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        guideline: &str,
        preset: &str,
        coll: &str,
        config: impl Into<String>,
        m: u64,
        observed_ps: u64,
        bound_ps: u64,
        detail: impl Into<String>,
    ) -> Self {
        let rel_slack = (observed_ps as f64 - bound_ps as f64) / (bound_ps.max(1) as f64);
        Violation {
            guideline: guideline.to_string(),
            preset: preset.to_string(),
            coll: coll.to_string(),
            config: config.into(),
            m,
            observed_ps,
            bound_ps,
            rel_slack,
            detail: detail.into(),
        }
    }
}

/// The outcome of one guideline over one (or, after merging, several)
/// presets: how many inequalities were checked and which failed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuidelineReport {
    pub id: String,
    pub description: String,
    pub checks: u64,
    pub violations: Vec<Violation>,
}

impl GuidelineReport {
    pub fn new(id: &str, description: &str) -> Self {
        GuidelineReport {
            id: id.to_string(),
            description: description.to_string(),
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// Record one checked inequality.
    pub fn check(&mut self) {
        self.checks += 1;
    }

    pub fn violate(&mut self, v: Violation) {
        self.violations.push(v);
    }

    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fold another run of the same guideline (e.g. on another preset)
    /// into this report.
    pub fn merge(&mut self, other: GuidelineReport) {
        assert_eq!(self.id, other.id, "merging different guidelines");
        self.checks += other.checks;
        self.violations.extend(other.violations);
    }
}

/// The whole suite's outcome. `total_*` are denormalized so the CI gate
/// can assert on them without walking the guideline list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifyReport {
    pub presets: Vec<String>,
    pub guidelines: Vec<GuidelineReport>,
    pub total_checks: u64,
    pub total_violations: u64,
}

impl VerifyReport {
    pub fn new(presets: Vec<String>, guidelines: Vec<GuidelineReport>) -> Self {
        let total_checks = guidelines.iter().map(|g| g.checks).sum();
        let total_violations = guidelines.iter().map(|g| g.violations.len() as u64).sum();
        VerifyReport {
            presets,
            guidelines,
            total_checks,
            total_violations,
        }
    }

    pub fn passed(&self) -> bool {
        self.total_violations == 0
    }

    /// All violations across guidelines, for printing.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.guidelines.iter().flat_map(|g| g.violations.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_and_totals() {
        let v = Violation::new("g", "p", "bcast", "cfg", 1024, 150, 100, "150 > 100");
        assert!((v.rel_slack - 0.5).abs() < 1e-12);

        let mut a = GuidelineReport::new("g", "d");
        a.check();
        a.check();
        a.violate(v);
        let mut b = GuidelineReport::new("g", "d");
        b.check();
        a.merge(b);
        assert_eq!(a.checks, 3);
        assert!(!a.passed());

        let r = VerifyReport::new(vec!["p".into()], vec![a]);
        assert_eq!(r.total_checks, 3);
        assert_eq!(r.total_violations, 1);
        assert!(!r.passed());
        assert_eq!(r.violations().count(), 1);

        // JSON round-trip: the CI gate parses this file.
        let s = serde_json::to_string(&r).unwrap();
        let back: VerifyReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.total_violations, 1);
        assert_eq!(back.guidelines[0].violations[0].guideline, "g");
    }
}
