//! The full guideline suite: which guidelines run, over which
//! configurations and sizes, and how per-preset reports merge into the
//! `results/verify.json` artifact.

use crate::guidelines::{
    allreduce_composition, analytic_envelope, bcast_composition, bound_soundness,
    classic_agreement, delta_agreement, enumerate_candidates, msg_monotonicity, rank_monotonicity,
    reduce_vs_allreduce, serve_agreement, synth_bound_soundness, synth_dominance, table_dominance,
    task_model_accuracy,
};
use crate::report::{GuidelineReport, VerifyReport};
use han_colls::stack::Coll;
use han_colls::{InterAlg, InterModule, IntraModule, MpiStack, TunedOpenMpi};
use han_core::{Han, HanConfig};
use han_machine::{dgx_like, gpu_hier, mini, mini3, socketize, MachinePreset};
use han_tuner::{tune_with_opts, SearchSpace, Strategy, TuneOpts};

/// Suite knobs: sizes, the dominance search space, and tolerances. The
/// defaults are what `repro verify` and CI run; tests shrink them.
#[derive(Debug, Clone)]
pub struct SuiteOpts {
    /// Message sizes for the monotonicity / composition / model checks.
    pub sizes: Vec<u64>,
    /// Search space for the table-dominance and bound-soundness checks
    /// (every candidate in it gets simulated — keep it small).
    pub space: SearchSpace,
    /// Collectives for the monotonicity guidelines.
    pub colls: Vec<Coll>,
    /// Collectives tuned and dominated over `space`.
    pub dominance_colls: Vec<Coll>,
    /// Relative tolerance for the inequality guidelines.
    pub tol: f64,
    /// Relative error band for the task-based cost model.
    pub model_band: f64,
    /// Multiplicative envelope for the analytic models.
    pub envelope: f64,
}

impl Default for SuiteOpts {
    fn default() -> Self {
        SuiteOpts {
            sizes: vec![4 * 1024, 32 * 1024, 256 * 1024, 1 << 20, 4 << 20],
            space: SearchSpace {
                msg_sizes: vec![16 * 1024, 256 * 1024, 2 << 20],
                seg_sizes: vec![32 * 1024, 256 * 1024],
                inter: vec![
                    (InterModule::Libnbc, InterAlg::Binomial),
                    (InterModule::Adapt, InterAlg::Chain),
                ],
                intra: vec![IntraModule::Sm, IntraModule::Solo],
            },
            colls: Coll::ALL.to_vec(),
            dominance_colls: vec![Coll::Bcast, Coll::Allreduce, Coll::Reduce],
            tol: 0.02,
            model_band: 0.25,
            envelope: 64.0,
        }
    }
}

/// The configuration corners every guideline sweeps.
pub fn corner_configs() -> Vec<HanConfig> {
    let mut adapt = HanConfig::default()
        .with_fs(256 * 1024)
        .with_intra(IntraModule::Solo);
    adapt.imod = InterModule::Adapt;
    adapt.ibalg = InterAlg::Chain;
    adapt.iralg = InterAlg::Chain;
    adapt.ibs = Some(64 * 1024);
    adapt.irs = Some(32 * 1024);
    let mut libnbc = HanConfig::default().with_fs(16 * 1024);
    libnbc.imod = InterModule::Libnbc;
    vec![HanConfig::default(), libnbc, adapt]
}

/// The preset set `repro verify` and `hansim --verify` run by default:
/// a two-level mini machine, a three-level mini machine, a socketized
/// (NUMA-split) variant, and two heterogeneous GPU-era machines (per-level
/// link overrides and multi-rail striped NICs).
pub fn standard_presets() -> Vec<MachinePreset> {
    vec![
        mini(4, 4),
        mini3(2, 2, 2),
        socketize(mini(2, 4), 2, 1.5),
        dgx_like(2, 4),
        gpu_hier(&[2, 2, 2]),
    ]
}

/// Run the whole guideline catalog on one preset.
pub fn run_preset(preset: &MachinePreset, opts: &SuiteOpts) -> Vec<GuidelineReport> {
    let cfgs = corner_configs();
    let mut out: Vec<GuidelineReport> = Vec::new();
    let mut add = |r: GuidelineReport| match out.iter_mut().find(|g| g.id == r.id) {
        Some(g) => g.merge(r),
        None => out.push(r),
    };

    // Monotonicity, over the HAN corners and the fixed reference stack.
    for cfg in &cfgs {
        let stack = Han::with_config(*cfg);
        add(msg_monotonicity(
            preset,
            &stack,
            &format!("HAN {cfg}"),
            &opts.colls,
            &opts.sizes,
            opts.tol,
        ));
    }
    let tuned = TunedOpenMpi;
    add(msg_monotonicity(
        preset,
        &tuned,
        &tuned.name(),
        &opts.colls,
        &opts.sizes,
        opts.tol,
    ));
    add(rank_monotonicity(
        preset,
        &cfgs[0],
        &opts.colls,
        &opts.sizes,
        opts.tol,
    ));

    // Composition bounds.
    add(allreduce_composition(preset, &cfgs, &opts.sizes, opts.tol));
    add(bcast_composition(preset, &cfgs, &opts.sizes, opts.tol));
    add(reduce_vs_allreduce(preset, &cfgs, &opts.sizes, opts.tol));

    // Tuned-table dominance + bound soundness, sharing one candidate
    // enumeration. The table comes from a *pruned* exhaustive sweep so a
    // pruning bug that discards the optimum surfaces as a dominance
    // violation here.
    let tuned = tune_with_opts(
        preset,
        &opts.space,
        &opts.dominance_colls,
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    );
    let cands = enumerate_candidates(preset, &opts.space, &opts.dominance_colls);
    add(table_dominance(preset, &tuned.table, &cands));
    add(bound_soundness(preset, &cands));
    add(delta_agreement(preset, &cands));

    // Schedule synthesis over the same space: front winners must
    // dominate the menu, and the bound steering the search must be
    // admissible in both objectives.
    let synth = han_synth::synthesize(
        preset,
        &opts.space,
        &opts.dominance_colls,
        han_synth::SynthOpts::default(),
    );
    add(synth_dominance(preset, &synth));
    add(synth_bound_soundness(preset, &synth));

    // The same tuned table, served over loopback TCP by a live daemon:
    // answers must be bit-identical to direct lookups, before and after
    // an in-flight generation hot-swap.
    add(serve_agreement(preset, &tuned.table, &opts.dominance_colls));

    // Model-vs-simulation error bands.
    add(task_model_accuracy(
        preset,
        &cfgs,
        &opts.sizes,
        opts.model_band,
    ));
    add(analytic_envelope(preset, &cfgs, &opts.sizes, opts.envelope));

    // Differential oracle (two-level presets only; reports 0 checks
    // elsewhere).
    add(classic_agreement(preset, &cfgs, &opts.sizes));

    out
}

/// Run the suite over several presets and merge per-guideline.
pub fn run_suite_with(presets: &[MachinePreset], opts: &SuiteOpts) -> VerifyReport {
    let mut merged: Vec<GuidelineReport> = Vec::new();
    for preset in presets {
        for r in run_preset(preset, opts) {
            match merged.iter_mut().find(|g| g.id == r.id) {
                Some(g) => g.merge(r),
                None => merged.push(r),
            }
        }
    }
    VerifyReport::new(presets.iter().map(|p| p.name.to_string()).collect(), merged)
}

/// [`run_suite_with`] with default options — what `repro verify` runs.
pub fn run_suite(presets: &[MachinePreset]) -> VerifyReport {
    run_suite_with(presets, &SuiteOpts::default())
}
