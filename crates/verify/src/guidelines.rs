//! The executable performance-guideline catalog.
//!
//! Each function checks one machine-verifiable self-consistency property
//! of the simulated collectives (in the spirit of Hunold & Träff's
//! performance guidelines and PICO) and returns a [`GuidelineReport`]
//! with one [`Violation`] per broken inequality. Guidelines come in three
//! flavors:
//!
//! * **monotonicity** — cost must not shrink when the problem grows
//!   (message size, rank count), within a small relative tolerance;
//! * **composition / dominance bounds** — a specialized implementation
//!   must not lose to a composition of primitives it also ships
//!   (Allreduce vs Reduce+Bcast, Bcast vs Scatter+Allgather), a tuned
//!   table winner must not lose to any candidate of its own search
//!   space, and analytic lower bounds must stay below simulated cost;
//! * **differential oracles** — independent implementations of the same
//!   semantics must agree (generalized N-level builders vs the classic
//!   two-level oracles, exactly; cost models vs simulation, within an
//!   error band).
//!
//! Functions take `&dyn MpiStack` where it makes sense so tests can feed
//! deliberately broken stacks and watch the guideline catch them.

use crate::report::{GuidelineReport, Violation};
use han_colls::stack::{build_coll, time_coll, Coll, Unsupported};
use han_colls::MpiStack;
use han_core::composed::time_composed;
use han_core::{classic, Han, HanConfig};
use han_machine::{Machine, MachinePreset, Topology};
use han_mpi::{execute, Comm, DataType, ExecOpts, Executor, ProgramBuilder, Recording, ReduceOp};
use han_sim::Time;
use han_synth::SynthResult;
use han_tuner::model::predict;
use han_tuner::table::LookupTable;
use han_tuner::{candidate_costs, lower_bound, structural_fingerprint, SearchSpace, TaskBench};

/// Simulated candidate costs for every `(coll, m)` group of a search
/// space, shared by the dominance and bound-soundness guidelines so the
/// expensive unpruned enumeration runs once.
pub type CandidateSet = Vec<(Coll, u64, Vec<(HanConfig, Result<Time, Unsupported>)>)>;

/// Enumerate and simulate every candidate of `space` for each collective.
pub fn enumerate_candidates(
    preset: &MachinePreset,
    space: &SearchSpace,
    colls: &[Coll],
) -> CandidateSet {
    let mut out = Vec::new();
    for &coll in colls {
        for &m in &space.msg_sizes {
            out.push((coll, m, candidate_costs(preset, space, coll, m, false)));
        }
    }
    out
}

/// `msg-monotonicity`: for a fixed stack and collective, the simulated
/// cost must not decrease as the message size grows (within `tol`
/// relative slack). Collectives the stack does not support are skipped.
pub fn msg_monotonicity(
    preset: &MachinePreset,
    stack: &dyn MpiStack,
    label: &str,
    colls: &[Coll],
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "msg-monotonicity",
        "collective cost is non-decreasing in message size",
    );
    for &coll in colls {
        let costs: Vec<(u64, Time)> = sizes
            .iter()
            .filter_map(|&m| time_coll(stack, preset, coll, m, 0).ok().map(|t| (m, t)))
            .collect();
        for w in costs.windows(2) {
            let ((m1, t1), (m2, t2)) = (w[0], w[1]);
            g.check();
            if (t2.as_ps() as f64) < t1.as_ps() as f64 * (1.0 - tol) {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    coll.name(),
                    label,
                    m2,
                    t2.as_ps(),
                    t1.as_ps(),
                    format!("cost({m2}B) = {t2} < cost({m1}B) = {t1}"),
                ));
            }
        }
    }
    g
}

/// Clone `preset` with the outermost hierarchy extent replaced — the
/// machine family the rank-monotonicity guideline scales over.
pub fn with_nodes(preset: &MachinePreset, nodes: usize) -> MachinePreset {
    let mut levels = preset.topology.levels().to_vec();
    levels[0] = nodes;
    MachinePreset {
        name: preset.name,
        topology: Topology::from_levels(&levels),
        node: preset.node,
        net: preset.net,
        level_overrides: preset.level_overrides,
    }
}

/// `rank-monotonicity`: with the per-rank payload fixed, adding nodes to
/// the machine must not make the collective cheaper (within `tol`).
pub fn rank_monotonicity(
    preset: &MachinePreset,
    cfg: &HanConfig,
    colls: &[Coll],
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "rank-monotonicity",
        "collective cost is non-decreasing in node count",
    );
    let base = preset.topology.levels()[0];
    let chain: Vec<usize> = [1, 2, base]
        .into_iter()
        .filter(|&n| n <= base)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let presets: Vec<MachinePreset> = chain.iter().map(|&n| with_nodes(preset, n)).collect();
    let stack = Han::with_config(*cfg);
    for &coll in colls {
        for &m in sizes {
            let costs: Vec<(usize, Time)> = presets
                .iter()
                .zip(&chain)
                .filter_map(|(p, &n)| time_coll(&stack, p, coll, m, 0).ok().map(|t| (n, t)))
                .collect();
            for w in costs.windows(2) {
                let ((n1, t1), (n2, t2)) = (w[0], w[1]);
                g.check();
                if (t2.as_ps() as f64) < t1.as_ps() as f64 * (1.0 - tol) {
                    g.violate(Violation::new(
                        &g.id.clone(),
                        preset.name,
                        coll.name(),
                        format!("{cfg}"),
                        m,
                        t2.as_ps(),
                        t1.as_ps(),
                        format!("cost on {n2} nodes = {t2} < cost on {n1} nodes = {t1}"),
                    ));
                }
            }
        }
    }
    g
}

/// Shared body of the two composition guidelines. The inequality holds
/// for the *library*, not for every fixed configuration: a deliberately
/// bad corner (e.g. 16 KiB fragments on a 4 MiB payload) can legitimately
/// lose to a composition that does not fragment the same way, and an
/// autotuned library would never ship that corner. So both sides take
/// their best over the configuration corners — the tuned specialized
/// collective must not lose to the best composed mock-up (within `tol`).
fn composition(
    id: &str,
    description: &str,
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    coll: Coll,
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(id, description);
    for &m in sizes {
        let spec = cfgs
            .iter()
            .filter_map(|cfg| {
                let stack = Han::with_config(*cfg);
                time_coll(&stack, preset, coll, m, 0).ok().map(|t| (cfg, t))
            })
            .min_by_key(|&(_, t)| t);
        let composed = cfgs
            .iter()
            .filter_map(|cfg| time_composed(preset, cfg, coll, m).map(|t| (cfg, t)))
            .min_by_key(|&(_, t)| t);
        let (Some((cfg, t)), Some((ccfg, tc))) = (spec, composed) else {
            continue;
        };
        g.check();
        if t.as_ps() as f64 > tc.as_ps() as f64 * (1.0 + tol) {
            g.violate(Violation::new(
                id,
                preset.name,
                coll.name(),
                format!("{cfg}"),
                m,
                t.as_ps(),
                tc.as_ps(),
                format!(
                    "best specialized {} = {t} > best composed mock-up = {tc} (at {ccfg})",
                    coll.name()
                ),
            ));
        }
    }
    g
}

/// `allreduce-composition`: `Allreduce ≤ Reduce + Bcast` (the pipelined
/// builder must beat — or match — the serial composition).
pub fn allreduce_composition(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    composition(
        "allreduce-composition",
        "Allreduce never loses to Reduce followed by Bcast",
        preset,
        cfgs,
        Coll::Allreduce,
        sizes,
        tol,
    )
}

/// `bcast-composition`: `Bcast ≤ Scatter + Allgather`.
pub fn bcast_composition(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    composition(
        "bcast-composition",
        "Bcast never loses to Scatter followed by Allgather",
        preset,
        cfgs,
        Coll::Bcast,
        sizes,
        tol,
    )
}

/// `reduce-vs-allreduce`: `Reduce ≤ Allreduce` — an allreduce does
/// strictly more work (the same reduction plus a broadcast), so the
/// rooted reduction must not cost more (within `tol`).
pub fn reduce_vs_allreduce(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
    tol: f64,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "reduce-vs-allreduce",
        "Reduce never costs more than Allreduce of the same payload",
    );
    for cfg in cfgs {
        let stack = Han::with_config(*cfg);
        for &m in sizes {
            let (Ok(tr), Ok(ta)) = (
                time_coll(&stack, preset, Coll::Reduce, m, 0),
                time_coll(&stack, preset, Coll::Allreduce, m, 0),
            ) else {
                continue;
            };
            g.check();
            if tr.as_ps() as f64 > ta.as_ps() as f64 * (1.0 + tol) {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    "reduce",
                    format!("{cfg}"),
                    m,
                    tr.as_ps(),
                    ta.as_ps(),
                    format!("Reduce = {tr} > Allreduce = {ta}"),
                ));
            }
        }
    }
    g
}

/// `table-dominance`: for every `(coll, m)` the table tuned, its recorded
/// winner must (a) cost exactly what re-simulating the winning config
/// costs, and (b) beat or tie every candidate of the search space it was
/// tuned over. This pins bound-pruning soundness end-to-end: a pruned
/// sweep that wrongly discarded the optimum shows up here.
pub fn table_dominance(
    preset: &MachinePreset,
    table: &LookupTable,
    candidates: &CandidateSet,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "table-dominance",
        "a tuned table winner beats or ties every candidate in its own search space",
    );
    for (coll, m, cands) in candidates {
        let Some(entry) = table.get(*coll, *m) else {
            continue;
        };
        let mut winner_resimulated = false;
        for (cfg, r) in cands {
            let Ok(t) = r else { continue };
            g.check();
            if t.as_ps() < entry.cost_ps {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    coll.name(),
                    format!("{cfg}"),
                    *m,
                    entry.cost_ps,
                    t.as_ps(),
                    format!(
                        "table winner {} ({} ps) loses to candidate {cfg} ({} ps)",
                        entry.cfg,
                        entry.cost_ps,
                        t.as_ps()
                    ),
                ));
            }
            if *cfg == entry.cfg {
                winner_resimulated = true;
                g.check();
                if t.as_ps() != entry.cost_ps {
                    g.violate(Violation::new(
                        &g.id.clone(),
                        preset.name,
                        coll.name(),
                        format!("{cfg}"),
                        *m,
                        entry.cost_ps,
                        t.as_ps(),
                        format!(
                            "table records {} ps for {cfg} but re-simulation gives {} ps",
                            entry.cost_ps,
                            t.as_ps()
                        ),
                    ));
                }
            }
        }
        g.check();
        if !winner_resimulated {
            g.violate(Violation::new(
                &g.id.clone(),
                preset.name,
                coll.name(),
                format!("{}", entry.cfg),
                *m,
                entry.cost_ps,
                entry.cost_ps,
                "table winner config is not in the search space it was tuned over".to_string(),
            ));
        }
    }
    g
}

/// `delta-agreement`: re-simulating every candidate through the
/// checkpoint-replay path (`Executor::run_recorded` / `run_delta`) must
/// reproduce the candidate's independently simulated cost exactly — a
/// differential oracle with zero tolerance, since the tuner trusts delta
/// replay to stand in for full simulation bit-for-bit. The first sighting
/// of each program structure records the base; every later sighting
/// replays its unchanged prefix from a checkpoint.
pub fn delta_agreement(preset: &MachinePreset, candidates: &CandidateSet) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "delta-agreement",
        "delta re-simulation matches the full simulation exactly",
    );
    let mut machine = Machine::from_preset(preset);
    let mut exec = Executor::new();
    let mut bases: std::collections::HashMap<u64, Recording> = std::collections::HashMap::new();
    for (coll, m, cands) in candidates {
        for (cfg, r) in cands {
            let Ok(t_full) = r else { continue };
            let stack = Han::with_config(*cfg);
            let Ok(prog) = build_coll(&stack, preset, *coll, *m, 0) else {
                continue;
            };
            let opts = ExecOpts::timing(stack.flavor().p2p());
            let fp = structural_fingerprint(&prog);
            let t_delta = match bases
                .get(&fp)
                .and_then(|base| exec.run_delta(&mut machine, &prog, &opts, base))
            {
                Some(rep) => rep.makespan,
                None => {
                    let rec = exec.run_recorded(&mut machine, &prog, &opts);
                    let t = rec.report().makespan;
                    bases.insert(fp, rec);
                    t
                }
            };
            g.check();
            if t_delta != *t_full {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    coll.name(),
                    format!("{cfg}"),
                    *m,
                    t_delta.as_ps(),
                    t_full.as_ps(),
                    format!("delta replay gives {t_delta}, full simulation gives {t_full}"),
                ));
            }
        }
    }
    g
}

/// `bound-soundness`: the analytic lower bound of `han_tuner::bound` must
/// never exceed the simulated cost of the same candidate — exactly, with
/// zero tolerance, since pruning correctness depends on it.
pub fn bound_soundness(preset: &MachinePreset, candidates: &CandidateSet) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "bound-soundness",
        "the pruning lower bound never exceeds the simulated cost",
    );
    for (coll, m, cands) in candidates {
        for (cfg, r) in cands {
            let Ok(t) = r else { continue };
            let Some(lb) = lower_bound(preset, cfg, *coll, *m) else {
                continue;
            };
            g.check();
            if lb > *t {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    coll.name(),
                    format!("{cfg}"),
                    *m,
                    lb.as_ps(),
                    t.as_ps(),
                    format!("lower bound {lb} > simulated cost {t}"),
                ));
            }
        }
    }
    g
}

/// `synth-dominance`: the schedule-synthesis Pareto fronts must dominate
/// the Table-II menu — the front's bandwidth-optimal winner never costs
/// more than the best menu schedule of the same `(coll, m)` group, and
/// no simulated sample may strictly dominate a point the front kept.
/// Zero tolerance: the menu subset is always simulated exactly, so a
/// losing winner means the search dropped a schedule it had in hand.
pub fn synth_dominance(preset: &MachinePreset, synth: &SynthResult) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "synth-dominance",
        "synthesized front winners beat or tie the Table-II menu winner",
    );
    for f in &synth.fronts {
        let Some(w) = f.winner() else { continue };
        if let Some(mb) = f.menu_best_ps {
            g.check();
            if w.bw_ps > mb {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    f.coll.name(),
                    format!("{}", w.cfg),
                    f.m,
                    w.bw_ps,
                    mb,
                    format!(
                        "synthesized winner {} ({} ps) loses to menu best ({mb} ps)",
                        w.cfg, w.bw_ps
                    ),
                ));
            }
        }
        for p in &f.points {
            g.check();
            let dominated = synth.samples.iter().find(|s| {
                s.coll == f.coll
                    && s.m == f.m
                    && s.lat.as_ps() <= p.lat_ps
                    && s.bw.as_ps() <= p.bw_ps
                    && (s.lat.as_ps() < p.lat_ps || s.bw.as_ps() < p.bw_ps)
            });
            if let Some(s) = dominated {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    f.coll.name(),
                    format!("{}", p.cfg),
                    f.m,
                    p.bw_ps,
                    s.bw.as_ps(),
                    format!(
                        "front point {} (lat {}, bw {}) is dominated by sample {} (lat {}, bw {})",
                        p.cfg,
                        p.lat_ps,
                        p.bw_ps,
                        s.cfg,
                        s.lat.as_ps(),
                        s.bw.as_ps()
                    ),
                ));
            }
        }
    }
    g
}

/// `synth-bound-soundness`: the analytic lower bound used to steer the
/// synthesis search must stay below the simulated cost of every sample
/// it admitted — at the bandwidth size *and* at the latency probe size,
/// with zero tolerance, since the front-preserving prune is only exact
/// when the bounds are admissible in both objectives.
pub fn synth_bound_soundness(preset: &MachinePreset, synth: &SynthResult) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "synth-bound-soundness",
        "the synthesis lower bound never exceeds simulated cost in either objective",
    );
    for s in &synth.samples {
        for (what, bound, cost) in [("bw", s.bound_bw, s.bw), ("lat", s.bound_lat, s.lat)] {
            let Some(lb) = bound else { continue };
            g.check();
            if lb > cost {
                g.violate(Violation::new(
                    &g.id.clone(),
                    preset.name,
                    s.coll.name(),
                    format!("{}", s.cfg),
                    s.m,
                    lb.as_ps(),
                    cost.as_ps(),
                    format!("{what} bound {lb} > simulated cost {cost}"),
                ));
            }
        }
    }
    g
}

/// Sizes below this are latency-dominated single-fragment transfers where
/// the task model's pipeline assumptions do not apply; the band is only
/// claimed from here up.
pub const MODEL_BAND_MIN_BYTES: u64 = 16 * 1024;

/// `task-model-band`: the task-based cost model (paper eqs. 3/4) must
/// predict the simulated collective within `band` relative error — the
/// accuracy claim that justifies tuning from task benchmarks. Applies to
/// sizes ≥ [`MODEL_BAND_MIN_BYTES`]; the model is a fragment-pipeline
/// model and makes no claim for latency-dominated tiny messages.
pub fn task_model_accuracy(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
    band: f64,
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "task-model-band",
        "the task-based cost model tracks simulation within the error band",
    );
    let mut tb = TaskBench::new(preset);
    for cfg in cfgs {
        let stack = Han::with_config(*cfg);
        for &coll in &[Coll::Bcast, Coll::Allreduce] {
            for &m in sizes.iter().filter(|&&m| m >= MODEL_BAND_MIN_BYTES) {
                let Ok(pred) = predict(&mut tb, cfg, coll, m) else {
                    continue;
                };
                let Ok(sim) = time_coll(&stack, preset, coll, m, 0) else {
                    continue;
                };
                g.check();
                let err =
                    (pred.as_ps() as f64 - sim.as_ps() as f64).abs() / (sim.as_ps().max(1) as f64);
                if err > band {
                    g.violate(Violation::new(
                        &g.id.clone(),
                        preset.name,
                        coll.name(),
                        format!("{cfg}"),
                        m,
                        pred.as_ps(),
                        sim.as_ps(),
                        format!(
                            "task model predicts {pred}, simulation gives {sim} \
                             ({:.1}% > {:.1}% band)",
                            err * 100.0,
                            band * 100.0
                        ),
                    ));
                }
            }
        }
    }
    g
}

/// `analytic-envelope`: the conventional analytic models (Hockney, LogP,
/// LogGP, PLogP, perfect-overlap) are *knowingly* inaccurate on
/// hierarchical machines — the paper's motivation — but they must stay
/// positive, finite, and within a factor-`envelope` band of simulation.
/// A model drifting outside the envelope means the closed-form parameters
/// and the simulated machine no longer describe the same hardware.
pub fn analytic_envelope(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
    envelope: f64,
) -> GuidelineReport {
    use han_tuner::analytic::{predict_bcast, AnalyticModel};
    let mut g = GuidelineReport::new(
        "analytic-envelope",
        "analytic model predictions stay within a bounded factor of simulation",
    );
    for cfg in cfgs {
        let stack = Han::with_config(*cfg);
        for &m in sizes {
            let Ok(sim) = time_coll(&stack, preset, Coll::Bcast, m, 0) else {
                continue;
            };
            for model in AnalyticModel::ALL {
                let pred = predict_bcast(model, preset, cfg, m);
                g.check();
                let ratio = pred.as_ps() as f64 / sim.as_ps().max(1) as f64;
                if pred.as_ps() == 0 || ratio > envelope || ratio < 1.0 / envelope {
                    g.violate(Violation::new(
                        &g.id.clone(),
                        preset.name,
                        Coll::Bcast.name(),
                        format!("{} / {cfg}", model.name()),
                        m,
                        pred.as_ps(),
                        sim.as_ps(),
                        format!(
                            "{} predicts {pred} vs simulated {sim} \
                             (ratio {ratio:.2} outside ±{envelope}×)",
                            model.name()
                        ),
                    ));
                }
            }
        }
    }
    g
}

/// Makespan of a program built by `f` on a fresh machine.
fn makespan(preset: &MachinePreset, f: impl FnOnce(&mut ProgramBuilder, &Comm)) -> Time {
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    f(&mut b, &comm);
    let prog = b.build();
    let mut m = han_machine::Machine::from_preset(preset);
    let opts = ExecOpts::timing(han_machine::Flavor::OpenMpi.p2p());
    execute(&mut m, &prog, &opts).makespan
}

/// `classic-agreement`: on two-level machines the generalized N-level
/// builders must agree with the pre-refactor classic oracles to the
/// picosecond — a differential oracle with zero tolerance. Presets with
/// more than two levels have no classic counterpart and report zero
/// checks.
pub fn classic_agreement(
    preset: &MachinePreset,
    cfgs: &[HanConfig],
    sizes: &[u64],
) -> GuidelineReport {
    let mut g = GuidelineReport::new(
        "classic-agreement",
        "generalized builders match the classic two-level oracles exactly",
    );
    if preset.topology.depth() != 2 {
        return g;
    }
    let n = preset.topology.world_size();
    for cfg in cfgs {
        let stack = Han::with_config(*cfg);
        for &m in sizes {
            let pairs: [(Coll, Time); 3] = [
                (Coll::Bcast, {
                    makespan(preset, |b, comm| {
                        let bufs = b.alloc_all(m);
                        let mut cx = han_colls::stack::BuildCtx::new(b, preset);
                        classic::build_bcast(
                            &mut cx,
                            cfg,
                            comm,
                            0,
                            &bufs,
                            &han_colls::Frontier::empty(n),
                        );
                    })
                }),
                (Coll::Allreduce, {
                    makespan(preset, |b, comm| {
                        let bufs = b.alloc_all(m);
                        let mut cx = han_colls::stack::BuildCtx::new(b, preset);
                        classic::build_allreduce(
                            &mut cx,
                            cfg,
                            comm,
                            &bufs,
                            ReduceOp::Sum,
                            DataType::Float32,
                            &han_colls::Frontier::empty(n),
                        );
                    })
                }),
                (Coll::Reduce, {
                    makespan(preset, |b, comm| {
                        let bufs = b.alloc_all(m);
                        let mut cx = han_colls::stack::BuildCtx::new(b, preset);
                        classic::build_reduce(
                            &mut cx,
                            cfg,
                            comm,
                            0,
                            &bufs,
                            ReduceOp::Sum,
                            DataType::Float32,
                            &han_colls::Frontier::empty(n),
                        );
                    })
                }),
            ];
            for (coll, t_classic) in pairs {
                let Ok(t_new) = time_coll(&stack, preset, coll, m, 0) else {
                    continue;
                };
                g.check();
                if t_new != t_classic {
                    g.violate(Violation::new(
                        &g.id.clone(),
                        preset.name,
                        coll.name(),
                        format!("{cfg}"),
                        m,
                        t_new.as_ps(),
                        t_classic.as_ps(),
                        format!("generalized builder {t_new} != classic oracle {t_classic}"),
                    ));
                }
            }
        }
    }
    g
}

/// `serve-agreement`: answers served by a live `han-serve` daemon (over
/// real loopback TCP, through the caching client) must be bit-identical
/// to direct [`LookupTable::nearest`] lookups on the same table — no
/// tolerance. The whole probe set runs twice: once against the first
/// published generation, then again after a second generation hot-swaps
/// in mid-flight, so the epoch-pointer swap and the client's
/// generation-flush path are both on the hook for exactness.
pub fn serve_agreement(
    preset: &MachinePreset,
    table: &LookupTable,
    colls: &[Coll],
) -> GuidelineReport {
    serve_agreement_against(preset, table, table, colls)
}

/// [`serve_agreement`] with the served table decoupled from the direct
/// one — the test hook that lets `guideline_catches.rs` prove a daemon
/// serving a tampered table is flagged.
pub fn serve_agreement_against(
    preset: &MachinePreset,
    direct: &LookupTable,
    served: &LookupTable,
    colls: &[Coll],
) -> GuidelineReport {
    let table = direct;
    let mut g = GuidelineReport::new(
        "serve-agreement",
        "han-serve daemon answers are bit-identical to direct table lookups, across hot-swaps",
    );
    let fp = han_tuner::preset_fingerprint(preset);
    let store = std::sync::Arc::new(han_serve::TableStore::new());
    store.publish(fp, served.clone());
    let mut server = match han_serve::serve("127.0.0.1:0", std::sync::Arc::clone(&store)) {
        Ok(s) => s,
        Err(e) => {
            g.check();
            g.violate(Violation::new(
                &g.id.clone(),
                preset.name,
                "-",
                "han-serve",
                0,
                0,
                0,
                format!("cannot bind loopback daemon: {e}"),
            ));
            return g;
        }
    };
    let mut client = match han_serve::Client::connect(server.addr()) {
        Ok(c) => c,
        Err(e) => {
            g.check();
            g.violate(Violation::new(
                &g.id.clone(),
                preset.name,
                "-",
                "han-serve",
                0,
                0,
                0,
                format!("cannot connect to daemon: {e}"),
            ));
            return g;
        }
    };
    for generation in 1..=2u64 {
        if generation == 2 {
            // Hot-swap a second generation in while the client is live,
            // and flush its buckets so every probe below round-trips.
            store.publish(fp, served.clone());
            client.flush_cache();
        }
        for &coll in colls {
            let samples = table.sampled_sizes(coll);
            // Probe each sample, its neighbourhood, the geometric
            // midpoints where `nearest` flips winners, and the extremes.
            let mut probes: Vec<u64> = vec![1, 3, (1 << 30) + 7];
            for &s in &samples {
                probes.extend([s.saturating_sub(1), s, s + 1]);
            }
            for w in samples.windows(2) {
                let mid = ((w[0] as f64) * (w[1] as f64)).sqrt() as u64;
                probes.extend([mid.saturating_sub(1), mid, mid + 1]);
            }
            for m in probes {
                let Some(e) = table.nearest(coll, m) else {
                    continue;
                };
                g.check();
                match client.resolve(han_serve::Query {
                    fingerprint: fp,
                    coll,
                    m,
                }) {
                    Ok(a) => {
                        if a.cfg != e.cfg
                            || a.sample != e.m
                            || a.cost_ps != e.cost_ps
                            || a.generation != generation
                        {
                            g.violate(Violation::new(
                                &g.id.clone(),
                                preset.name,
                                coll.name(),
                                format!("{}", e.cfg),
                                m,
                                a.cost_ps,
                                e.cost_ps,
                                format!(
                                    "served answer (cfg {}, sample {}, gen {}) disagrees with \
                                     direct lookup (cfg {}, sample {}, gen {generation})",
                                    a.cfg, a.sample, a.generation, e.cfg, e.m
                                ),
                            ));
                        }
                    }
                    Err(err) => {
                        g.violate(Violation::new(
                            &g.id.clone(),
                            preset.name,
                            coll.name(),
                            format!("{}", e.cfg),
                            m,
                            0,
                            e.cost_ps,
                            format!("daemon failed to resolve: {err}"),
                        ));
                    }
                }
            }
        }
    }
    server.shutdown();
    g
}
