//! Property-based tests over the raw collective algorithms: every
//! algorithm must deliver/reduce exact data for arbitrary communicator
//! shapes, roots, message sizes and segmentations — including subset
//! communicators with non-contiguous ranks.

// Verification loops index several per-rank buffers by rank on purpose.
#![allow(clippy::needless_range_loop)]

use han_colls::p2p::{
    dissemination_barrier, rabenseifner_allreduce, rd_allreduce, ring_allgather, tree_bcast,
    tree_reduce,
};
use han_colls::{Frontier, TreeShape};
use han_machine::{mini, Flavor, Machine};
use han_mpi::{execute_seeded, BufRange, Comm, DataType, ExecOpts, ProgramBuilder, ReduceOp};
use proptest::prelude::*;

fn arb_shape() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::Flat),
        Just(TreeShape::Chain),
        Just(TreeShape::Binary),
        Just(TreeShape::Binomial),
        (2u32..5).prop_map(TreeShape::Kary),
    ]
}

/// A random subset communicator over a 4x4 machine (>= 2 members).
fn arb_subset_comm() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(any::<bool>(), 16).prop_filter_map("at least two members", |mask| {
        let ranks: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i)
            .collect();
        (ranks.len() >= 2).then_some(ranks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_bcast_delivers_on_subset_comms(
        ranks in arb_subset_comm(),
        shape in arb_shape(),
        bytes in 1u64..2000,
        seg in prop_oneof![Just(None), (8u64..512).prop_map(Some)],
        root_seed in 0usize..16,
    ) {
        let preset = mini(4, 4);
        let comm = Comm::from_ranks(ranks.clone());
        let n = comm.size();
        let root = root_seed % n;
        let mut b = ProgramBuilder::new(16);
        let bufs: Vec<BufRange> = (0..n).map(|l| b.alloc(comm.world_rank(l), bytes)).collect();
        tree_bcast(&mut b, &comm, root, &bufs, &Frontier::empty(n), shape, seg);
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 247) as u8).collect();
        let root_buf = bufs[root];
        let root_world = comm.world_rank(root);
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| mm.write(root_world, root_buf, &payload),
        );
        for l in 0..n {
            prop_assert_eq!(mem.read(comm.world_rank(l), bufs[l]), payload.as_slice());
        }
    }

    #[test]
    fn tree_reduce_sums_on_subset_comms(
        ranks in arb_subset_comm(),
        shape in arb_shape(),
        nelem in 1usize..64,
        seg in prop_oneof![Just(None), (8u64..256).prop_map(|s| Some(s / 4 * 4))],
        root_seed in 0usize..16,
    ) {
        let seg = seg.filter(|&s| s >= 4);
        let preset = mini(4, 4);
        let comm = Comm::from_ranks(ranks.clone());
        let n = comm.size();
        let root = root_seed % n;
        let bytes = (nelem * 4) as u64;
        let mut b = ProgramBuilder::new(16);
        let bufs: Vec<BufRange> = (0..n).map(|l| b.alloc(comm.world_rank(l), bytes)).collect();
        tree_reduce(
            &mut b, &comm, root, &bufs, &Frontier::empty(n), shape, seg,
            ReduceOp::Sum, DataType::Int32, true,
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let comm2 = comm.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for l in 0..n {
                    let vals: Vec<u8> = (0..nelem)
                        .flat_map(|i| ((l * 17 + i) as i32).to_le_bytes())
                        .collect();
                    mm.write(comm2.world_rank(l), bufs2[l], &vals);
                }
            },
        );
        let expect: Vec<u8> = (0..nelem)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|l| (l * 17 + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        prop_assert_eq!(mem.read(comm.world_rank(root), bufs[root]), expect.as_slice());
    }

    #[test]
    fn allreduce_variants_agree(
        ranks in arb_subset_comm(),
        nelem in 1usize..64,
    ) {
        let preset = mini(4, 4);
        let comm = Comm::from_ranks(ranks.clone());
        let n = comm.size();
        let bytes = (nelem * 4) as u64;
        let expect: Vec<u8> = (0..nelem)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|l| (l * 5 + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        for which in 0..2 {
            let mut b = ProgramBuilder::new(16);
            let bufs: Vec<BufRange> =
                (0..n).map(|l| b.alloc(comm.world_rank(l), bytes)).collect();
            if which == 0 {
                rd_allreduce(&mut b, &comm, &bufs, &Frontier::empty(n), ReduceOp::Sum, DataType::Int32, true);
            } else {
                rabenseifner_allreduce(&mut b, &comm, &bufs, &Frontier::empty(n), ReduceOp::Sum, DataType::Int32, true);
            }
            let prog = b.build();
            let mut m = Machine::from_preset(&preset);
            let bufs2 = bufs.clone();
            let comm2 = comm.clone();
            let (_, mem) = execute_seeded(
                &mut m,
                &prog,
                &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
                |mm| {
                    for l in 0..n {
                        let vals: Vec<u8> = (0..nelem)
                            .flat_map(|i| ((l * 5 + i) as i32).to_le_bytes())
                            .collect();
                        mm.write(comm2.world_rank(l), bufs2[l], &vals);
                    }
                },
            );
            for l in 0..n {
                prop_assert_eq!(
                    mem.read(comm.world_rank(l), bufs[l]),
                    expect.as_slice(),
                    "variant {} local {}", which, l
                );
            }
        }
    }

    #[test]
    fn allgather_delivers_on_subset_comms(
        ranks in arb_subset_comm(),
        block in 1u64..64,
    ) {
        let preset = mini(4, 4);
        let comm = Comm::from_ranks(ranks.clone());
        let n = comm.size();
        let mut b = ProgramBuilder::new(16);
        let bufs: Vec<BufRange> = (0..n)
            .map(|l| b.alloc(comm.world_rank(l), block * n as u64))
            .collect();
        ring_allgather(&mut b, &comm, &bufs, block, &Frontier::empty(n));
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let comm2 = comm.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for l in 0..n {
                    let mine = bufs2[l].slice(l as u64 * block, block);
                    mm.write(comm2.world_rank(l), mine, &vec![(l + 1) as u8; block as usize]);
                }
            },
        );
        let expect: Vec<u8> = (0..n)
            .flat_map(|l| vec![(l + 1) as u8; block as usize])
            .collect();
        for l in 0..n {
            prop_assert_eq!(mem.read(comm.world_rank(l), bufs[l]), expect.as_slice());
        }
    }

    #[test]
    fn barrier_is_a_synchronization_point(
        ranks in arb_subset_comm(),
        skew_seed in 0u64..1000,
    ) {
        let preset = mini(4, 4);
        let comm = Comm::from_ranks(ranks.clone());
        let n = comm.size();
        let mut b = ProgramBuilder::new(16);
        let f = dissemination_barrier(&mut b, &comm, &Frontier::empty(n));
        let exits: Vec<_> = (0..n).map(|l| f.get(l).to_vec()).collect();
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let mut skews = vec![han_sim::Time::ZERO; 16];
        for (i, &w) in ranks.iter().enumerate() {
            skews[w] = han_sim::Time::from_us((skew_seed * (i as u64 + 3)) % 700);
        }
        let max_member_skew = ranks.iter().map(|&w| skews[w]).max().unwrap();
        let rep = han_mpi::execute(
            &mut m,
            &prog,
            &ExecOpts::timing(Flavor::OpenMpi.p2p()).with_skew(skews),
        );
        for (l, ops) in exits.iter().enumerate() {
            // A rank exits the barrier when ALL its frontier ops complete
            // (individual eager sends may finish locally earlier).
            let exit = ops.iter().map(|&op| rep.finish(op)).max().unwrap();
            prop_assert!(
                exit >= max_member_skew,
                "local {} exited at {} before last arrival {}",
                l, exit, max_member_skew
            );
        }
    }
}
