//! Thread-safe store of interned program templates.
//!
//! The sweep's hot path builds the same collective shape at many message
//! sizes. A [`TemplateStore`] interns one [`ProgramTemplate`] per
//! stack-provided key ([`MpiStack::template_key`]) and serves subsequent
//! sizes by affine re-stamping instead of a cold DAG build.
//!
//! Entry lifecycle: the first build under a key is stored as a *probe*;
//! the second (at a distinct size) attempts [`ProgramTemplate::learn`] —
//! exact structural equality plus exact integer slopes — and the entry
//! becomes *ready* on success or *unshareable* (permanent cold-build
//! fallback) on failure. In debug builds, the first specialization from
//! every ready template is additionally verified bit-identical against a
//! cold build. Cold builds always happen outside the store lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use han_machine::{Machine, MachinePreset};
use han_mpi::{execute, ExecOpts, Program, ProgramTemplate};
use han_sim::Time;

use crate::stack::{build_coll, Coll, MpiStack, Unsupported};

#[derive(Debug)]
enum Entry {
    /// One cold build seen; waiting for a second distinct size to learn.
    Probe { m: u64, prog: Arc<Program> },
    /// Learned template; `verified` is set once a debug-build cross-check
    /// against a cold build has run.
    Ready {
        tpl: Arc<ProgramTemplate>,
        verified: bool,
    },
    /// Learning failed (shape or non-affine scalar mismatch): this key
    /// permanently falls back to cold builds.
    Unshareable,
}

/// Cumulative store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateStats {
    /// Builds served by template specialization.
    pub hits: u64,
    /// Cold builds (probes, learning builds, unshareable/untemplated
    /// fallbacks).
    pub misses: u64,
}

/// A thread-safe map from template keys to interned program templates.
#[derive(Debug, Default)]
pub struct TemplateStore {
    map: Mutex<HashMap<u64, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

enum Plan {
    Specialize {
        tpl: Arc<ProgramTemplate>,
        verify: bool,
    },
    Learn {
        m1: u64,
        p1: Arc<Program>,
    },
    Probe,
    Cold,
}

impl TemplateStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build `coll` at `bytes` through the template store: a cold
    /// `build_coll` on the first sightings of a key, an affine
    /// re-specialization afterwards — bit-identical either way.
    pub fn build(
        &self,
        stack: &dyn MpiStack,
        preset: &MachinePreset,
        coll: Coll,
        bytes: u64,
        root: usize,
    ) -> Result<Program, Unsupported> {
        let mut out = Program::default();
        self.build_into(stack, preset, coll, bytes, root, &mut out)?;
        Ok(out)
    }

    /// [`Self::build`] into a caller-owned scratch program. On the
    /// specialization fast path this reuses the scratch's allocations
    /// (op vector, per-op dependency lists, messages), so a sweep worker
    /// that keeps one scratch across candidates re-stamps with no heap
    /// traffic at all. The scratch's prior contents are irrelevant.
    ///
    /// Returns the stack's template key for this build (`None` when the
    /// stack declines templating). Candidates sharing a key normally share
    /// a DAG *structure* — the precondition for delta re-simulation — so
    /// the tuner uses the key as a cheap structural hint for prefix
    /// detection. It is a hint only (an unshareable key can cover distinct
    /// shapes); the delta executor re-verifies structural equality exactly
    /// before replaying.
    pub fn build_into(
        &self,
        stack: &dyn MpiStack,
        preset: &MachinePreset,
        coll: Coll,
        bytes: u64,
        root: usize,
        out: &mut Program,
    ) -> Result<Option<u64>, Unsupported> {
        let Some(key) = stack.template_key(preset, coll, bytes, root) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            *out = build_coll(stack, preset, coll, bytes, root)?;
            return Ok(None);
        };
        let plan = {
            let mut map = self.map.lock().unwrap();
            match map.get_mut(&key) {
                Some(Entry::Ready { tpl, verified }) => {
                    let verify = cfg!(debug_assertions) && !*verified;
                    *verified = true;
                    Plan::Specialize {
                        tpl: Arc::clone(tpl),
                        verify,
                    }
                }
                Some(Entry::Unshareable) => Plan::Cold,
                Some(Entry::Probe { m, prog }) => {
                    if *m == bytes {
                        // Same size as the stored probe: its program *is*
                        // the cold-build result.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        out.clone_from(prog);
                        return Ok(Some(key));
                    }
                    Plan::Learn {
                        m1: *m,
                        p1: Arc::clone(prog),
                    }
                }
                None => Plan::Probe,
            }
        };
        match plan {
            Plan::Specialize { tpl, verify } => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                tpl.specialize_into(bytes, out);
                if verify {
                    let cold = build_coll(stack, preset, coll, bytes, root)?;
                    assert_eq!(
                        *out,
                        cold,
                        "template specialization diverged from cold build \
                         ({} {} bytes={bytes} root={root})",
                        stack.name(),
                        coll.name()
                    );
                }
                Ok(Some(key))
            }
            Plan::Cold => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                *out = build_coll(stack, preset, coll, bytes, root)?;
                Ok(Some(key))
            }
            Plan::Probe => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let prog = Arc::new(build_coll(stack, preset, coll, bytes, root)?);
                let mut map = self.map.lock().unwrap();
                map.entry(key).or_insert_with(|| Entry::Probe {
                    m: bytes,
                    prog: Arc::clone(&prog),
                });
                drop(map);
                out.clone_from(&prog);
                Ok(Some(key))
            }
            Plan::Learn { m1, p1 } => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let prog = build_coll(stack, preset, coll, bytes, root)?;
                let entry = match ProgramTemplate::learn(m1, &p1, bytes, &prog) {
                    Some(tpl) => Entry::Ready {
                        tpl: Arc::new(tpl),
                        verified: false,
                    },
                    None => Entry::Unshareable,
                };
                self.map.lock().unwrap().insert(key, entry);
                *out = prog;
                Ok(Some(key))
            }
        }
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> TemplateStats {
        TemplateStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// [`crate::stack::time_coll_on`], but acquiring the program through a
/// template store. `scratch` is reused across calls (see
/// [`TemplateStore::build_into`]) — pass one per worker.
#[allow(clippy::too_many_arguments)]
pub fn time_coll_templated(
    stack: &dyn MpiStack,
    store: &TemplateStore,
    machine: &mut Machine,
    preset: &MachinePreset,
    coll: Coll,
    bytes: u64,
    root: usize,
    scratch: &mut Program,
) -> Result<Time, Unsupported> {
    store.build_into(stack, preset, coll, bytes, root, scratch)?;
    let opts = ExecOpts::timing(stack.flavor().p2p());
    Ok(execute(machine, scratch, &opts).makespan)
}
