//! Point-to-point collective algorithms.
//!
//! Compiles classic collective algorithms into op-DAG programs over a
//! communicator: segmented tree broadcast/reduce (the building blocks the
//! ADAPT and Libnbc submodules expose), recursive-doubling and Rabenseifner
//! allreduce (what `coll_tuned` and the vendor stacks use), ring allgather
//! and linear gather/scatter.
//!
//! All functions take and return [`Frontier`]s in *communicator-local*
//! indexing, so they compose freely — HAN's hierarchical collectives are
//! literally frontier-chained calls into this module and the shared-memory
//! modules.

use crate::frontier::Frontier;
use crate::tree::{children, TreeShape};
use han_mpi::{BufRange, Comm, DataType, OpKind, ProgramBuilder, ReduceOp};

/// Segmented tree broadcast from comm-local `root`.
///
/// `bufs[l]` is local rank `l`'s buffer for this message (same length on
/// all ranks). `seg` is the *internal* segmentation (ADAPT's `ibs`);
/// `None` sends the whole message as one unit (Libnbc style).
pub fn tree_bcast(
    b: &mut ProgramBuilder,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
    shape: TreeShape,
    seg: Option<u64>,
) -> Frontier {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    assert_eq!(deps.len(), n);
    if n == 1 {
        return deps.clone();
    }
    let msg = bufs[0].len;
    let seg = seg.unwrap_or(msg).max(1);
    let nseg = bufs[0].segments(seg).len();
    let local = |v: usize| (v + root) % n;

    // recv_done[v][s]: completion of segment s at vrank v (root: None).
    let mut recv_done: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); n];
    let mut out = Frontier::empty(n);

    for v in 0..n {
        let lv = local(v);
        let wv = comm.world_rank(lv);
        let kids = children(shape, n, v);
        let segs_v = bufs[lv].segments(seg);
        for &c in &kids {
            let lc = local(c);
            let wc = comm.world_rank(lc);
            let segs_c = bufs[lc].segments(seg);
            for s in 0..nseg {
                let mut sdeps: Vec<han_mpi::OpId> = deps.get(lv).to_vec();
                if v != 0 {
                    sdeps.push(recv_done[v][s]);
                }
                let rdeps = deps.get(lc).to_vec();
                let (snd, rcv) = b.send_recv(
                    wv,
                    wc,
                    segs_v[s].len,
                    Some(segs_v[s]),
                    Some(segs_c[s]),
                    &sdeps,
                    &rdeps,
                );
                if recv_done[c].is_empty() {
                    recv_done[c] = Vec::with_capacity(nseg);
                }
                recv_done[c].push(rcv);
                out.push(lv, snd);
            }
        }
        if kids.is_empty() && v != 0 {
            // Leaf: completion is all its receives.
            for &rcv in &recv_done[v] {
                out.push(lv, rcv);
            }
        } else if v != 0 {
            // Interior ranks' sends already depend on their receives, but
            // the *last* segment's receive may finish after the last send
            // is posted; include receives so the frontier is complete.
            for &rcv in &recv_done[v] {
                out.push(lv, rcv);
            }
        }
    }
    // The root's frontier is its sends (already pushed). Ranks with no ops
    // (n==1 handled above) cannot occur: every non-root receives.
    out
}

/// Segmented tree reduce to comm-local `root`, in place: on completion,
/// `bufs[root]` holds `op` over all ranks' initial buffers; interior
/// ranks' buffers are clobbered with partial results.
#[allow(clippy::too_many_arguments)]
pub fn tree_reduce(
    b: &mut ProgramBuilder,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
    shape: TreeShape,
    seg: Option<u64>,
    op: ReduceOp,
    dtype: DataType,
    vectorized: bool,
) -> Frontier {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return deps.clone();
    }
    let msg = bufs[0].len;
    let seg_sz = seg.unwrap_or(msg).max(1);
    let nseg = bufs[0].segments(seg_sz).len();
    let local = |v: usize| (v + root) % n;

    // reduce_done[v][s]: ops that must complete before vrank v's segment s
    // is fully reduced locally (its own children merged in).
    let mut reduce_done: Vec<Vec<Vec<han_mpi::OpId>>> = vec![vec![Vec::new(); nseg]; n];
    let mut out = Frontier::empty(n);

    // Process parents in descending vrank order so a child's local
    // reductions exist before the edge to its parent is created.
    for v in (0..n).rev() {
        let lv = local(v);
        let wv = comm.world_rank(lv);
        let segs_v = bufs[lv].segments(seg_sz);
        for &c in &children(shape, n, v) {
            let lc = local(c);
            let wc = comm.world_rank(lc);
            let segs_c = bufs[lc].segments(seg_sz);
            // One scratch slot per (parent, child), reused across segments.
            let scratch = b.alloc(wv, seg_sz.min(msg.max(1)));
            let mut prev_reduce: Option<han_mpi::OpId> = None;
            for s in 0..nseg {
                // Child's send: its own subtree must be merged first.
                let mut sdeps: Vec<han_mpi::OpId> = deps.get(lc).to_vec();
                sdeps.extend_from_slice(&reduce_done[c][s]);
                // Parent's recv: scratch slot must be free.
                let mut rdeps: Vec<han_mpi::OpId> = deps.get(lv).to_vec();
                if let Some(pr) = prev_reduce {
                    rdeps.push(pr);
                }
                let bytes = segs_c[s].len;
                let slot = scratch.slice(0, bytes);
                let (snd, rcv) =
                    b.send_recv(wc, wv, bytes, Some(segs_c[s]), Some(slot), &sdeps, &rdeps);
                let red = b.op(
                    wv,
                    OpKind::Reduce {
                        bytes,
                        vectorized,
                        op,
                        dtype,
                        src: Some(slot),
                        dst: Some(segs_v[s]),
                    },
                    &[rcv],
                );
                prev_reduce = Some(red);
                reduce_done[v][s].push(red);
                out.push(lc, snd);
            }
        }
        if v != 0 && children(shape, n, v).is_empty() {
            // Leaf completion = its sends, pushed at the parent's turn
            // (which happened earlier in this reversed loop). Nothing to do.
        }
    }
    // Root's completion: all its reduces (or, for a root with no children
    // in a 1-rank tree, handled above).
    for s in 0..nseg {
        for &r in &reduce_done[0][s] {
            out.push(local(0), r);
        }
    }
    out
}

/// Largest power of two `<= n`.
fn pow2_floor(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

/// Recursive-doubling allreduce (in place over `bufs`). The classic
/// latency-optimal algorithm `coll_tuned` uses for small messages; handles
/// non-power-of-two sizes with the standard fold/unfold pre/post phases.
pub fn rd_allreduce(
    b: &mut ProgramBuilder,
    comm: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
    vectorized: bool,
) -> Frontier {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return deps.clone();
    }
    let msg = bufs[0].len;
    let p2 = pow2_floor(n);
    let rem = n - p2;

    // Per-local-rank frontier as the algorithm progresses.
    let mut cur: Vec<Vec<han_mpi::OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    let mut scratch: Vec<BufRange> = (0..n)
        .map(|l| b.alloc(comm.world_rank(l), msg.max(1)))
        .collect();
    for s in &mut scratch {
        *s = s.slice(0, msg);
    }

    // Fold: the first 2*rem ranks pair up (even donates to odd).
    for i in 0..rem {
        let (even, odd) = (2 * i, 2 * i + 1);
        let (we, wo) = (comm.world_rank(even), comm.world_rank(odd));
        let (snd, rcv) = b.send_recv(
            we,
            wo,
            msg,
            Some(bufs[even]),
            Some(scratch[odd]),
            &cur[even],
            &cur[odd],
        );
        let red = b.op(
            wo,
            OpKind::Reduce {
                bytes: msg,
                vectorized,
                op,
                dtype,
                src: Some(scratch[odd]),
                dst: Some(bufs[odd]),
            },
            &[rcv],
        );
        cur[even] = vec![snd];
        cur[odd] = vec![red];
    }

    // Active set: odd ranks of the folded pairs + ranks >= 2*rem.
    // newrank -> local rank.
    let active: Vec<usize> = (0..rem).map(|i| 2 * i + 1).chain(2 * rem..n).collect();
    debug_assert_eq!(active.len(), p2);

    let mut dist = 1;
    while dist < p2 {
        let mut next: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); p2];
        for (nr, &l) in active.iter().enumerate() {
            let pnr = nr ^ dist;
            if pnr < nr {
                continue; // handled when we visited pnr (create both directions there)
            }
            let pl = active[pnr];
            let (wl, wp) = (comm.world_rank(l), comm.world_rank(pl));
            // l -> pl
            let (s1, r1) = b.send_recv(
                wl,
                wp,
                msg,
                Some(bufs[l]),
                Some(scratch[pl]),
                &cur[l],
                &cur[pl],
            );
            // pl -> l
            let (s2, r2) = b.send_recv(
                wp,
                wl,
                msg,
                Some(bufs[pl]),
                Some(scratch[l]),
                &cur[pl],
                &cur[l],
            );
            // Reduce after both the local send snapshot and the recv.
            let red_l = b.op(
                wl,
                OpKind::Reduce {
                    bytes: msg,
                    vectorized,
                    op,
                    dtype,
                    src: Some(scratch[l]),
                    dst: Some(bufs[l]),
                },
                &[r2, s1],
            );
            let red_p = b.op(
                wp,
                OpKind::Reduce {
                    bytes: msg,
                    vectorized,
                    op,
                    dtype,
                    src: Some(scratch[pl]),
                    dst: Some(bufs[pl]),
                },
                &[r1, s2],
            );
            next[nr] = vec![red_l];
            next[pnr] = vec![red_p];
        }
        for (nr, &l) in active.iter().enumerate() {
            cur[l] = std::mem::take(&mut next[nr]);
        }
        dist *= 2;
    }

    // Unfold: odd ranks send the result back to their even partners.
    for i in 0..rem {
        let (even, odd) = (2 * i, 2 * i + 1);
        let (we, wo) = (comm.world_rank(even), comm.world_rank(odd));
        let mut rdeps = cur[even].clone();
        rdeps.extend_from_slice(&[]);
        let (snd, rcv) = b.send_recv(
            wo,
            we,
            msg,
            Some(bufs[odd]),
            Some(bufs[even]),
            &cur[odd],
            &rdeps,
        );
        cur[odd].push(snd);
        cur[even] = vec![rcv];
    }

    let mut out = Frontier::empty(n);
    for (l, ops) in cur.into_iter().enumerate() {
        out.set(l, ops);
    }
    out
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter followed by a
/// recursive-doubling allgather. Bandwidth-optimal; what `coll_tuned` (and
/// the vendor stacks' inter-node phase) use for large messages.
pub fn rabenseifner_allreduce(
    b: &mut ProgramBuilder,
    comm: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
    vectorized: bool,
) -> Frontier {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return deps.clone();
    }
    let msg = bufs[0].len;
    let el = dtype.size() as u64;
    if n == 2 || msg < 2 * el {
        // Halving needs at least one element per half; fall back to RD.
        return rd_allreduce(b, comm, bufs, deps, op, dtype, vectorized);
    }
    let p2 = pow2_floor(n);
    let rem = n - p2;

    let mut cur: Vec<Vec<han_mpi::OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    let scratch: Vec<BufRange> = (0..n)
        .map(|l| b.alloc(comm.world_rank(l), msg.max(1)).slice(0, msg))
        .collect();

    // Fold (same as recursive doubling).
    for i in 0..rem {
        let (even, odd) = (2 * i, 2 * i + 1);
        let (we, wo) = (comm.world_rank(even), comm.world_rank(odd));
        let (snd, rcv) = b.send_recv(
            we,
            wo,
            msg,
            Some(bufs[even]),
            Some(scratch[odd]),
            &cur[even],
            &cur[odd],
        );
        let red = b.op(
            wo,
            OpKind::Reduce {
                bytes: msg,
                vectorized,
                op,
                dtype,
                src: Some(scratch[odd]),
                dst: Some(bufs[odd]),
            },
            &[rcv],
        );
        cur[even] = vec![snd];
        cur[odd] = vec![red];
    }
    let active: Vec<usize> = (0..rem).map(|i| 2 * i + 1).chain(2 * rem..n).collect();

    // Byte range [lo, hi) each active rank currently owns, element-aligned.
    let elems = msg / el;
    let mut own: Vec<(u64, u64)> = vec![(0, elems); p2];

    // Reduce-scatter by recursive halving.
    let mut dist = p2 / 2;
    while dist >= 1 {
        let mut next: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); p2];
        for nr in 0..p2 {
            let pnr = nr ^ dist;
            if pnr < nr {
                continue;
            }
            let (l, pl) = (active[nr], active[pnr]);
            let (wl, wp) = (comm.world_rank(l), comm.world_rank(pl));
            let (lo, hi) = own[nr];
            debug_assert_eq!(own[pnr], own[nr]);
            let mid = lo + (hi - lo) / 2;
            // In the pair, the lower newrank keeps [lo, mid), the higher
            // keeps [mid, hi). (nr < pnr here.)
            let keep_l = (lo, mid);
            let keep_p = (mid, hi);
            let give_l = keep_p; // l sends the part pl keeps
            let give_p = keep_l;
            let r_of = |buf: BufRange, (a, z): (u64, u64)| buf.slice(a * el, (z - a) * el);
            // l -> pl: l's copy of pl's kept range.
            let (s1, r1) = b.send_recv(
                wl,
                wp,
                (give_l.1 - give_l.0) * el,
                Some(r_of(bufs[l], give_l)),
                Some(r_of(scratch[pl], keep_p)),
                &cur[l],
                &cur[pl],
            );
            let (s2, r2) = b.send_recv(
                wp,
                wl,
                (give_p.1 - give_p.0) * el,
                Some(r_of(bufs[pl], give_p)),
                Some(r_of(scratch[l], keep_l)),
                &cur[pl],
                &cur[l],
            );
            let red_l = b.op(
                wl,
                OpKind::Reduce {
                    bytes: (keep_l.1 - keep_l.0) * el,
                    vectorized,
                    op,
                    dtype,
                    src: Some(r_of(scratch[l], keep_l)),
                    dst: Some(r_of(bufs[l], keep_l)),
                },
                &[r2, s1],
            );
            let red_p = b.op(
                wp,
                OpKind::Reduce {
                    bytes: (keep_p.1 - keep_p.0) * el,
                    vectorized,
                    op,
                    dtype,
                    src: Some(r_of(scratch[pl], keep_p)),
                    dst: Some(r_of(bufs[pl], keep_p)),
                },
                &[r1, s2],
            );
            next[nr] = vec![red_l];
            next[pnr] = vec![red_p];
            own[nr] = keep_l;
            own[pnr] = keep_p;
        }
        for nr in 0..p2 {
            if !next[nr].is_empty() {
                cur[active[nr]] = std::mem::take(&mut next[nr]);
            }
        }
        dist /= 2;
    }

    // Allgather by recursive doubling: exchange owned ranges, growing back.
    let mut dist = 1;
    while dist < p2 {
        let mut next: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); p2];
        let mut next_own = own.clone();
        for nr in 0..p2 {
            let pnr = nr ^ dist;
            if pnr < nr {
                continue;
            }
            let (l, pl) = (active[nr], active[pnr]);
            let (wl, wp) = (comm.world_rank(l), comm.world_rank(pl));
            let (lo_l, hi_l) = own[nr];
            let (lo_p, hi_p) = own[pnr];
            let r_of = |buf: BufRange, (a, z): (u64, u64)| buf.slice(a * el, (z - a) * el);
            // Exchange owned ranges; received data lands directly in place.
            let (s1, r1) = b.send_recv(
                wl,
                wp,
                (hi_l - lo_l) * el,
                Some(r_of(bufs[l], (lo_l, hi_l))),
                Some(r_of(bufs[pl], (lo_l, hi_l))),
                &cur[l],
                &cur[pl],
            );
            let (s2, r2) = b.send_recv(
                wp,
                wl,
                (hi_p - lo_p) * el,
                Some(r_of(bufs[pl], (lo_p, hi_p))),
                Some(r_of(bufs[l], (lo_p, hi_p))),
                &cur[pl],
                &cur[l],
            );
            let merged = (lo_l.min(lo_p), hi_l.max(hi_p));
            next[nr] = vec![s1, r2];
            next[pnr] = vec![s2, r1];
            next_own[nr] = merged;
            next_own[pnr] = merged;
        }
        for nr in 0..p2 {
            if !next[nr].is_empty() {
                cur[active[nr]] = std::mem::take(&mut next[nr]);
            }
        }
        own = next_own;
        dist *= 2;
    }

    // Unfold: odd folded ranks return the full result to even partners.
    for i in 0..rem {
        let (even, odd) = (2 * i, 2 * i + 1);
        let (we, wo) = (comm.world_rank(even), comm.world_rank(odd));
        let (snd, rcv) = b.send_recv(
            wo,
            we,
            msg,
            Some(bufs[odd]),
            Some(bufs[even]),
            &cur[odd],
            &cur[even],
        );
        cur[odd].push(snd);
        cur[even] = vec![rcv];
    }

    let mut out = Frontier::empty(n);
    for (l, ops) in cur.into_iter().enumerate() {
        out.set(l, ops);
    }
    out
}

/// Ring allgather: each local rank `l` contributes `block` bytes at offset
/// `l * block` of its (n·block)-sized buffer; after n-1 steps everyone has
/// every block.
pub fn ring_allgather(
    b: &mut ProgramBuilder,
    comm: &Comm,
    bufs: &[BufRange],
    block: u64,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return deps.clone();
    }
    for buf in bufs {
        assert_eq!(
            buf.len,
            block * n as u64,
            "allgather buffer must be n*block"
        );
    }
    let mut cur: Vec<Vec<han_mpi::OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    for step in 0..n - 1 {
        let mut next: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); n];
        for l in 0..n {
            let right = (l + 1) % n;
            // l sends the block it received `step` steps ago (its own at 0).
            let send_block = (l + n - step) % n;
            let (wl, wr) = (comm.world_rank(l), comm.world_rank(right));
            let sbuf = bufs[l].slice(send_block as u64 * block, block);
            let dbuf = bufs[right].slice(send_block as u64 * block, block);
            let (snd, rcv) =
                b.send_recv(wl, wr, block, Some(sbuf), Some(dbuf), &cur[l], &cur[right]);
            next[l].push(snd);
            next[right].push(rcv);
        }
        cur = next;
    }
    let mut out = Frontier::empty(n);
    for (l, ops) in cur.into_iter().enumerate() {
        out.set(l, ops);
    }
    out
}

/// Linear gather to comm-local `root`: every rank sends its `src` block;
/// the root's `dst` is an n·block array in local-rank order (root's own
/// block is copied locally).
pub fn linear_gather(
    b: &mut ProgramBuilder,
    comm: &Comm,
    root: usize,
    src: &[BufRange],
    dst_root: BufRange,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    let block = src[0].len;
    assert_eq!(dst_root.len, block * n as u64);
    let wroot = comm.world_rank(root);
    let mut out = Frontier::empty(n);
    for l in 0..n {
        let slot = dst_root.slice(l as u64 * block, block);
        if l == root {
            let cp = b.op(
                wroot,
                OpKind::Copy {
                    bytes: block,
                    src: Some(src[l]),
                    dst: Some(slot),
                },
                deps.get(l),
            );
            out.push(l, cp);
        } else {
            let (snd, rcv) = b.send_recv(
                comm.world_rank(l),
                wroot,
                block,
                Some(src[l]),
                Some(slot),
                deps.get(l),
                deps.get(root),
            );
            out.push(l, snd);
            out.push(root, rcv);
        }
    }
    out
}

/// Linear scatter from comm-local `root` (inverse of [`linear_gather`]).
pub fn linear_scatter(
    b: &mut ProgramBuilder,
    comm: &Comm,
    root: usize,
    src_root: BufRange,
    dst: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    let block = dst[0].len;
    assert_eq!(src_root.len, block * n as u64);
    let wroot = comm.world_rank(root);
    let mut out = Frontier::empty(n);
    for l in 0..n {
        let slot = src_root.slice(l as u64 * block, block);
        if l == root {
            let cp = b.op(
                wroot,
                OpKind::Copy {
                    bytes: block,
                    src: Some(slot),
                    dst: Some(dst[l]),
                },
                deps.get(l),
            );
            out.push(l, cp);
        } else {
            let (snd, rcv) = b.send_recv(
                wroot,
                comm.world_rank(l),
                block,
                Some(slot),
                Some(dst[l]),
                deps.get(root),
                deps.get(l),
            );
            out.push(root, snd);
            out.push(l, rcv);
        }
    }
    out
}

/// Dissemination barrier: in round `k` every rank signals `(l + 2^k) mod n`
/// and waits for `(l - 2^k) mod n`; after ⌈log₂ n⌉ rounds everyone has
/// transitively heard from everyone. The classic flat barrier
/// (`coll_tuned`'s default for medium communicators).
pub fn dissemination_barrier(b: &mut ProgramBuilder, comm: &Comm, deps: &Frontier) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let mut cur: Vec<Vec<han_mpi::OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    let mut dist = 1;
    while dist < n {
        let mut next: Vec<Vec<han_mpi::OpId>> = vec![Vec::new(); n];
        for l in 0..n {
            let to = (l + dist) % n;
            let (snd, rcv) = b.send_recv(
                comm.world_rank(l),
                comm.world_rank(to),
                1,
                None,
                None,
                &cur[l],
                &cur[to],
            );
            next[l].push(snd);
            next[to].push(rcv);
        }
        cur = next;
        dist *= 2;
    }
    let mut out = Frontier::empty(n);
    for (l, ops) in cur.into_iter().enumerate() {
        out.set(l, ops);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::{execute_seeded, Comm, ExecOpts, ProgramBuilder};

    fn setup(nodes: usize, ppn: usize) -> (Machine, Comm) {
        let m = Machine::from_preset(&mini(nodes, ppn));
        let n = m.topo.world_size();
        (m, Comm::world(n))
    }

    fn run_data(
        m: &mut Machine,
        b: ProgramBuilder,
        seed: impl FnOnce(&mut han_mpi::Memory),
    ) -> han_mpi::Memory {
        let p = b.build();
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(m, &p, &o, seed);
        mem
    }

    fn i32s(xs: &[i32]) -> Vec<u8> {
        xs.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn check_bcast(shape: TreeShape, nodes: usize, ppn: usize, root: usize, seg: Option<u64>) {
        let (mut m, comm) = setup(nodes, ppn);
        let n = comm.size();
        let mut b = ProgramBuilder::new(n);
        let msg = 40u64; // 10 i32s, odd segment boundaries with seg=16
        let bufs = b.alloc_all(msg);
        let bufs_root = bufs[root];
        let f = tree_bcast(&mut b, &comm, root, &bufs, &Frontier::empty(n), shape, seg);
        assert_eq!(f.len(), n);
        let data: Vec<i32> = (0..10).map(|i| i * 3 + root as i32).collect();
        let mem = run_data(&mut m, b, |mm| mm.write(root, bufs_root, &i32s(&data)));
        for r in 0..n {
            assert_eq!(
                mem.read(r, bufs[r]),
                i32s(&data).as_slice(),
                "{shape:?} rank {r} (root {root}, seg {seg:?})"
            );
        }
    }

    #[test]
    fn bcast_all_shapes_deliver() {
        for shape in [
            TreeShape::Flat,
            TreeShape::Chain,
            TreeShape::Binary,
            TreeShape::Binomial,
            TreeShape::Kary(3),
        ] {
            check_bcast(shape, 2, 3, 0, None);
            check_bcast(shape, 2, 3, 4, None);
            check_bcast(shape, 3, 2, 2, Some(16));
        }
    }

    fn check_reduce(shape: TreeShape, nodes: usize, ppn: usize, root: usize, seg: Option<u64>) {
        let (mut m, comm) = setup(nodes, ppn);
        let n = comm.size();
        let mut b = ProgramBuilder::new(n);
        let msg = 24u64; // 6 i32s
        let bufs = b.alloc_all(msg);
        let all_bufs = bufs.clone();
        let _ = tree_reduce(
            &mut b,
            &comm,
            root,
            &bufs,
            &Frontier::empty(n),
            shape,
            seg,
            ReduceOp::Sum,
            DataType::Int32,
            true,
        );
        let mem = run_data(&mut m, b, |mm| {
            for r in 0..n {
                let vals: Vec<i32> = (0..6).map(|i| (r as i32 + 1) * (i + 1)).collect();
                mm.write(r, all_bufs[r], &i32s(&vals));
            }
        });
        // Sum over r of (r+1)*(i+1) = (i+1) * n(n+1)/2
        let total = (n * (n + 1) / 2) as i32;
        let expect: Vec<i32> = (0..6).map(|i| (i + 1) * total).collect();
        assert_eq!(
            mem.read(root, all_bufs[root]),
            i32s(&expect).as_slice(),
            "{shape:?} root {root} seg {seg:?}"
        );
    }

    #[test]
    fn reduce_all_shapes_sum() {
        for shape in [
            TreeShape::Flat,
            TreeShape::Chain,
            TreeShape::Binary,
            TreeShape::Binomial,
        ] {
            check_reduce(shape, 2, 3, 0, None);
            check_reduce(shape, 2, 3, 3, None);
            check_reduce(shape, 3, 2, 1, Some(8));
        }
    }

    fn check_allreduce(
        f: impl Fn(
            &mut ProgramBuilder,
            &Comm,
            &[BufRange],
            &Frontier,
            ReduceOp,
            DataType,
            bool,
        ) -> Frontier,
        nodes: usize,
        ppn: usize,
        nelem: usize,
    ) {
        let (mut m, comm) = setup(nodes, ppn);
        let n = comm.size();
        let mut b = ProgramBuilder::new(n);
        let msg = (nelem * 4) as u64;
        let bufs = b.alloc_all(msg);
        let all_bufs = bufs.clone();
        let fr = f(
            &mut b,
            &comm,
            &bufs,
            &Frontier::empty(n),
            ReduceOp::Sum,
            DataType::Int32,
            true,
        );
        assert_eq!(fr.len(), n);
        let mem = run_data(&mut m, b, |mm| {
            for r in 0..n {
                let vals: Vec<i32> = (0..nelem).map(|i| (r * 100 + i) as i32).collect();
                mm.write(r, all_bufs[r], &i32s(&vals));
            }
        });
        let expect: Vec<i32> = (0..nelem)
            .map(|i| (0..n).map(|r| (r * 100 + i) as i32).sum())
            .collect();
        for r in 0..n {
            assert_eq!(
                mem.read(r, all_bufs[r]),
                i32s(&expect).as_slice(),
                "n={n} rank {r}"
            );
        }
    }

    #[test]
    fn rd_allreduce_pow2_and_non_pow2() {
        check_allreduce(rd_allreduce, 2, 2, 5); // n=4
        check_allreduce(rd_allreduce, 3, 2, 5); // n=6 (fold)
        check_allreduce(rd_allreduce, 7, 1, 3); // n=7 (fold, odd)
        check_allreduce(rd_allreduce, 1, 2, 4); // n=2
    }

    #[test]
    fn rabenseifner_allreduce_matches() {
        check_allreduce(rabenseifner_allreduce, 2, 2, 8); // n=4
        check_allreduce(rabenseifner_allreduce, 3, 2, 16); // n=6 fold
        check_allreduce(rabenseifner_allreduce, 5, 1, 8); // n=5 fold
        check_allreduce(rabenseifner_allreduce, 8, 1, 64); // n=8 deeper
        check_allreduce(rabenseifner_allreduce, 2, 1, 3); // n=2 -> RD fallback
    }

    #[test]
    fn rabenseifner_beats_rd_for_large_messages() {
        // Bandwidth-optimality sanity check: on 8 single-rank nodes with a
        // 4 MiB message, Rabenseifner should be clearly faster than RD.
        let (mut m, comm) = setup(8, 1);
        let n = comm.size();
        let msg = 4u64 << 20;
        #[allow(clippy::type_complexity)]
        let time_of = |m: &mut Machine,
                       f: &dyn Fn(
            &mut ProgramBuilder,
            &Comm,
            &[BufRange],
            &Frontier,
            ReduceOp,
            DataType,
            bool,
        ) -> Frontier| {
            let mut b = ProgramBuilder::new(n);
            let bufs = b.alloc_all(msg);
            f(
                &mut b,
                &comm,
                &bufs,
                &Frontier::empty(n),
                ReduceOp::Sum,
                DataType::Float32,
                true,
            );
            let p = b.build();
            han_mpi::execute(m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let t_rd = time_of(&mut m, &rd_allreduce);
        let t_rab = time_of(&mut m, &rabenseifner_allreduce);
        assert!(
            t_rab.as_ps() * 3 < t_rd.as_ps() * 2,
            "rabenseifner {t_rab} should be well under rd {t_rd}"
        );
    }

    #[test]
    fn ring_allgather_delivers_all_blocks() {
        let (mut m, comm) = setup(3, 2);
        let n = comm.size();
        let block = 8u64; // 2 i32
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(block * n as u64);
        let all = bufs.clone();
        ring_allgather(&mut b, &comm, &bufs, block, &Frontier::empty(n));
        let mem = run_data(&mut m, b, |mm| {
            for r in 0..n {
                let mine = all[r].slice(r as u64 * block, block);
                mm.write(r, mine, &i32s(&[r as i32, r as i32 * 10]));
            }
        });
        for r in 0..n {
            let expect: Vec<i32> = (0..n).flat_map(|q| [q as i32, q as i32 * 10]).collect();
            assert_eq!(mem.read(r, all[r]), i32s(&expect).as_slice(), "rank {r}");
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let (mut m, comm) = setup(2, 2);
        let n = comm.size();
        let block = 4u64;
        let root = 1usize;
        let mut b = ProgramBuilder::new(n);
        let src: Vec<_> = (0..n).map(|r| b.alloc(r, block)).collect();
        let gathered = b.alloc(root, block * n as u64);
        let dst: Vec<_> = (0..n).map(|r| b.alloc(r, block)).collect();
        let f = linear_gather(&mut b, &comm, root, &src, gathered, &Frontier::empty(n));
        linear_scatter(&mut b, &comm, root, gathered, &dst, &f);
        let (src_c, dst_c) = (src.clone(), dst.clone());
        let mem = run_data(&mut m, b, |mm| {
            for r in 0..n {
                mm.write(r, src_c[r], &[r as u8; 4]);
            }
        });
        for r in 0..n {
            assert_eq!(mem.read(r, dst_c[r]), &[r as u8; 4], "rank {r}");
        }
        assert_eq!(
            mem.read(root, gathered),
            &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]
        );
    }

    #[test]
    fn chain_bcast_pipelines_segments() {
        // With segmentation, a chain over 4 nodes should take far less than
        // 3x the single-hop time for a multi-segment message.
        let (mut m, comm) = setup(4, 1);
        let n = comm.size();
        let msg = 4u64 << 20;
        let mut time_with_seg = |seg: Option<u64>| {
            let mut b = ProgramBuilder::new(n);
            let bufs = b.alloc_all(msg);
            tree_bcast(
                &mut b,
                &comm,
                0,
                &bufs,
                &Frontier::empty(n),
                TreeShape::Chain,
                seg,
            );
            let p = b.build();
            han_mpi::execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let unsegmented = time_with_seg(None);
        let segmented = time_with_seg(Some(256 * 1024));
        assert!(
            segmented.as_ps() * 2 < unsegmented.as_ps(),
            "pipelined chain {segmented} should be <0.5x of store-and-forward {unsegmented}"
        );
    }
}
