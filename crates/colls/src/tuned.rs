//! Default Open MPI: the `coll_tuned` baseline.
//!
//! "Tuned \[29\], the current default collective selection mechanism in Open
//! MPI, built its decision functions long ago, on hardware with completely
//! different parameters than most today's HPC machines (a cluster of AMD64
//! processors using Gigabit Ethernet and Myricom interconnect)."
//!
//! The decision rules below mirror the fixed `coll_tuned` decision
//! functions: size- and comm-size-based switches between flat/binomial/
//! binary/pipeline broadcast and recursive-doubling/Rabenseifner
//! allreduce, with the ca.-2006 segment sizes. Crucially, the trees span
//! the *flat world communicator* — no topology awareness — so on a modern
//! fat-node cluster most tree edges cross nodes, which is exactly why HAN
//! beats it by 4.7–7.4x in Figs. 10 and 12–14.

use crate::frontier::Frontier;
use crate::p2p::{
    dissemination_barrier, linear_gather, linear_scatter, rabenseifner_allreduce, rd_allreduce,
    ring_allgather, tree_bcast, tree_reduce,
};
use crate::stack::{BuildCtx, MpiStack, Unsupported};
use crate::tree::TreeShape;
use han_machine::Flavor;
use han_mpi::{BufRange, Comm, DataType, ReduceOp};

/// Default Open MPI 4.0.0 with the `tuned` collective component.
#[derive(Debug, Clone, Copy, Default)]
pub struct TunedOpenMpi;

impl TunedOpenMpi {
    /// The fixed bcast decision: small → binomial; medium → binary with
    /// 32 KB segments; large → pipeline (chain) on small communicators,
    /// split-binary with 128 KB segments on large ones (a chain's fill
    /// time is linear in the communicator size, so `coll_tuned` only
    /// pipelines flat chains on modest process counts).
    fn bcast_decision(bytes: u64, comm_size: usize) -> (TreeShape, Option<u64>) {
        if comm_size < 4 {
            (TreeShape::Flat, None)
        } else if bytes < 2 * 1024 {
            (TreeShape::Binomial, None)
        } else if bytes < 512 * 1024 {
            (TreeShape::Binary, Some(32 * 1024))
        } else if comm_size <= 64 {
            (TreeShape::Chain, Some(128 * 1024))
        } else {
            (TreeShape::Binary, Some(128 * 1024))
        }
    }
}

impl MpiStack for TunedOpenMpi {
    fn name(&self) -> String {
        "default Open MPI".into()
    }

    fn flavor(&self) -> Flavor {
        Flavor::OpenMpi
    }

    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let (shape, seg) = Self::bcast_decision(bufs[0].len, comm.size());
        tree_bcast(cx.b, comm, root, bufs, deps, shape, seg)
    }

    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Frontier {
        // No AVX: default Open MPI reduction kernels are scalar (the paper
        // notes preliminary AVX work had not landed in 4.0.0).
        if bufs[0].len <= 16 * 1024 {
            rd_allreduce(cx.b, comm, bufs, deps, op, dtype, false)
        } else {
            rabenseifner_allreduce(cx.b, comm, bufs, deps, op, dtype, false)
        }
    }

    fn reduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let seg = if bufs[0].len >= 512 * 1024 {
            Some(128 * 1024)
        } else {
            None
        };
        Ok(tree_reduce(
            cx.b,
            comm,
            root,
            bufs,
            deps,
            TreeShape::Binomial,
            seg,
            op,
            dtype,
            false,
        ))
    }

    fn gather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src: &[BufRange],
        dst_root: BufRange,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Ok(linear_gather(cx.b, comm, root, src, dst_root, deps))
    }

    fn scatter(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src_root: BufRange,
        dst: &[BufRange],
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Ok(linear_scatter(cx.b, comm, root, src_root, dst, deps))
    }

    fn allgather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        block: u64,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Ok(ring_allgather(cx.b, comm, bufs, block, deps))
    }

    fn barrier(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        // Flat dissemination over the whole communicator, topology-blind.
        Ok(dissemination_barrier(cx.b, comm, deps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{build_coll, time_coll, Coll};
    use han_machine::mini;
    use han_mpi::{execute_seeded, ExecOpts};

    #[test]
    fn decision_switches_with_size() {
        assert_eq!(
            TunedOpenMpi::bcast_decision(512, 64),
            (TreeShape::Binomial, None)
        );
        assert_eq!(
            TunedOpenMpi::bcast_decision(64 * 1024, 64),
            (TreeShape::Binary, Some(32 * 1024))
        );
        assert_eq!(
            TunedOpenMpi::bcast_decision(4 << 20, 64),
            (TreeShape::Chain, Some(128 * 1024))
        );
        assert_eq!(
            TunedOpenMpi::bcast_decision(4 << 20, 4096),
            (TreeShape::Binary, Some(128 * 1024))
        );
        assert_eq!(TunedOpenMpi::bcast_decision(1 << 20, 2).0, TreeShape::Flat);
    }

    #[test]
    fn tuned_bcast_correct_end_to_end() {
        let preset = mini(2, 3);
        let prog = build_coll(&TunedOpenMpi, &preset, Coll::Bcast, 64, 0).unwrap();
        let mut m = han_machine::Machine::from_preset(&preset);
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        // Buffers were allocated rank-major starting at offset 0.
        let buf0 = BufRange::new(0, 64);
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| {
            mm.write(0, buf0, &[42u8; 64]);
        });
        for r in 0..6 {
            assert_eq!(mem.read(r, BufRange::new(0, 64)), &[42u8; 64], "rank {r}");
        }
    }

    #[test]
    fn tuned_allreduce_correct_end_to_end() {
        let preset = mini(2, 2);
        let prog = build_coll(&TunedOpenMpi, &preset, Coll::Allreduce, 16, 0).unwrap();
        let mut m = han_machine::Machine::from_preset(&preset);
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| {
            for r in 0..4 {
                let vals: Vec<u8> = (0..4)
                    .flat_map(|i| (((r + 1) * (i + 1)) as f32).to_le_bytes())
                    .collect();
                mm.write(r, BufRange::new(0, 16), &vals);
            }
        });
        for r in 0..4 {
            let out = mem.read(r, BufRange::new(0, 16));
            let got: Vec<f32> = out
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(got, vec![10.0, 20.0, 30.0, 40.0], "rank {r}");
        }
    }

    #[test]
    fn cost_grows_with_message_size() {
        let preset = mini(4, 2);
        let t_small = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, 1024, 0).unwrap();
        let t_large = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, 1 << 20, 0).unwrap();
        assert!(t_large > t_small * 5);
    }
}
