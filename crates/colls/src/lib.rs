//! # han-colls — collective submodules and baseline MPI stacks
//!
//! HAN's design principle (paper section III) is to *reuse* existing
//! collective infrastructure: it selects homogeneous collective modules as
//! submodules per hardware level and composes their fine-grained operations
//! into tasks. This crate provides that infrastructure for the
//! reproduction:
//!
//! * [`tree`] + [`p2p`] — the raw algorithm library: binomial / binary /
//!   chain / k-ary / flat trees with optional internal segmentation,
//!   recursive doubling, Rabenseifner reduce-scatter/allgather, ring
//!   allgather — all compiled to op-DAG programs over a communicator.
//! * [`modules`] — the four Open MPI submodules HAN draws from:
//!   - [`modules::Libnbc`]: the legacy non-blocking module — binomial
//!     trees, no internal segmentation, scalar (non-AVX) reductions;
//!   - [`modules::Adapt`]: the event-driven module — chain / binary /
//!     binomial algorithm menu, internal segmentation (`ibs`/`irs`),
//!     AVX reductions;
//!   - [`modules::Sm`]: intra-node shared-memory bounce buffers — cheap
//!     for small segments, fragment-synchronization cost for large ones;
//!   - [`modules::Solo`]: intra-node one-sided — expensive window setup,
//!     single-copy data path and AVX reductions that win for large
//!     segments (the paper's ≥512 KB heuristic).
//! * [`tuned`] — default Open MPI's `coll_tuned`: non-hierarchical,
//!   decision functions frozen for ca.-2006 hardware; the paper's primary
//!   baseline.
//! * [`vendor`] — Cray MPI / Intel MPI / MVAPICH2 stand-ins: hierarchical
//!   two-level collectives *without* HAN's cross-level pipelining, over
//!   their own P2P parameter sets.
//! * [`stack`] — the [`stack::MpiStack`] trait every full MPI
//!   implementation (including HAN itself, in `han-core`) implements, plus
//!   the benchmark runner used by IMB-style harnesses.
//! * [`template`] — the thread-safe [`template::TemplateStore`] interning
//!   size-invariant program shapes so autotuning sweeps re-stamp scalars
//!   instead of rebuilding DAGs (keys come from
//!   [`stack::MpiStack::template_key`]).

// Collective builders iterate ranks/leaders by index into several
// parallel per-rank buffer arrays at once; iterator rewrites of those
// loops obscure the rank arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod frontier;
pub mod modules;
pub mod p2p;
pub mod stack;
pub mod template;
pub mod tree;
pub mod tuned;
pub mod vendor;

pub use frontier::Frontier;
pub use modules::{Adapt, InterAlg, InterModule, IntraModule, Libnbc, Sm, Solo};
pub use stack::{BuildCtx, Coll, MpiStack};
pub use template::{time_coll_templated, TemplateStats, TemplateStore};
pub use tree::TreeShape;
pub use tuned::TunedOpenMpi;
pub use vendor::VendorMpi;
