//! Vendor MPI stand-ins: Cray MPI, Intel MPI, MVAPICH2.
//!
//! The paper compares HAN against the system MPIs of its two testbeds.
//! None is available here, so each is modeled as a *hierarchical,
//! phase-synchronized* stack: topology-aware two-level collectives with
//! high-quality intra-node primitives and its own P2P parameter set
//! ([`han_machine::Flavor`]), but **no cross-level pipelining** — the
//! decisive structural difference from HAN, and the reason HAN overtakes
//! them on large messages (up to 2.32x vs Cray MPI in Fig. 10) while they
//! can win on small ones through cheaper P2P (Fig. 11).
//!
//! MVAPICH2 additionally uses a multi-leader design for very large
//! allreduce (its DPML/SALaR lineage, paper refs [2, 20]), which is why it
//! matches HAN above 64 MB in Fig. 14.

use crate::frontier::Frontier;
use crate::p2p::{rabenseifner_allreduce, rd_allreduce, tree_bcast};
use crate::stack::{split_with_root, sublocals, BuildCtx, MpiStack};
use crate::tree::TreeShape;
use han_machine::{Flavor, NodeParams};
use han_mpi::{BufRange, Comm, DataType, OpKind, ProgramBuilder, ReduceOp};

/// A vendor MPI implementation, parameterized by flavor.
#[derive(Debug, Clone, Copy)]
pub struct VendorMpi {
    pub flavor: Flavor,
}

impl VendorMpi {
    pub fn cray() -> Self {
        VendorMpi {
            flavor: Flavor::CrayMpi,
        }
    }

    pub fn intel() -> Self {
        VendorMpi {
            flavor: Flavor::IntelMpi,
        }
    }

    pub fn mvapich2() -> Self {
        VendorMpi {
            flavor: Flavor::Mvapich2,
        }
    }

    /// Leaders per node for allreduce: MVAPICH2 goes multi-leader on very
    /// large messages (data-partitioned multi-leader reduction).
    fn allreduce_leaders(&self, bytes: u64) -> usize {
        if self.flavor == Flavor::Mvapich2 && bytes >= 4 << 20 {
            2
        } else {
            1
        }
    }

    fn inter_bcast_decision(bytes: u64) -> (TreeShape, Option<u64>) {
        if bytes < 16 * 1024 {
            (TreeShape::Binomial, None)
        } else {
            (TreeShape::Binary, Some(128 * 1024))
        }
    }
}

/// Vendor-quality intra-node broadcast from local rank 0: consumers read
/// the producer's buffer directly (kernel-assisted single copy).
fn intra_bcast(
    b: &mut ProgramBuilder,
    comm: &Comm,
    _node: &NodeParams,
    bufs: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let bytes = bufs[0].len;
    let w0 = comm.world_rank(0);
    let mut out = Frontier::empty(n);
    let ready = b.nop(w0, deps.get(0));
    out.push(0, ready);
    for l in 1..n {
        let wl = comm.world_rank(l);
        let mut ldeps: Vec<han_mpi::OpId> = deps.get(l).to_vec();
        ldeps.push(ready);
        let get = b.op(
            wl,
            OpKind::CrossCopy {
                from: w0 as u32,
                bytes,
                src: Some(bufs[0]),
                dst: Some(bufs[l]),
            },
            &ldeps,
        );
        out.push(l, get);
    }
    out
}

/// Vendor-quality intra-node reduce to local rank 0 (in place, AVX).
#[allow(clippy::too_many_arguments)]
fn intra_reduce(
    b: &mut ProgramBuilder,
    comm: &Comm,
    _node: &NodeParams,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let bytes = bufs[0].len;
    let w0 = comm.world_rank(0);
    let mut out = Frontier::empty(n);
    let mut last: Option<han_mpi::OpId> = None;
    for l in 1..n {
        let wl = comm.world_rank(l);
        let expose = b.nop(wl, deps.get(l));
        out.push(l, expose);
        let mut rdeps: Vec<han_mpi::OpId> = deps.get(0).to_vec();
        rdeps.push(expose);
        if let Some(r) = last {
            rdeps.push(r);
        }
        let red = b.op(
            w0,
            OpKind::ReduceFrom {
                from: wl as u32,
                bytes,
                vectorized: true,
                op,
                dtype,
                src: Some(bufs[l]),
                dst: Some(bufs[0]),
            },
            &rdeps,
        );
        last = Some(red);
    }
    if let Some(r) = last {
        out.push(0, r);
    }
    out
}

impl MpiStack for VendorMpi {
    fn name(&self) -> String {
        self.flavor.to_string()
    }

    fn flavor(&self) -> Flavor {
        self.flavor
    }

    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let n = comm.size();
        let root_world = comm.world_rank(root);
        let (low, up) = split_with_root(comm, &cx.topo, root_world);
        let bytes = bufs[0].len;
        let (shape, seg) = Self::inter_bcast_decision(bytes);

        // Phase 1: inter-node broadcast over the leaders.
        let up_locals = sublocals(comm, &up);
        let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| bufs[l]).collect();
        let up_deps = deps.project(&up_locals);
        let up_root = up.local_rank(root_world).expect("root leads its node");
        let f_up = tree_bcast(cx.b, &up, up_root, &up_bufs, &up_deps, shape, seg);

        // Phase 2 (no overlap with phase 1): intra-node broadcast.
        let mut mid = deps.clone();
        for (i, &l) in up_locals.iter().enumerate() {
            mid.set(l, f_up.get(i).to_vec());
        }
        let mut out = Frontier::empty(n);
        for lc in &low {
            let locals = sublocals(comm, lc);
            let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
            let sub_deps = mid.project(&locals);
            let f = intra_bcast(cx.b, lc, &cx.node, &sub_bufs, &sub_deps);
            for (i, &l) in locals.iter().enumerate() {
                out.set(l, f.get(i).to_vec());
            }
        }
        out
    }

    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Frontier {
        let n = comm.size();
        let bytes = bufs[0].len;
        let nleaders = self.allreduce_leaders(bytes);
        let (low, _up) = comm.split_node(&cx.topo);
        let mut out = Frontier::empty(n);

        // Partition the message across leaders (multi-leader design); each
        // partition runs the full reduce/allreduce/bcast chain and the
        // partitions proceed concurrently.
        let el = dtype.size() as u64;
        let elems = bytes / el;
        let part_elems = elems / nleaders as u64;
        for k in 0..nleaders {
            let lo = k as u64 * part_elems * el;
            let hi = if k == nleaders - 1 {
                bytes
            } else {
                (k as u64 + 1) * part_elems * el
            };
            if hi <= lo {
                continue;
            }
            let part = |buf: BufRange| buf.slice(lo, hi - lo);

            // Leader for partition k on each node: local index k*ppn/nleaders.
            let mut leaders = Vec::with_capacity(low.len());
            for lc in &low {
                let idx = (k * lc.size()) / nleaders;
                leaders.push(lc.world_rank(idx.min(lc.size() - 1)));
            }
            let up_k = Comm::from_ranks(leaders);

            // Phase 1: intra-node reduce of this partition to the k-leader.
            let mut mid = deps.clone();
            for lc in &low {
                let idx = (k * lc.size()) / nleaders;
                let idx = idx.min(lc.size() - 1);
                // Reorder so the k-leader is local 0.
                let mut ranks = lc.ranks().to_vec();
                ranks.swap(0, idx);
                let lc_k = Comm::from_ranks(ranks);
                let locals = sublocals(comm, &lc_k);
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| part(bufs[l])).collect();
                let sub_deps = deps.project(&locals);
                let f = intra_reduce(cx.b, &lc_k, &cx.node, &sub_bufs, &sub_deps, op, dtype);
                for (i, &l) in locals.iter().enumerate() {
                    let mut v = mid.get(l).to_vec();
                    v.extend_from_slice(f.get(i));
                    mid.set(l, v);
                }
            }

            // Phase 2: allreduce across the k-leaders.
            let up_locals = sublocals(comm, &up_k);
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| part(bufs[l])).collect();
            let up_deps = mid.project(&up_locals);
            let f_up = if hi - lo <= 16 * 1024 {
                rd_allreduce(cx.b, &up_k, &up_bufs, &up_deps, op, dtype, true)
            } else {
                rabenseifner_allreduce(cx.b, &up_k, &up_bufs, &up_deps, op, dtype, true)
            };
            for (i, &l) in up_locals.iter().enumerate() {
                mid.set(l, f_up.get(i).to_vec());
            }

            // Phase 3: intra-node broadcast of the partition result.
            for lc in &low {
                let idx = (k * lc.size()) / nleaders;
                let idx = idx.min(lc.size() - 1);
                let mut ranks = lc.ranks().to_vec();
                ranks.swap(0, idx);
                let lc_k = Comm::from_ranks(ranks);
                let locals = sublocals(comm, &lc_k);
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| part(bufs[l])).collect();
                let sub_deps = mid.project(&locals);
                let f = intra_bcast(cx.b, &lc_k, &cx.node, &sub_bufs, &sub_deps);
                for (i, &l) in locals.iter().enumerate() {
                    let mut v = out.get(l).to_vec();
                    v.extend_from_slice(f.get(i));
                    out.set(l, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::{build_coll, time_coll, Coll};
    use crate::tuned::TunedOpenMpi;
    use han_machine::{mini, Machine};
    use han_mpi::{execute_seeded, ExecOpts};

    fn check_bcast_data(stack: &VendorMpi, nodes: usize, ppn: usize, root: usize) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let prog = build_coll(stack, &preset, Coll::Bcast, 32, root).unwrap();
        let mut m = Machine::from_preset(&preset);
        let o = ExecOpts::with_data(stack.flavor().p2p());
        let buf = BufRange::new(0, 32);
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| {
            mm.write(root, buf, &[9u8; 32]);
        });
        for r in 0..n {
            assert_eq!(mem.read(r, buf), &[9u8; 32], "{} rank {r}", stack.name());
        }
    }

    #[test]
    fn vendor_bcast_delivers() {
        for stack in [VendorMpi::cray(), VendorMpi::intel(), VendorMpi::mvapich2()] {
            check_bcast_data(&stack, 3, 4, 0);
            check_bcast_data(&stack, 3, 4, 5); // non-leader root
        }
    }

    fn check_allreduce_data(stack: &VendorMpi, nodes: usize, ppn: usize, bytes: u64) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let prog = build_coll(stack, &preset, Coll::Allreduce, bytes, 0).unwrap();
        let mut m = Machine::from_preset(&preset);
        let o = ExecOpts::with_data(stack.flavor().p2p());
        let buf = BufRange::new(0, bytes);
        let nelem = (bytes / 4) as usize;
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| {
            for r in 0..n {
                // Values exact in f32 and index-mixed (i % 8) so partition
                // offsets are still exercised without rounding differences.
                let vals: Vec<u8> = (0..nelem)
                    .flat_map(|i| (((r + 1) * (i % 8 + 1)) as f32).to_le_bytes())
                    .collect();
                mm.write(r, buf, &vals);
            }
        });
        let total = (n * (n + 1) / 2) as f32;
        for r in 0..n {
            let got: Vec<f32> = mem
                .read(r, buf)
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let expect: Vec<f32> = (0..nelem).map(|i| total * (i % 8 + 1) as f32).collect();
            assert_eq!(got, expect, "{} rank {r} bytes {bytes}", stack.name());
        }
    }

    #[test]
    fn vendor_allreduce_correct() {
        for stack in [VendorMpi::cray(), VendorMpi::intel()] {
            check_allreduce_data(&stack, 2, 3, 64);
            check_allreduce_data(&stack, 3, 2, 256);
        }
    }

    #[test]
    fn mvapich_multileader_allreduce_correct() {
        // Above the 4 MiB threshold MVAPICH2 splits across two leaders.
        check_allreduce_data(&VendorMpi::mvapich2(), 2, 4, 8 << 20);
        // And below it, single leader.
        check_allreduce_data(&VendorMpi::mvapich2(), 2, 4, 128);
    }

    #[test]
    fn vendors_beat_tuned_on_fat_nodes() {
        // Topology awareness must pay off: 4 nodes x 8 ranks, 1 MiB bcast.
        let preset = mini(4, 8);
        let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, 1 << 20, 0).unwrap();
        for v in [VendorMpi::cray(), VendorMpi::intel(), VendorMpi::mvapich2()] {
            let t = time_coll(&v, &preset, Coll::Bcast, 1 << 20, 0).unwrap();
            assert!(
                t < t_tuned,
                "{} ({t}) should beat tuned ({t_tuned})",
                v.name()
            );
        }
    }

    #[test]
    fn cray_beats_openmpi_flavors_on_small_messages() {
        let preset = mini(4, 4);
        let t_cray = time_coll(&VendorMpi::cray(), &preset, Coll::Bcast, 4096, 0).unwrap();
        let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, 4096, 0).unwrap();
        assert!(t_cray < t_tuned);
    }
}
