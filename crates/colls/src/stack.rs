//! The full-MPI-stack abstraction and benchmark runner.
//!
//! Everything the paper compares — HAN, default Open MPI (`tuned`), Cray
//! MPI, Intel MPI, MVAPICH2 — is an [`MpiStack`]: a named object that can
//! compile each collective into an op-DAG program and declares which P2P
//! protocol parameters it runs over. The IMB-style harness in `han-bench`
//! and the applications in `han-apps` are generic over this trait, so every
//! figure's "lines" are just different `MpiStack` values.

use crate::frontier::Frontier;
use han_machine::{
    uniform_level_params, Flavor, LevelVec, Machine, MachinePreset, NodeParams, Topology,
};
use han_mpi::{execute, BufRange, Comm, DataType, ExecOpts, ProgramBuilder, ReduceOp};
use han_sim::Time;
use std::collections::HashMap;

/// Build-time context handed to stack implementations.
pub struct BuildCtx<'a> {
    pub b: &'a mut ProgramBuilder,
    pub topo: Topology,
    pub node: NodeParams,
    /// Per-level link parameters, outermost first. Builders recursing
    /// through the hierarchy consult the level they are working at (via
    /// [`NodeParams::at_level`] views); on uniform machines every level
    /// carries the classic `node`/`net` values, so built programs are
    /// unchanged.
    pub levels: LevelVec,
}

impl<'a> BuildCtx<'a> {
    /// Context for building over a whole preset machine.
    pub fn new(b: &'a mut ProgramBuilder, preset: &MachinePreset) -> Self {
        BuildCtx {
            b,
            topo: preset.topology,
            node: preset.node,
            levels: preset.level_params(),
        }
    }

    /// Context from raw parts with uniform per-level parameters (the
    /// historical model; tests and custom collectives use this).
    pub fn uniform(
        b: &'a mut ProgramBuilder,
        topo: Topology,
        node: NodeParams,
        net: han_machine::NetParams,
    ) -> Self {
        let levels = uniform_level_params(&topo, &node, &net);
        BuildCtx {
            b,
            topo,
            node,
            levels,
        }
    }
}

/// Collective operation selector (the `t` input of autotuning, Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Coll {
    Bcast,
    Allreduce,
    Reduce,
    Gather,
    Scatter,
    Allgather,
    Barrier,
}

impl Coll {
    /// Every collective the framework knows, in canonical order. Sweep
    /// harnesses and decision-table distillation iterate this list so a
    /// newly added collective cannot be silently skipped.
    pub const ALL: [Coll; 7] = [
        Coll::Bcast,
        Coll::Allreduce,
        Coll::Reduce,
        Coll::Gather,
        Coll::Scatter,
        Coll::Allgather,
        Coll::Barrier,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Coll::Bcast => "bcast",
            Coll::Allreduce => "allreduce",
            Coll::Reduce => "reduce",
            Coll::Gather => "gather",
            Coll::Scatter => "scatter",
            Coll::Allgather => "allgather",
            Coll::Barrier => "barrier",
        }
    }

    /// Inverse of [`Coll::name`], for wire formats and persisted tables.
    pub fn from_name(name: &str) -> Option<Coll> {
        Coll::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// A stack was asked for a collective it does not implement. Sweeps and
/// benches treat this as "skip and report", never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// Display name of the stack (or model) that declined.
    pub stack: String,
    pub coll: Coll,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} not implemented", self.stack, self.coll.name())
    }
}

impl std::error::Error for Unsupported {}

/// A complete MPI implementation under test.
pub trait MpiStack {
    /// Display name for report rows ("HAN", "Cray MPI", ...).
    fn name(&self) -> String;

    /// The P2P protocol parameter set this stack runs over.
    fn flavor(&self) -> Flavor;

    /// `MPI_Bcast` from comm-local `root`; `bufs[l]` is rank `l`'s buffer.
    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier;

    /// `MPI_Allreduce` in place over `bufs`.
    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Frontier;

    /// `MPI_Reduce` to comm-local `root`, in place at the root.
    #[allow(clippy::too_many_arguments)]
    fn reduce(
        &self,
        _cx: &mut BuildCtx,
        _comm: &Comm,
        _root: usize,
        _bufs: &[BufRange],
        _op: ReduceOp,
        _dtype: DataType,
        _deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Err(Unsupported {
            stack: self.name(),
            coll: Coll::Reduce,
        })
    }

    /// `MPI_Gather` of equal `block`-sized contributions to `root`.
    /// `src[l]` is each rank's block; `dst_root` is the root's n·block
    /// array.
    #[allow(clippy::too_many_arguments)]
    fn gather(
        &self,
        _cx: &mut BuildCtx,
        _comm: &Comm,
        _root: usize,
        _src: &[BufRange],
        _dst_root: BufRange,
        _deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Err(Unsupported {
            stack: self.name(),
            coll: Coll::Gather,
        })
    }

    /// `MPI_Scatter` from `root` (inverse of gather).
    #[allow(clippy::too_many_arguments)]
    fn scatter(
        &self,
        _cx: &mut BuildCtx,
        _comm: &Comm,
        _root: usize,
        _src_root: BufRange,
        _dst: &[BufRange],
        _deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Err(Unsupported {
            stack: self.name(),
            coll: Coll::Scatter,
        })
    }

    /// `MPI_Barrier`: no rank may exit before every rank has entered.
    fn barrier(
        &self,
        _cx: &mut BuildCtx,
        _comm: &Comm,
        _deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Err(Unsupported {
            stack: self.name(),
            coll: Coll::Barrier,
        })
    }

    /// `MPI_Allgather`: `bufs[l]` is an n·block array with rank `l`'s
    /// contribution pre-placed at offset `l*block`.
    fn allgather(
        &self,
        _cx: &mut BuildCtx,
        _comm: &Comm,
        _bufs: &[BufRange],
        _block: u64,
        _deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Err(Unsupported {
            stack: self.name(),
            coll: Coll::Allgather,
        })
    }

    /// Template-sharing key for [`crate::template::TemplateStore`]: two
    /// `build_coll` calls with equal keys must produce programs of the same
    /// *shape* whose scalars are affine in the message size (see
    /// `han_mpi::template`). Returning `None` (the default) opts the build
    /// out of templating entirely — correct for stacks whose algorithm
    /// choice depends on the message size in ways the key cannot pin.
    fn template_key(
        &self,
        _preset: &MachinePreset,
        _coll: Coll,
        _bytes: u64,
        _root: usize,
    ) -> Option<u64> {
        None
    }
}

/// For each sub-comm local rank, its local index within `parent`.
pub fn sublocals(parent: &Comm, sub: &Comm) -> Vec<usize> {
    let map: HashMap<usize, usize> = parent
        .ranks()
        .iter()
        .enumerate()
        .map(|(l, &w)| (w, l))
        .collect();
    sub.ranks()
        .iter()
        .map(|w| *map.get(w).expect("sub comm must be a subset of parent"))
        .collect()
}

/// `split_node`, but the leader of the root's node is the root itself —
/// the convention HAN and the hierarchical vendor stacks use so rooted
/// collectives need no extra intra-node hop at the root.
pub fn split_with_root(comm: &Comm, topo: &Topology, root_world: usize) -> (Vec<Comm>, Comm) {
    let (mut low, up) = comm.split_node(topo);
    let root_node = topo.node_of(root_world);
    let mut leaders: Vec<usize> = up.ranks().to_vec();
    for (i, c) in low.iter_mut().enumerate() {
        if topo.node_of(c.world_rank(0)) == root_node {
            // Reorder the low comm so the root is its rank 0 (leader).
            let mut ranks: Vec<usize> = c.ranks().to_vec();
            if let Some(pos) = ranks.iter().position(|&r| r == root_world) {
                ranks.swap(0, pos);
                leaders[i] = root_world;
                *c = Comm::from_ranks(ranks);
            }
        }
    }
    (low, Comm::from_ranks(leaders))
}

/// Build one collective as a standalone program over the whole machine.
pub fn build_coll(
    stack: &dyn MpiStack,
    preset: &MachinePreset,
    coll: Coll,
    bytes: u64,
    root: usize,
) -> Result<han_mpi::Program, Unsupported> {
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    let deps = Frontier::empty(n);
    let mut cx = BuildCtx::new(&mut b, preset);
    match coll {
        Coll::Bcast => {
            let bufs = cx.b.alloc_all(bytes);
            stack.bcast(&mut cx, &comm, root, &bufs, &deps);
        }
        Coll::Allreduce => {
            let bufs = cx.b.alloc_all(bytes);
            stack.allreduce(
                &mut cx,
                &comm,
                &bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &deps,
            );
        }
        Coll::Reduce => {
            let bufs = cx.b.alloc_all(bytes);
            stack.reduce(
                &mut cx,
                &comm,
                root,
                &bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &deps,
            )?;
        }
        Coll::Gather => {
            let src: Vec<BufRange> = (0..n).map(|r| cx.b.alloc(r, bytes)).collect();
            let dst = cx.b.alloc(root, bytes * n as u64);
            stack.gather(&mut cx, &comm, root, &src, dst, &deps)?;
        }
        Coll::Scatter => {
            let src = cx.b.alloc(root, bytes * n as u64);
            let dst: Vec<BufRange> = (0..n).map(|r| cx.b.alloc(r, bytes)).collect();
            stack.scatter(&mut cx, &comm, root, src, &dst, &deps)?;
        }
        Coll::Allgather => {
            let bufs = cx.b.alloc_all(bytes * n as u64);
            stack.allgather(&mut cx, &comm, &bufs, bytes, &deps)?;
        }
        Coll::Barrier => {
            stack.barrier(&mut cx, &comm, &deps)?;
        }
    }
    Ok(b.build())
}

/// Time one collective on a fresh machine: the IMB cost (max over ranks).
pub fn time_coll(
    stack: &dyn MpiStack,
    preset: &MachinePreset,
    coll: Coll,
    bytes: u64,
    root: usize,
) -> Result<Time, Unsupported> {
    let mut machine = Machine::from_preset(preset);
    time_coll_on(stack, &mut machine, preset, coll, bytes, root)
}

/// Time one collective reusing an existing machine (cheaper in sweeps).
pub fn time_coll_on(
    stack: &dyn MpiStack,
    machine: &mut Machine,
    preset: &MachinePreset,
    coll: Coll,
    bytes: u64,
    root: usize,
) -> Result<Time, Unsupported> {
    let prog = build_coll(stack, preset, coll, bytes, root)?;
    let opts = ExecOpts::timing(stack.flavor().p2p());
    Ok(execute(machine, &prog, &opts).makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    #[test]
    fn sublocals_maps_subset() {
        let parent = Comm::from_ranks(vec![3, 5, 7, 9]);
        let sub = Comm::from_ranks(vec![7, 3]);
        assert_eq!(sublocals(&parent, &sub), vec![2, 0]);
    }

    #[test]
    fn split_with_root_promotes_root_to_leader() {
        let preset = mini(3, 4);
        let comm = Comm::world(12);
        // Root 6 lives on node 1 (ranks 4-7).
        let (low, up) = split_with_root(&comm, &preset.topology, 6);
        assert_eq!(up.ranks(), &[0, 6, 8]);
        let node1 = &low[1];
        assert_eq!(node1.world_rank(0), 6, "root must lead its node");
        let mut sorted = node1.ranks().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![4, 5, 6, 7]);
    }

    #[test]
    fn split_with_root_noop_when_root_is_lowest() {
        let preset = mini(2, 3);
        let comm = Comm::world(6);
        let (low, up) = split_with_root(&comm, &preset.topology, 0);
        assert_eq!(up.ranks(), &[0, 3]);
        assert_eq!(low[0].ranks(), &[0, 1, 2]);
    }

    #[test]
    fn coll_names() {
        assert_eq!(Coll::Bcast.name(), "bcast");
        assert_eq!(Coll::Allgather.name(), "allgather");
    }
}
