//! The collective submodules HAN composes (paper section III).
//!
//! Inter-node (must support non-blocking operation):
//! * [`Libnbc`] — "a default legacy module": static binomial schedules, no
//!   internal segmentation, scalar reductions.
//! * [`Adapt`] — "a new module with an event-driven design": a menu of
//!   chain / binary / binomial algorithms, internal segmentation
//!   (`ibs`/`irs` in Table II), AVX reductions.
//!
//! Intra-node:
//! * [`Sm`] — shared-memory bounce buffers: one copy-in by the producer,
//!   one copy-out per consumer, with a flag synchronization per bounce
//!   fragment. Cheap for small segments, fragment overhead for large —
//!   "SM has better performance for small messages".
//! * [`Solo`] — one-sided (RMA): a window-synchronization epoch per
//!   operation but a single direct copy and AVX reductions — "SOLO
//!   performs significantly better as the communication size increases".
//!
//! All builders follow the frontier-composition convention of
//! [`crate::p2p`] so HAN's task pipeline can chain them.

use crate::frontier::Frontier;
use crate::p2p::{tree_bcast, tree_reduce};
use crate::tree::TreeShape;
use han_machine::NodeParams;
use han_mpi::{BufRange, Comm, DataType, OpKind, ProgramBuilder, ReduceOp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inter-node submodule selector (`imod` in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterModule {
    Libnbc,
    Adapt,
}

impl InterModule {
    pub const ALL: [InterModule; 2] = [InterModule::Libnbc, InterModule::Adapt];
}

impl fmt::Display for InterModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterModule::Libnbc => "libnbc",
            InterModule::Adapt => "adapt",
        })
    }
}

/// Intra-node submodule selector (`smod` in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntraModule {
    Sm,
    Solo,
}

impl IntraModule {
    pub const ALL: [IntraModule; 2] = [IntraModule::Sm, IntraModule::Solo];
}

impl fmt::Display for IntraModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntraModule::Sm => "sm",
            IntraModule::Solo => "solo",
        })
    }
}

/// Inter-node algorithm selector (`ibalg`/`iralg` in Table II). Only ADAPT
/// honours it; Libnbc always uses binomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterAlg {
    Chain,
    Binary,
    Binomial,
}

impl InterAlg {
    pub const ALL: [InterAlg; 3] = [InterAlg::Chain, InterAlg::Binary, InterAlg::Binomial];

    pub fn shape(self) -> TreeShape {
        match self {
            InterAlg::Chain => TreeShape::Chain,
            InterAlg::Binary => TreeShape::Binary,
            InterAlg::Binomial => TreeShape::Binomial,
        }
    }
}

impl fmt::Display for InterAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterAlg::Chain => "chain",
            InterAlg::Binary => "binary",
            InterAlg::Binomial => "binomial",
        })
    }
}

/// Libnbc: binomial trees, whole-message (no internal segmentation),
/// scalar reductions, plus a fixed schedule-construction overhead per call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Libnbc;

/// Cost of building/initiating a Libnbc schedule on each participant.
const LIBNBC_SETUP: han_sim::Time = han_sim::Time::from_ns(600);

impl Libnbc {
    pub fn ibcast(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let pre = setup_frontier(b, comm, deps, LIBNBC_SETUP);
        tree_bcast(b, comm, root, bufs, &pre, TreeShape::Binomial, None)
    }

    #[allow(clippy::too_many_arguments)]
    pub fn ireduce(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
        op: ReduceOp,
        dtype: DataType,
    ) -> Frontier {
        let pre = setup_frontier(b, comm, deps, LIBNBC_SETUP);
        // Libnbc reductions do not use AVX (paper section IV-A2).
        tree_reduce(
            b,
            comm,
            root,
            bufs,
            &pre,
            TreeShape::Binomial,
            None,
            op,
            dtype,
            false,
        )
    }
}

/// ADAPT: event-driven, algorithm menu + internal segmentation, AVX
/// reductions.
#[derive(Debug, Clone, Copy)]
pub struct Adapt {
    /// Inter-node broadcast algorithm (`ibalg`).
    pub balg: InterAlg,
    /// Inter-node reduce algorithm (`iralg`).
    pub ralg: InterAlg,
    /// Internal broadcast segment size (`ibs`), `None` = whole message.
    pub ibs: Option<u64>,
    /// Internal reduce segment size (`irs`).
    pub irs: Option<u64>,
}

impl Default for Adapt {
    fn default() -> Self {
        Adapt {
            balg: InterAlg::Binomial,
            ralg: InterAlg::Binomial,
            ibs: None,
            irs: None,
        }
    }
}

impl Adapt {
    pub fn ibcast(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        tree_bcast(b, comm, root, bufs, deps, self.balg.shape(), self.ibs)
    }

    #[allow(clippy::too_many_arguments)]
    pub fn ireduce(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
        op: ReduceOp,
        dtype: DataType,
    ) -> Frontier {
        tree_reduce(
            b,
            comm,
            root,
            bufs,
            deps,
            self.ralg.shape(),
            self.irs,
            op,
            dtype,
            true,
        )
    }
}

/// SM: intra-node shared-memory bounce-buffer collectives.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sm;

impl Sm {
    /// Per-fragment synchronization cost paid by each consumer: the
    /// producer raises a flag and the consumer polls it, one coherence
    /// round each way.
    fn frag_penalty(node: &NodeParams, bytes: u64) -> han_sim::Time {
        node.flag_latency * (2 * node.sm_fragments(bytes))
    }

    /// Intra-node broadcast: root copies into the shared bounce buffer;
    /// every other rank copies out.
    pub fn bcast(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        node: &NodeParams,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let n = comm.size();
        let mut out = Frontier::empty(n);
        if n == 1 {
            return deps.clone();
        }
        let bytes = bufs[0].len;
        let wroot = comm.world_rank(root);
        // Root's copy-in to the bounce buffer.
        let bounce = b.alloc(wroot, bytes.max(1)).slice(0, bytes);
        let cp_in = b.op(
            wroot,
            OpKind::Copy {
                bytes,
                src: Some(bufs[root]),
                dst: Some(bounce),
            },
            deps.get(root),
        );
        out.push(root, cp_in);
        for l in 0..n {
            if l == root {
                continue;
            }
            let wl = comm.world_rank(l);
            // Fragment flags, then the copy-out (depends on the producer's
            // copy-in via a cross-rank flag edge).
            let mut ldeps: Vec<han_mpi::OpId> = deps.get(l).to_vec();
            ldeps.push(cp_in);
            let flags = b.delay(wl, Sm::frag_penalty(node, bytes), &ldeps);
            let cp_out = b.op(
                wl,
                OpKind::CrossCopy {
                    from: wroot as u32,
                    bytes,
                    src: Some(bounce),
                    dst: Some(bufs[l]),
                },
                &[flags],
            );
            out.push(l, cp_out);
        }
        out
    }

    /// Intra-node reduce to `root` (in place at the root): children copy
    /// their contributions into per-child bounce slots; the root merges
    /// them at the *scalar* rate (SM does not use AVX — paper IV-A2).
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        node: &NodeParams,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
        op: ReduceOp,
        dtype: DataType,
    ) -> Frontier {
        let n = comm.size();
        if n == 1 {
            return deps.clone();
        }
        let bytes = bufs[0].len;
        let wroot = comm.world_rank(root);
        let mut out = Frontier::empty(n);
        let mut last_red: Option<han_mpi::OpId> = None;
        for l in 0..n {
            if l == root {
                continue;
            }
            let wl = comm.world_rank(l);
            // Child copy-in to its bounce slot (+ fragment flags).
            let slot = b.alloc(wl, bytes.max(1)).slice(0, bytes);
            let cp = b.op(
                wl,
                OpKind::Copy {
                    bytes,
                    src: Some(bufs[l]),
                    dst: Some(slot),
                },
                deps.get(l),
            );
            let flags = b.delay(wl, Sm::frag_penalty(node, bytes), &[cp]);
            out.push(l, flags);
            // Root merges this child's slot (scalar rate), serialized with
            // its other merges by the dependency chain.
            let mut rdeps: Vec<han_mpi::OpId> = deps.get(root).to_vec();
            rdeps.push(flags);
            if let Some(r) = last_red {
                rdeps.push(r);
            }
            let red = b.op(
                wroot,
                OpKind::ReduceFrom {
                    from: wl as u32,
                    bytes,
                    vectorized: false,
                    op,
                    dtype,
                    src: Some(slot),
                    dst: Some(bufs[root]),
                },
                &rdeps,
            );
            last_red = Some(red);
        }
        if let Some(r) = last_red {
            out.push(root, r);
        }
        out
    }
}

/// SOLO: intra-node one-sided collectives — a window-synchronization epoch
/// per operation, then direct single copies / AVX reductions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Solo;

impl Solo {
    /// Intra-node broadcast: consumers read the root's buffer directly.
    pub fn bcast(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        node: &NodeParams,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let n = comm.size();
        if n == 1 {
            return deps.clone();
        }
        let bytes = bufs[0].len;
        let wroot = comm.world_rank(root);
        let mut out = Frontier::empty(n);
        // Root exposes its buffer (window epoch).
        let expose = b.delay(wroot, node.solo_setup, deps.get(root));
        out.push(root, expose);
        for l in 0..n {
            if l == root {
                continue;
            }
            let wl = comm.world_rank(l);
            let mut ldeps: Vec<han_mpi::OpId> = deps.get(l).to_vec();
            ldeps.push(expose);
            let sync = b.delay(wl, node.solo_setup, &ldeps);
            let get = b.op(
                wl,
                OpKind::CrossCopy {
                    from: wroot as u32,
                    bytes,
                    src: Some(bufs[root]),
                    dst: Some(bufs[l]),
                },
                &[sync],
            );
            out.push(l, get);
        }
        out
    }

    /// Intra-node reduce to `root` (in place): the root reads children's
    /// buffers directly and merges at the AVX rate.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        b: &mut ProgramBuilder,
        comm: &Comm,
        node: &NodeParams,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
        op: ReduceOp,
        dtype: DataType,
    ) -> Frontier {
        let n = comm.size();
        if n == 1 {
            return deps.clone();
        }
        let bytes = bufs[0].len;
        let wroot = comm.world_rank(root);
        let mut out = Frontier::empty(n);
        let mut last: Option<han_mpi::OpId> = None;
        // Root's own window-sync epoch.
        let root_sync = b.delay(wroot, node.solo_setup, deps.get(root));
        for l in 0..n {
            if l == root {
                continue;
            }
            let wl = comm.world_rank(l);
            // Child exposes its buffer.
            let expose = b.delay(wl, node.solo_setup, deps.get(l));
            out.push(l, expose);
            let mut rdeps = vec![root_sync, expose];
            if let Some(r) = last {
                rdeps.push(r);
            }
            let red = b.op(
                wroot,
                OpKind::ReduceFrom {
                    from: wl as u32,
                    bytes,
                    vectorized: true,
                    op,
                    dtype,
                    src: Some(bufs[l]),
                    dst: Some(bufs[root]),
                },
                &rdeps,
            );
            last = Some(red);
        }
        if let Some(r) = last {
            out.push(root, r);
        }
        out
    }
}

/// Prefix every rank's dependency frontier with a fixed setup delay
/// (Libnbc's schedule construction).
fn setup_frontier(
    b: &mut ProgramBuilder,
    comm: &Comm,
    deps: &Frontier,
    dur: han_sim::Time,
) -> Frontier {
    let n = comm.size();
    let mut out = Frontier::empty(n);
    for l in 0..n {
        let d = b.delay(comm.world_rank(l), dur, deps.get(l));
        out.push(l, d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::{execute, execute_seeded, ExecOpts};

    fn single_node(ppn: usize) -> (Machine, Comm) {
        let m = Machine::from_preset(&mini(1, ppn));
        let c = Comm::world(ppn);
        (m, c)
    }

    fn time_intra_bcast(module: IntraModule, ppn: usize, bytes: u64) -> han_sim::Time {
        let (mut m, comm) = single_node(ppn);
        let mut b = ProgramBuilder::new(ppn);
        let bufs = b.alloc_all(bytes);
        let deps = Frontier::empty(ppn);
        match module {
            IntraModule::Sm => Sm.bcast(&mut b, &comm, &m.node.clone(), 0, &bufs, &deps),
            IntraModule::Solo => Solo.bcast(&mut b, &comm, &m.node.clone(), 0, &bufs, &deps),
        };
        let p = b.build();
        execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
    }

    #[test]
    fn sm_beats_solo_small_solo_beats_sm_large() {
        // The paper's heuristic: SOLO only pays off above ~512 KB segments.
        let small = 8 * 1024;
        let large = 4 << 20;
        assert!(
            time_intra_bcast(IntraModule::Sm, 8, small)
                < time_intra_bcast(IntraModule::Solo, 8, small),
            "SM should win at {small}B"
        );
        assert!(
            time_intra_bcast(IntraModule::Solo, 8, large)
                < time_intra_bcast(IntraModule::Sm, 8, large),
            "SOLO should win at {large}B"
        );
    }

    #[test]
    fn sm_bcast_delivers_data() {
        let (mut m, comm) = single_node(4);
        let mut b = ProgramBuilder::new(4);
        let bufs = b.alloc_all(16);
        let node = m.node;
        Sm.bcast(&mut b, &comm, &node, 1, &bufs, &Frontier::empty(4));
        let p = b.build();
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &p,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| mm.write(1, bufs2[1], &[7u8; 16]),
        );
        for r in 0..4 {
            assert_eq!(mem.read(r, bufs[r]), &[7u8; 16], "rank {r}");
        }
    }

    #[test]
    fn solo_bcast_delivers_data() {
        let (mut m, comm) = single_node(3);
        let mut b = ProgramBuilder::new(3);
        let bufs = b.alloc_all(8);
        let node = m.node;
        Solo.bcast(&mut b, &comm, &node, 0, &bufs, &Frontier::empty(3));
        let p = b.build();
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &p,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| mm.write(0, bufs2[0], &[1, 2, 3, 4, 5, 6, 7, 8]),
        );
        for r in 0..3 {
            assert_eq!(mem.read(r, bufs[r]), &[1, 2, 3, 4, 5, 6, 7, 8]);
        }
    }

    fn check_intra_reduce(module: IntraModule, ppn: usize, root: usize) {
        let (mut m, comm) = single_node(ppn);
        let mut b = ProgramBuilder::new(ppn);
        let bufs = b.alloc_all(8);
        let node = m.node;
        let deps = Frontier::empty(ppn);
        match module {
            IntraModule::Sm => Sm.reduce(
                &mut b,
                &comm,
                &node,
                root,
                &bufs,
                &deps,
                ReduceOp::Sum,
                DataType::Int32,
            ),
            IntraModule::Solo => Solo.reduce(
                &mut b,
                &comm,
                &node,
                root,
                &bufs,
                &deps,
                ReduceOp::Sum,
                DataType::Int32,
            ),
        };
        let p = b.build();
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &p,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..ppn {
                    let v = [(r + 1) as i32, ((r + 1) * 10) as i32];
                    let bytes: Vec<u8> = v.iter().flat_map(|x| x.to_le_bytes()).collect();
                    mm.write(r, bufs2[r], &bytes);
                }
            },
        );
        let total = (ppn * (ppn + 1) / 2) as i32;
        let expect: Vec<u8> = [total, total * 10]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        assert_eq!(mem.read(root, bufs[root]), expect.as_slice(), "{module}");
    }

    #[test]
    fn intra_reduce_sums_correctly() {
        check_intra_reduce(IntraModule::Sm, 4, 0);
        check_intra_reduce(IntraModule::Sm, 5, 2);
        check_intra_reduce(IntraModule::Solo, 4, 0);
        check_intra_reduce(IntraModule::Solo, 3, 1);
    }

    #[test]
    fn solo_reduce_uses_avx_and_is_faster_for_large() {
        let bytes = 8 << 20;
        let ppn = 8;
        let time_of = |module: IntraModule| {
            let (mut m, comm) = single_node(ppn);
            let mut b = ProgramBuilder::new(ppn);
            let bufs = b.alloc_all(bytes);
            let node = m.node;
            let deps = Frontier::empty(ppn);
            match module {
                IntraModule::Sm => Sm.reduce(
                    &mut b,
                    &comm,
                    &node,
                    0,
                    &bufs,
                    &deps,
                    ReduceOp::Sum,
                    DataType::Float32,
                ),
                IntraModule::Solo => Solo.reduce(
                    &mut b,
                    &comm,
                    &node,
                    0,
                    &bufs,
                    &deps,
                    ReduceOp::Sum,
                    DataType::Float32,
                ),
            };
            let p = b.build();
            execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let (sm, solo) = (time_of(IntraModule::Sm), time_of(IntraModule::Solo));
        assert!(
            solo.as_ps() * 2 < sm.as_ps(),
            "solo {solo} should be <0.5x sm {sm} at 8 MiB"
        );
    }

    #[test]
    fn adapt_algorithms_produce_different_timings() {
        // Inter-node: 8 single-rank nodes, 1 MiB, segmented.
        let preset = mini(8, 1);
        let time_of = |alg: InterAlg| {
            let mut m = Machine::from_preset(&preset);
            let comm = Comm::world(8);
            let mut b = ProgramBuilder::new(8);
            let bufs = b.alloc_all(1 << 20);
            let adapt = Adapt {
                balg: alg,
                ralg: alg,
                ibs: Some(128 * 1024),
                irs: Some(128 * 1024),
            };
            adapt.ibcast(&mut b, &comm, 0, &bufs, &Frontier::empty(8));
            let p = b.build();
            execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let chain = time_of(InterAlg::Chain);
        let binary = time_of(InterAlg::Binary);
        let binomial = time_of(InterAlg::Binomial);
        // All three must be distinct configurations with distinct costs.
        assert_ne!(chain, binary);
        assert_ne!(binary, binomial);
        // With enough segments, chain (max pipeline) should beat binomial
        // (log-depth but each rank forwards log(n) copies).
        assert!(chain < binomial, "chain {chain} vs binomial {binomial}");
    }

    #[test]
    fn libnbc_has_setup_overhead_vs_adapt() {
        let preset = mini(4, 1);
        let bytes = 1024u64;
        let time_libnbc = {
            let mut m = Machine::from_preset(&preset);
            let comm = Comm::world(4);
            let mut b = ProgramBuilder::new(4);
            let bufs = b.alloc_all(bytes);
            Libnbc.ibcast(&mut b, &comm, 0, &bufs, &Frontier::empty(4));
            let p = b.build();
            execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let time_adapt = {
            let mut m = Machine::from_preset(&preset);
            let comm = Comm::world(4);
            let mut b = ProgramBuilder::new(4);
            let bufs = b.alloc_all(bytes);
            Adapt::default().ibcast(&mut b, &comm, 0, &bufs, &Frontier::empty(4));
            let p = b.build();
            execute(&mut m, &p, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        assert!(time_libnbc > time_adapt);
    }
}
