//! Communication tree shapes.
//!
//! These are the algorithm menu the paper's submodules expose: ADAPT offers
//! chain, binary and binomial trees for `MPI_Ibcast`/`MPI_Ireduce`; Libnbc
//! uses binomial; the tuned baseline adds flat and k-ary variants. Trees
//! are expressed in *virtual ranks* (`vrank = (local - root) mod n`) so the
//! root is always vrank 0.

/// Tree shape for rooted collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeShape {
    /// Root sends to everyone directly.
    Flat,
    /// A linear pipeline 0 → 1 → … → n-1; maximum segment overlap, worst
    /// latency. ADAPT's "chain".
    Chain,
    /// Complete binary tree.
    Binary,
    /// Binomial tree: log₂(n) rounds, the classic small-message tree.
    Binomial,
    /// k-ary tree.
    Kary(u32),
}

impl TreeShape {
    pub const ALL_BASIC: [TreeShape; 3] =
        [TreeShape::Chain, TreeShape::Binary, TreeShape::Binomial];

    pub fn name(&self) -> String {
        match self {
            TreeShape::Flat => "flat".into(),
            TreeShape::Chain => "chain".into(),
            TreeShape::Binary => "binary".into(),
            TreeShape::Binomial => "binomial".into(),
            TreeShape::Kary(k) => format!("{k}-ary"),
        }
    }
}

/// Children of `vrank` in an `n`-rank tree, in send order (earliest-started
/// subtree first, matching Open MPI's convention of sending to the
/// farthest/biggest subtree first for binomial).
pub fn children(shape: TreeShape, n: usize, vrank: usize) -> Vec<usize> {
    debug_assert!(vrank < n);
    match shape {
        TreeShape::Flat => {
            if vrank == 0 {
                (1..n).collect()
            } else {
                Vec::new()
            }
        }
        TreeShape::Chain => {
            if vrank + 1 < n {
                vec![vrank + 1]
            } else {
                Vec::new()
            }
        }
        TreeShape::Binary => {
            let mut c = Vec::new();
            for child in [2 * vrank + 1, 2 * vrank + 2] {
                if child < n {
                    c.push(child);
                }
            }
            c
        }
        TreeShape::Binomial => {
            // vrank v's children are v + 2^k for every 2^k strictly below
            // v's lowest set bit (all powers of two for the root), largest
            // subtree first.
            let bound = if vrank == 0 {
                usize::MAX
            } else {
                vrank & vrank.wrapping_neg()
            };
            let mut c = Vec::new();
            let mut k = 1usize;
            while k < n {
                k <<= 1;
            }
            k >>= 1;
            while k > 0 {
                if k < bound {
                    let child = vrank + k;
                    if child < n {
                        c.push(child);
                    }
                }
                k >>= 1;
            }
            c
        }
        TreeShape::Kary(kk) => {
            let k = kk as usize;
            let mut c = Vec::new();
            for i in 0..k {
                let child = vrank * k + i + 1;
                if child < n {
                    c.push(child);
                }
            }
            c
        }
    }
}

/// Parent of `vrank`, or `None` for the root.
pub fn parent(shape: TreeShape, n: usize, vrank: usize) -> Option<usize> {
    debug_assert!(vrank < n);
    if vrank == 0 {
        return None;
    }
    Some(match shape {
        TreeShape::Flat => 0,
        TreeShape::Chain => vrank - 1,
        TreeShape::Binary => (vrank - 1) / 2,
        TreeShape::Binomial => vrank - (vrank & vrank.wrapping_neg()),
        TreeShape::Kary(k) => (vrank - 1) / k as usize,
    })
}

/// Depth of `vrank` (root = 0); the latency-critical path length.
pub fn depth(shape: TreeShape, n: usize, mut vrank: usize) -> usize {
    let mut d = 0;
    while let Some(p) = parent(shape, n, vrank) {
        vrank = p;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(shape: TreeShape, n: usize) {
        // Every non-root has exactly one parent, and parent/children agree.
        let mut seen = vec![false; n];
        seen[0] = true;
        for v in 0..n {
            for c in children(shape, n, v) {
                assert!(c < n);
                assert_eq!(parent(shape, n, c), Some(v), "{shape:?} n={n} child {c}");
                assert!(!seen[c], "{shape:?} n={n}: {c} reached twice");
                seen[c] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{shape:?} n={n}: not all ranks reachable"
        );
    }

    #[test]
    fn all_shapes_are_spanning_trees() {
        for n in [1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 33, 100] {
            for shape in [
                TreeShape::Flat,
                TreeShape::Chain,
                TreeShape::Binary,
                TreeShape::Binomial,
                TreeShape::Kary(3),
                TreeShape::Kary(4),
            ] {
                check_consistency(shape, n);
            }
        }
    }

    #[test]
    fn binomial_structure() {
        // n=8: root's children are 4, 2, 1 (largest subtree first).
        assert_eq!(children(TreeShape::Binomial, 8, 0), vec![4, 2, 1]);
        assert_eq!(children(TreeShape::Binomial, 8, 4), vec![6, 5]);
        assert_eq!(children(TreeShape::Binomial, 8, 6), vec![7]);
        assert_eq!(children(TreeShape::Binomial, 8, 1), Vec::<usize>::new());
        assert_eq!(parent(TreeShape::Binomial, 8, 7), Some(6));
        assert_eq!(parent(TreeShape::Binomial, 8, 5), Some(4));
    }

    #[test]
    fn binomial_depth_is_logarithmic() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let max_depth = (0..n)
                .map(|v| depth(TreeShape::Binomial, n, v))
                .max()
                .unwrap();
            assert_eq!(max_depth, n.trailing_zeros() as usize, "n={n}");
        }
    }

    #[test]
    fn chain_depth_is_linear() {
        assert_eq!(depth(TreeShape::Chain, 10, 9), 9);
    }

    #[test]
    fn binary_depth() {
        assert_eq!(depth(TreeShape::Binary, 7, 6), 2);
        assert_eq!(depth(TreeShape::Binary, 15, 14), 3);
    }

    #[test]
    fn single_rank_tree() {
        for shape in TreeShape::ALL_BASIC {
            assert!(children(shape, 1, 0).is_empty());
            assert_eq!(parent(shape, 1, 0), None);
        }
    }

    #[test]
    fn names() {
        assert_eq!(TreeShape::Binomial.name(), "binomial");
        assert_eq!(TreeShape::Kary(4).name(), "4-ary");
    }
}
