//! Per-rank dependency frontiers.
//!
//! Collective builders compose by frontier: a [`Frontier`] carries, for each
//! *communicator-local* rank, the set of ops that must complete before that
//! rank may start the next piece of work. HAN's task pipeline is exactly a
//! sequence of frontier-to-frontier compositions — `sbib(i)` starts from the
//! frontier left by `sbib(i-1)`.

use han_mpi::OpId;

/// A dependency frontier over the `n` local ranks of a communicator.
#[derive(Debug, Clone, Default)]
pub struct Frontier {
    deps: Vec<Vec<OpId>>,
}

impl Frontier {
    /// An empty frontier (no prerequisites) over `n` local ranks.
    pub fn empty(n: usize) -> Self {
        Frontier {
            deps: vec![Vec::new(); n],
        }
    }

    /// A frontier from exactly one op per rank.
    pub fn from_ops(ops: Vec<OpId>) -> Self {
        Frontier {
            deps: ops.into_iter().map(|o| vec![o]).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.deps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Dependency list for local rank `i`.
    pub fn get(&self, i: usize) -> &[OpId] {
        &self.deps[i]
    }

    /// Replace rank `i`'s dependencies.
    pub fn set(&mut self, i: usize, ops: Vec<OpId>) {
        self.deps[i] = ops;
    }

    /// Add one op to rank `i`'s frontier.
    pub fn push(&mut self, i: usize, op: OpId) {
        self.deps[i].push(op);
    }

    /// Union another frontier into this one (same size required).
    pub fn merge(&mut self, other: &Frontier) {
        assert_eq!(self.len(), other.len(), "frontier size mismatch");
        for (mine, theirs) in self.deps.iter_mut().zip(&other.deps) {
            mine.extend_from_slice(theirs);
        }
    }

    /// Project this frontier (over a parent comm) onto a sub-communicator:
    /// `locals[i]` is the parent-local index of sub-local rank `i`.
    pub fn project(&self, locals: &[usize]) -> Frontier {
        Frontier {
            deps: locals.iter().map(|&l| self.deps[l].clone()).collect(),
        }
    }

    /// Lift a sub-communicator frontier back into a parent-sized frontier:
    /// ranks not in `locals` get empty dependency lists.
    pub fn lift(&self, locals: &[usize], parent_size: usize) -> Frontier {
        assert_eq!(self.len(), locals.len());
        let mut out = Frontier::empty(parent_size);
        for (sub, &parent_local) in locals.iter().enumerate() {
            out.deps[parent_local] = self.deps[sub].clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_push() {
        let mut f = Frontier::empty(3);
        assert_eq!(f.len(), 3);
        assert!(f.get(1).is_empty());
        f.push(1, OpId(7));
        assert_eq!(f.get(1), &[OpId(7)]);
    }

    #[test]
    fn from_ops_one_each() {
        let f = Frontier::from_ops(vec![OpId(1), OpId(2)]);
        assert_eq!(f.get(0), &[OpId(1)]);
        assert_eq!(f.get(1), &[OpId(2)]);
    }

    #[test]
    fn merge_unions() {
        let mut a = Frontier::from_ops(vec![OpId(1), OpId(2)]);
        let b = Frontier::from_ops(vec![OpId(3), OpId(4)]);
        a.merge(&b);
        assert_eq!(a.get(0), &[OpId(1), OpId(3)]);
        assert_eq!(a.get(1), &[OpId(2), OpId(4)]);
    }

    #[test]
    fn project_and_lift_roundtrip() {
        let f = Frontier::from_ops(vec![OpId(10), OpId(11), OpId(12), OpId(13)]);
        let locals = vec![1, 3];
        let sub = f.project(&locals);
        assert_eq!(sub.get(0), &[OpId(11)]);
        assert_eq!(sub.get(1), &[OpId(13)]);
        let lifted = sub.lift(&locals, 4);
        assert_eq!(lifted.get(0), &[] as &[OpId]);
        assert_eq!(lifted.get(1), &[OpId(11)]);
        assert_eq!(lifted.get(3), &[OpId(13)]);
    }

    #[test]
    #[should_panic]
    fn merge_size_mismatch_panics() {
        let mut a = Frontier::empty(2);
        a.merge(&Frontier::empty(3));
    }
}
