//! Machine presets mirroring the paper's testbeds.
//!
//! Absolute values are calibrated (see `EXPERIMENTS.md`) to reproduce the
//! *shapes* of the paper's curves — protocol crossover points, the relative
//! cost of intra- vs inter-node movement, and the AVX/scalar reduction gap
//! — not the testbeds' absolute microseconds.

use crate::params::{NetParams, NodeParams};
use crate::topology::Topology;
use han_sim::Time;
use serde::{Deserialize, Serialize};

/// A complete machine description: topology + node + network parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachinePreset {
    pub name: &'static str,
    pub topology: Topology,
    pub node: NodeParams,
    pub net: NetParams,
}

/// Shaheen II-like: Cray XC40, dual-socket 16-core Haswell (32 ranks/node),
/// Cray Aries dragonfly interconnect.
pub fn shaheen2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "shaheen2",
        topology: Topology::new(nodes, 32),
        node: NodeParams {
            cores: 32,
            copy_rate: 14e9,
            bus_bw: 90e9,
            reduce_rate: 2.5e9,
            reduce_rate_avx: 11e9,
            flag_latency: Time::from_ns(180),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            // Aries: ~10 GB/s injection per direction, ~1.3 us latency.
            nic_bw: 10e9,
            latency: Time::from_ns(1_300),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

/// Shaheen II at a custom ppn (the paper's 64-node tuning experiments use
/// 12 processes per node).
pub fn shaheen2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = shaheen2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// Stampede2-like: 48-core Skylake nodes, Intel Omni-Path (100 Gb/s).
pub fn stampede2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "stampede2",
        topology: Topology::new(nodes, 48),
        node: NodeParams {
            cores: 48,
            copy_rate: 16e9,
            bus_bw: 110e9,
            reduce_rate: 2.8e9,
            reduce_rate_avx: 13e9,
            flag_latency: Time::from_ns(160),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            // Omni-Path 100 Gb/s ≈ 12.3 GB/s, ~1.1 us latency.
            nic_bw: 12.3e9,
            latency: Time::from_ns(1_100),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

/// Stampede2 at a custom ppn.
pub fn stampede2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = stampede2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// A small, fast machine for unit tests and examples: low rank counts keep
/// programs tiny while preserving every qualitative behaviour (eager vs
/// rendezvous, bus contention, AVX gap).
pub fn mini(nodes: usize, ppn: usize) -> MachinePreset {
    MachinePreset {
        name: "mini",
        topology: Topology::new(nodes, ppn),
        node: NodeParams {
            cores: ppn,
            copy_rate: 16e9,
            bus_bw: 60e9,
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            flag_latency: Time::from_ns(150),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

/// The link a hierarchy level communicates over, for reporting and docs:
/// the effective bandwidth and latency between peer groups of that level.
#[derive(Debug, Clone, Serialize)]
pub struct LevelLink {
    /// Level index (0 = outermost).
    pub level: usize,
    pub label: String,
    /// Bytes/s between two endpoints of this level.
    pub bandwidth: f64,
    pub latency: Time,
}

impl MachinePreset {
    /// Per-level link parameters, outermost first: level 0 is the network,
    /// deeper levels the (possibly socket-derated) node memory system.
    pub fn level_links(&self) -> Vec<LevelLink> {
        let depth = self.topology.depth();
        let mut links = vec![LevelLink {
            level: 0,
            label: "inter-node".to_string(),
            bandwidth: self.net.nic_bw,
            latency: self.net.latency,
        }];
        for k in 1..depth {
            // Every level but the innermost crosses the SM-domain boundary.
            let crosses = k + 1 < depth;
            links.push(LevelLink {
                level: k,
                label: if crosses {
                    "cross-socket".to_string()
                } else {
                    "intra-socket".to_string()
                },
                bandwidth: if crosses {
                    self.node.bus_bw / self.node.xsocket_bus_factor
                } else {
                    self.node.bus_bw
                },
                latency: self.node.flag_latency,
            });
        }
        links
    }
}

/// Split a preset's nodes into `sockets` shared-memory domains, turning a
/// two-level machine into a three-level one (`[nodes, sockets, ppn /
/// sockets]`). Intra-node transfers that cross the socket boundary pay
/// `xsocket_bus_factor` extra bus time. Panics unless ppn divides evenly.
pub fn socketize(base: MachinePreset, sockets: usize, xsocket_bus_factor: f64) -> MachinePreset {
    assert!(sockets > 0, "need at least one socket");
    let nodes = base.topology.nodes();
    let ppn = base.topology.ppn();
    assert_eq!(
        ppn % sockets,
        0,
        "{} ranks per node cannot split into {sockets} sockets",
        ppn
    );
    let mut m = base;
    m.topology = Topology::from_levels(&[nodes, sockets, ppn / sockets]);
    m.node.xsocket_bus_factor = xsocket_bus_factor;
    m
}

/// Shaheen II with its physical socket structure exposed: the XC40 node is
/// a dual-socket 16-core Haswell, so the three-level form is
/// `[nodes, 2, 16]` with a QPI-like cross-socket bus derating.
pub fn shaheen2_sockets(nodes: usize) -> MachinePreset {
    let mut m = socketize(shaheen2(nodes), 2, 1.6);
    m.name = "shaheen2s";
    m
}

/// A small three-level machine for tests: `nodes × sockets × cores`.
pub fn mini3(nodes: usize, sockets: usize, cores: usize) -> MachinePreset {
    let mut m = socketize(mini(nodes, sockets * cores), sockets, 1.5);
    m.name = "mini3";
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaheen_layout_matches_paper() {
        // Fig. 10/13 use 4096 processes = 128 nodes x 32 ranks.
        let m = shaheen2(128);
        assert_eq!(m.topology.world_size(), 4096);
        assert_eq!(m.topology.ppn(), 32);
    }

    #[test]
    fn stampede_layout_matches_paper() {
        // Fig. 12/14 use 1536 processes = 32 nodes x 48 ranks.
        let m = stampede2(32);
        assert_eq!(m.topology.world_size(), 1536);
    }

    #[test]
    fn tuning_setup_matches_paper() {
        // Figs. 4/8/9 use 64 nodes x 12 processes per node.
        let m = shaheen2_ppn(64, 12);
        assert_eq!(m.topology.world_size(), 768);
    }

    #[test]
    fn avx_gap_present_on_all_presets() {
        for m in [shaheen2(2), stampede2(2), mini(2, 2)] {
            assert!(
                m.node.reduce_rate_avx > 2.0 * m.node.reduce_rate,
                "{}: AVX reductions must be much faster than scalar",
                m.name
            );
        }
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        for m in [shaheen2(2), stampede2(2)] {
            assert!(m.node.flag_latency < m.net.latency, "{}", m.name);
            assert!(m.node.bus_bw > m.net.nic_bw, "{}", m.name);
        }
    }

    #[test]
    fn socketized_presets_keep_world_size() {
        let flat = shaheen2(4);
        let deep = shaheen2_sockets(4);
        assert_eq!(deep.topology.world_size(), flat.topology.world_size());
        assert_eq!(deep.topology.levels(), &[4, 2, 16]);
        assert!(deep.node.xsocket_bus_factor > 1.0);
        let m3 = mini3(3, 2, 2);
        assert_eq!(m3.topology.levels(), &[3, 2, 2]);
        assert_eq!(m3.topology.ppn(), 4);
    }

    #[test]
    fn level_links_are_ordered_fastest_innermost() {
        let deep = shaheen2_sockets(4);
        let links = deep.level_links();
        assert_eq!(links.len(), 3);
        assert!(links[0].bandwidth < links[1].bandwidth);
        assert!(links[1].bandwidth < links[2].bandwidth);
        assert!(links[0].latency > links[2].latency);
        // Two-level presets report the classic pair.
        let flat = mini(2, 4).level_links();
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[1].label, "intra-socket");
    }

    #[test]
    #[should_panic]
    fn socketize_requires_even_split() {
        socketize(mini(2, 5), 2, 1.5);
    }
}
