//! Machine presets mirroring the paper's testbeds.
//!
//! Absolute values are calibrated (see `EXPERIMENTS.md`) to reproduce the
//! *shapes* of the paper's curves — protocol crossover points, the relative
//! cost of intra- vs inter-node movement, and the AVX/scalar reduction gap
//! — not the testbeds' absolute microseconds.

use crate::params::{NetParams, NodeParams};
use crate::topology::Topology;
use han_sim::Time;
use serde::{Deserialize, Serialize};

/// A complete machine description: topology + node + network parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachinePreset {
    pub name: &'static str,
    pub topology: Topology,
    pub node: NodeParams,
    pub net: NetParams,
}

/// Shaheen II-like: Cray XC40, dual-socket 16-core Haswell (32 ranks/node),
/// Cray Aries dragonfly interconnect.
pub fn shaheen2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "shaheen2",
        topology: Topology::new(nodes, 32),
        node: NodeParams {
            cores: 32,
            copy_rate: 14e9,
            bus_bw: 90e9,
            reduce_rate: 2.5e9,
            reduce_rate_avx: 11e9,
            flag_latency: Time::from_ns(180),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
        },
        net: NetParams {
            // Aries: ~10 GB/s injection per direction, ~1.3 us latency.
            nic_bw: 10e9,
            latency: Time::from_ns(1_300),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

/// Shaheen II at a custom ppn (the paper's 64-node tuning experiments use
/// 12 processes per node).
pub fn shaheen2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = shaheen2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// Stampede2-like: 48-core Skylake nodes, Intel Omni-Path (100 Gb/s).
pub fn stampede2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "stampede2",
        topology: Topology::new(nodes, 48),
        node: NodeParams {
            cores: 48,
            copy_rate: 16e9,
            bus_bw: 110e9,
            reduce_rate: 2.8e9,
            reduce_rate_avx: 13e9,
            flag_latency: Time::from_ns(160),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
        },
        net: NetParams {
            // Omni-Path 100 Gb/s ≈ 12.3 GB/s, ~1.1 us latency.
            nic_bw: 12.3e9,
            latency: Time::from_ns(1_100),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

/// Stampede2 at a custom ppn.
pub fn stampede2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = stampede2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// A small, fast machine for unit tests and examples: low rank counts keep
/// programs tiny while preserving every qualitative behaviour (eager vs
/// rendezvous, bus contention, AVX gap).
pub fn mini(nodes: usize, ppn: usize) -> MachinePreset {
    MachinePreset {
        name: "mini",
        topology: Topology::new(nodes, ppn),
        node: NodeParams {
            cores: ppn,
            copy_rate: 16e9,
            bus_bw: 60e9,
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            flag_latency: Time::from_ns(150),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
        },
        net: NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaheen_layout_matches_paper() {
        // Fig. 10/13 use 4096 processes = 128 nodes x 32 ranks.
        let m = shaheen2(128);
        assert_eq!(m.topology.world_size(), 4096);
        assert_eq!(m.topology.ppn(), 32);
    }

    #[test]
    fn stampede_layout_matches_paper() {
        // Fig. 12/14 use 1536 processes = 32 nodes x 48 ranks.
        let m = stampede2(32);
        assert_eq!(m.topology.world_size(), 1536);
    }

    #[test]
    fn tuning_setup_matches_paper() {
        // Figs. 4/8/9 use 64 nodes x 12 processes per node.
        let m = shaheen2_ppn(64, 12);
        assert_eq!(m.topology.world_size(), 768);
    }

    #[test]
    fn avx_gap_present_on_all_presets() {
        for m in [shaheen2(2), stampede2(2), mini(2, 2)] {
            assert!(
                m.node.reduce_rate_avx > 2.0 * m.node.reduce_rate,
                "{}: AVX reductions must be much faster than scalar",
                m.name
            );
        }
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        for m in [shaheen2(2), stampede2(2)] {
            assert!(m.node.flag_latency < m.net.latency, "{}", m.name);
            assert!(m.node.bus_bw > m.net.nic_bw, "{}", m.name);
        }
    }
}
