//! Machine presets mirroring the paper's testbeds.
//!
//! Absolute values are calibrated (see `EXPERIMENTS.md`) to reproduce the
//! *shapes* of the paper's curves — protocol crossover points, the relative
//! cost of intra- vs inter-node movement, and the AVX/scalar reduction gap
//! — not the testbeds' absolute microseconds.

use crate::params::{LevelParams, LevelVec, NetParams, NodeParams, RailPolicy};
use crate::topology::{Topology, MAX_LEVELS};
use han_sim::Time;
use serde::{Deserialize, Error, Serialize, Value};

/// A complete machine description: topology + node + network parameters,
/// plus optional per-level link overrides for heterogeneous machines.
#[derive(Debug, Clone, Copy)]
pub struct MachinePreset {
    pub name: &'static str,
    pub topology: Topology,
    pub node: NodeParams,
    pub net: NetParams,
    /// Per-level link-parameter overrides, outermost first. `None` derives
    /// the level's parameters from `node`/`net` exactly as the uniform
    /// model always has; `Some` replaces them wholesale (heterogeneous
    /// machines: NVLink-ish inner levels, GPU launch overheads, ...).
    pub level_overrides: [Option<LevelParams>; MAX_LEVELS],
}

/// The neutral override set: every level derived from `node`/`net`.
pub const NO_OVERRIDES: [Option<LevelParams>; MAX_LEVELS] = [None; MAX_LEVELS];

// Hand-written serde keeps the historical 4-field JSON form whenever no
// level is overridden, so uniform preset fingerprints — and the persisted
// cost caches and tuned tables keyed by them — survive the heterogeneous
// refactor. Overridden levels append a `level_overrides` list of
// `{level, params}` pairs, which also guarantees heterogeneous presets
// can never alias a uniform fingerprint.
impl Serialize for MachinePreset {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("name".to_string(), self.name.to_value()),
            ("topology".to_string(), self.topology.to_value()),
            ("node".to_string(), self.node.to_value()),
            ("net".to_string(), self.net.to_value()),
        ];
        if self.level_overrides.iter().any(Option::is_some) {
            let seq = self
                .level_overrides
                .iter()
                .enumerate()
                .filter_map(|(k, o)| {
                    o.as_ref().map(|p| {
                        Value::Map(vec![
                            ("level".to_string(), Value::UInt(k as u64)),
                            ("params".to_string(), p.to_value()),
                        ])
                    })
                })
                .collect();
            map.push(("level_overrides".to_string(), Value::Seq(seq)));
        }
        Value::Map(map)
    }
}

impl Deserialize for MachinePreset {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        let mut level_overrides = NO_OVERRIDES;
        if let Some(seq) = v.get("level_overrides") {
            let entries = seq
                .as_array()
                .ok_or_else(|| Error::custom("level_overrides must be a list"))?;
            for e in entries {
                let k = e
                    .get("level")
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| Error::custom("override needs a level index"))?
                    as usize;
                if k >= MAX_LEVELS {
                    return Err(Error::custom(format!("override level {k} out of range")));
                }
                let params = e
                    .get("params")
                    .ok_or_else(|| Error::custom("override needs params"))?;
                level_overrides[k] = Some(LevelParams::from_value(params)?);
            }
        }
        Ok(MachinePreset {
            name: <&'static str>::from_value(field("name")?)?,
            topology: Topology::from_value(field("topology")?)?,
            node: NodeParams::from_value(field("node")?)?,
            net: NetParams::from_value(field("net")?)?,
            level_overrides,
        })
    }
}

/// Shaheen II-like: Cray XC40, dual-socket 16-core Haswell (32 ranks/node),
/// Cray Aries dragonfly interconnect.
pub fn shaheen2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "shaheen2",
        topology: Topology::new(nodes, 32),
        node: NodeParams {
            cores: 32,
            copy_rate: 14e9,
            bus_bw: 90e9,
            reduce_rate: 2.5e9,
            reduce_rate_avx: 11e9,
            flag_latency: Time::from_ns(180),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            // Aries: ~10 GB/s injection per direction, ~1.3 us latency.
            nic_bw: 10e9,
            latency: Time::from_ns(1_300),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 1,
            rail_policy: RailPolicy::RoundRobin,
        },
        level_overrides: NO_OVERRIDES,
    }
}

/// Shaheen II at a custom ppn (the paper's 64-node tuning experiments use
/// 12 processes per node).
pub fn shaheen2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = shaheen2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// Stampede2-like: 48-core Skylake nodes, Intel Omni-Path (100 Gb/s).
pub fn stampede2(nodes: usize) -> MachinePreset {
    MachinePreset {
        name: "stampede2",
        topology: Topology::new(nodes, 48),
        node: NodeParams {
            cores: 48,
            copy_rate: 16e9,
            bus_bw: 110e9,
            reduce_rate: 2.8e9,
            reduce_rate_avx: 13e9,
            flag_latency: Time::from_ns(160),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            // Omni-Path 100 Gb/s ≈ 12.3 GB/s, ~1.1 us latency.
            nic_bw: 12.3e9,
            latency: Time::from_ns(1_100),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 1,
            rail_policy: RailPolicy::RoundRobin,
        },
        level_overrides: NO_OVERRIDES,
    }
}

/// Stampede2 at a custom ppn.
pub fn stampede2_ppn(nodes: usize, ppn: usize) -> MachinePreset {
    let mut m = stampede2(nodes);
    m.topology = Topology::new(nodes, ppn);
    m
}

/// A small, fast machine for unit tests and examples: low rank counts keep
/// programs tiny while preserving every qualitative behaviour (eager vs
/// rendezvous, bus contention, AVX gap).
pub fn mini(nodes: usize, ppn: usize) -> MachinePreset {
    MachinePreset {
        name: "mini",
        topology: Topology::new(nodes, ppn),
        node: NodeParams {
            cores: ppn,
            copy_rate: 16e9,
            bus_bw: 60e9,
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            flag_latency: Time::from_ns(150),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 1,
            rail_policy: RailPolicy::RoundRobin,
        },
        level_overrides: NO_OVERRIDES,
    }
}

/// Per-level parameters a uniform machine implies, outermost first: level
/// 0 is the network, deeper levels the (possibly socket-derated) node
/// memory system. This is exactly the costing the executor has always
/// applied, written down per level; [`MachinePreset::level_params`] starts
/// from it and applies overrides.
pub fn uniform_level_params(topo: &Topology, node: &NodeParams, net: &NetParams) -> LevelVec {
    let depth = topo.depth();
    let mut levels = Vec::with_capacity(depth);
    levels.push(LevelParams {
        bandwidth: net.nic_bw,
        latency: net.latency,
        reduce_rate: node.reduce_rate,
        reduce_rate_avx: node.reduce_rate_avx,
        launch: Time::ZERO,
    });
    for k in 1..depth {
        // Every level but the innermost crosses the SM-domain boundary.
        let crosses = k + 1 < depth;
        levels.push(LevelParams {
            bandwidth: if crosses {
                node.bus_bw / node.xsocket_bus_factor
            } else {
                node.bus_bw
            },
            latency: node.flag_latency,
            reduce_rate: node.reduce_rate,
            reduce_rate_avx: node.reduce_rate_avx,
            launch: Time::ZERO,
        });
    }
    LevelVec::from_slice(&levels)
}

/// Reporting label for level `k` of a depth-`depth` hierarchy.
pub fn level_label(depth: usize, k: usize) -> &'static str {
    if k == 0 {
        "inter-node"
    } else if k + 1 < depth {
        "cross-domain"
    } else {
        "intra-domain"
    }
}

impl MachinePreset {
    /// The machine's per-level link parameters, outermost first: the
    /// uniform derivation from `node`/`net` with any `level_overrides`
    /// applied on top. With no overrides this carries exactly the values
    /// the pre-heterogeneous model used, so costing is bit-identical.
    pub fn level_params(&self) -> LevelVec {
        let mut lv = uniform_level_params(&self.topology, &self.node, &self.net);
        for k in 0..self.topology.depth() {
            if let Some(p) = self.level_overrides[k] {
                *lv.get_mut(k) = p;
            }
        }
        lv
    }

    /// Is any level's link physics overridden (heterogeneous machine)?
    pub fn is_heterogeneous(&self) -> bool {
        self.level_overrides[..self.topology.depth()]
            .iter()
            .any(Option::is_some)
    }

    /// Override level `k`'s link parameters (builder style).
    pub fn with_level_override(mut self, k: usize, params: LevelParams) -> Self {
        assert!(k < self.topology.depth(), "level {k} out of range");
        self.level_overrides[k] = Some(params);
        self
    }

    /// Use `rails` NIC rails per node under `policy` (builder style).
    pub fn with_rails(mut self, rails: usize, policy: RailPolicy) -> Self {
        assert!(rails >= 1, "need at least one rail");
        self.net.rails = rails;
        self.net.rail_policy = policy;
        self
    }
}

/// Split a preset's nodes into `sockets` shared-memory domains, turning a
/// two-level machine into a three-level one (`[nodes, sockets, ppn /
/// sockets]`). Intra-node transfers that cross the socket boundary pay
/// `xsocket_bus_factor` extra bus time. Panics unless ppn divides evenly.
pub fn socketize(base: MachinePreset, sockets: usize, xsocket_bus_factor: f64) -> MachinePreset {
    assert!(sockets > 0, "need at least one socket");
    let nodes = base.topology.nodes();
    let ppn = base.topology.ppn();
    assert_eq!(
        ppn % sockets,
        0,
        "{} ranks per node cannot split into {sockets} sockets",
        ppn
    );
    let mut m = base;
    m.topology = Topology::from_levels(&[nodes, sockets, ppn / sockets]);
    m.node.xsocket_bus_factor = xsocket_bus_factor;
    m
}

/// Shaheen II with its physical socket structure exposed: the XC40 node is
/// a dual-socket 16-core Haswell, so the three-level form is
/// `[nodes, 2, 16]` with a QPI-like cross-socket bus derating.
pub fn shaheen2_sockets(nodes: usize) -> MachinePreset {
    let mut m = socketize(shaheen2(nodes), 2, 1.6);
    m.name = "shaheen2s";
    m
}

/// A small three-level machine for tests: `nodes × sockets × cores`.
pub fn mini3(nodes: usize, sockets: usize, cores: usize) -> MachinePreset {
    let mut m = socketize(mini(nodes, sockets * cores), sockets, 1.5);
    m.name = "mini3";
    m
}

/// A DGX-like GPU node cluster: `nodes × gpus`, an NVLink-ish intra level
/// (very high bandwidth, fast vectorized reduction, but a high fixed
/// launch overhead per operation) over a striped multi-rail inter-node
/// fabric — the HiCCL hardware shape (hierarchy of `{nodes, devices}` with
/// a different transport per level and NIC striping).
pub fn dgx_like(nodes: usize, gpus: usize) -> MachinePreset {
    let mut m = MachinePreset {
        name: "dgx",
        topology: Topology::new(nodes, gpus),
        node: NodeParams {
            cores: gpus,
            copy_rate: 40e9,
            bus_bw: 200e9,
            reduce_rate: 20e9,
            reduce_rate_avx: 120e9,
            flag_latency: Time::from_ns(400),
            sm_chunk: 512 * 1024,
            solo_setup: Time::from_us(4),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            // 4 × 200 Gb/s-class rails, striped.
            nic_bw: 25e9,
            latency: Time::from_ns(1_500),
            dma_bus_factor: 0.5,
            core_bw: None,
            rails: 4,
            rail_policy: RailPolicy::Stripe,
        },
        level_overrides: NO_OVERRIDES,
    };
    // NVLink-ish device level: ~12x the network's per-rail bandwidth,
    // low-latency sync, fast on-device reductions, but every operation
    // pays a kernel-launch cost.
    m.level_overrides[1] = Some(LevelParams {
        bandwidth: 300e9,
        latency: Time::from_ns(700),
        reduce_rate: 30e9,
        reduce_rate_avx: 150e9,
        launch: Time::from_us(3),
    });
    m
}

/// A HiCCL-style heterogeneous hierarchy (`{nodes, boards, devices,
/// tiles}`-like): `extents` outermost first, each inner level a
/// progressively faster link. Level 0 keeps the network parameters; level
/// `k >= 1` gets `2^k` times the base bus bandwidth, halved latency per
/// level, and a launch overhead that shrinks toward the innermost level
/// (outer GPU levels batch bigger launches). Used by `repro hetero` for
/// the depth-scaling experiment.
pub fn gpu_hier(extents: &[usize]) -> MachinePreset {
    assert!(extents.len() >= 2, "gpu_hier needs at least two levels");
    let depth = extents.len();
    let mut m = MachinePreset {
        name: "gpu_hier",
        topology: Topology::from_levels(extents),
        node: NodeParams {
            cores: extents[1..].iter().product(),
            copy_rate: 40e9,
            bus_bw: 100e9,
            reduce_rate: 20e9,
            reduce_rate_avx: 80e9,
            flag_latency: Time::from_ns(500),
            sm_chunk: 512 * 1024,
            solo_setup: Time::from_us(4),
            xsocket_bus_factor: 1.0,
        },
        net: NetParams {
            nic_bw: 25e9,
            latency: Time::from_ns(1_500),
            dma_bus_factor: 0.5,
            core_bw: None,
            rails: 2,
            rail_policy: RailPolicy::Stripe,
        },
        level_overrides: NO_OVERRIDES,
    };
    for k in 1..depth {
        let speedup = (1u64 << k) as f64;
        m.level_overrides[k] = Some(LevelParams {
            bandwidth: 100e9 * speedup,
            latency: Time::from_ns((1000u64 >> k).max(50)),
            reduce_rate: 20e9 * speedup,
            reduce_rate_avx: 80e9 * speedup,
            launch: Time::from_ns(4_000u64 >> (k - 1)),
        });
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaheen_layout_matches_paper() {
        // Fig. 10/13 use 4096 processes = 128 nodes x 32 ranks.
        let m = shaheen2(128);
        assert_eq!(m.topology.world_size(), 4096);
        assert_eq!(m.topology.ppn(), 32);
    }

    #[test]
    fn stampede_layout_matches_paper() {
        // Fig. 12/14 use 1536 processes = 32 nodes x 48 ranks.
        let m = stampede2(32);
        assert_eq!(m.topology.world_size(), 1536);
    }

    #[test]
    fn tuning_setup_matches_paper() {
        // Figs. 4/8/9 use 64 nodes x 12 processes per node.
        let m = shaheen2_ppn(64, 12);
        assert_eq!(m.topology.world_size(), 768);
    }

    #[test]
    fn avx_gap_present_on_all_presets() {
        for m in [shaheen2(2), stampede2(2), mini(2, 2)] {
            assert!(
                m.node.reduce_rate_avx > 2.0 * m.node.reduce_rate,
                "{}: AVX reductions must be much faster than scalar",
                m.name
            );
        }
    }

    #[test]
    fn intra_node_faster_than_inter_node() {
        for m in [shaheen2(2), stampede2(2)] {
            assert!(m.node.flag_latency < m.net.latency, "{}", m.name);
            assert!(m.node.bus_bw > m.net.nic_bw, "{}", m.name);
        }
    }

    #[test]
    fn socketized_presets_keep_world_size() {
        let flat = shaheen2(4);
        let deep = shaheen2_sockets(4);
        assert_eq!(deep.topology.world_size(), flat.topology.world_size());
        assert_eq!(deep.topology.levels(), &[4, 2, 16]);
        assert!(deep.node.xsocket_bus_factor > 1.0);
        let m3 = mini3(3, 2, 2);
        assert_eq!(m3.topology.levels(), &[3, 2, 2]);
        assert_eq!(m3.topology.ppn(), 4);
    }

    #[test]
    fn level_params_are_ordered_fastest_innermost() {
        let deep = shaheen2_sockets(4);
        let lv = deep.level_params();
        assert_eq!(lv.depth(), 3);
        assert!(lv.get(0).bandwidth < lv.get(1).bandwidth);
        assert!(lv.get(1).bandwidth < lv.get(2).bandwidth);
        assert!(lv.get(0).latency > lv.get(2).latency);
        // Two-level presets report the classic pair.
        let flat = mini(2, 4).level_params();
        assert_eq!(flat.depth(), 2);
        assert_eq!(flat.get(0).bandwidth, 10e9);
        assert_eq!(flat.get(1).bandwidth, 60e9);
        assert_eq!(level_label(2, 1), "intra-domain");
        assert_eq!(level_label(3, 1), "cross-domain");
        assert_eq!(level_label(3, 0), "inter-node");
    }

    #[test]
    fn uniform_derivation_matches_node_and_net_exactly() {
        // The derived per-level params must carry the *identical* f64s the
        // uniform cost model reads, so per-level costing is bit-identical.
        let m = mini3(2, 2, 2);
        let lv = m.level_params();
        assert!(!m.is_heterogeneous());
        assert_eq!(lv.get(0).bandwidth, m.net.nic_bw);
        assert_eq!(lv.get(0).latency, m.net.latency);
        assert_eq!(
            lv.get(1).bandwidth,
            m.node.bus_bw / m.node.xsocket_bus_factor
        );
        assert_eq!(lv.get(2).bandwidth, m.node.bus_bw);
        for k in 1..3 {
            assert_eq!(lv.get(k).latency, m.node.flag_latency);
            assert_eq!(lv.get(k).reduce_rate, m.node.reduce_rate);
            assert_eq!(lv.get(k).reduce_rate_avx, m.node.reduce_rate_avx);
            assert_eq!(lv.get(k).launch, Time::ZERO);
        }
    }

    #[test]
    fn uniform_preset_serde_is_byte_stable() {
        // Golden JSON captured before the heterogeneous refactor: the
        // uniform presets must keep these exact bytes so persisted cache
        // fingerprints and tuned tables from earlier PRs stay valid.
        let json = serde_json::to_string(&mini(4, 4)).expect("serialize");
        assert_eq!(
            json,
            r#"{"name":"mini","topology":{"nodes":4,"ppn":4},"node":{"cores":4,"copy_rate":16000000000.0,"bus_bw":60000000000.0,"reduce_rate":3000000000.0,"reduce_rate_avx":12000000000.0,"flag_latency":150000,"sm_chunk":8192,"solo_setup":2000000},"net":{"nic_bw":10000000000.0,"latency":1000000,"dma_bus_factor":1.0,"core_bw":null}}"#
        );
        let json3 = serde_json::to_string(&mini3(2, 2, 2)).expect("serialize");
        assert_eq!(
            json3,
            r#"{"name":"mini3","topology":{"levels":[2,2,2]},"node":{"cores":4,"copy_rate":16000000000.0,"bus_bw":60000000000.0,"reduce_rate":3000000000.0,"reduce_rate_avx":12000000000.0,"flag_latency":150000,"sm_chunk":8192,"solo_setup":2000000,"xsocket_bus_factor":1.5},"net":{"nic_bw":10000000000.0,"latency":1000000,"dma_bus_factor":1.0,"core_bw":null}}"#
        );
    }

    #[test]
    fn preset_serde_roundtrips_with_overrides_and_rails() {
        for p in [dgx_like(2, 4), gpu_hier(&[2, 2, 2]), mini(2, 2)] {
            let json = serde_json::to_string(&p).expect("serialize");
            let back: MachinePreset = serde_json::from_str(&json).expect("parse");
            assert_eq!(back.name, p.name);
            assert_eq!(back.topology, p.topology);
            assert_eq!(back.net.rails, p.net.rails);
            assert_eq!(back.net.rail_policy, p.net.rail_policy);
            assert_eq!(back.level_overrides, p.level_overrides);
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                json,
                "re-serialization of {} must be stable",
                p.name
            );
        }
        // Heterogeneous JSON must be distinguishable from uniform.
        let hetero = serde_json::to_string(&dgx_like(2, 4)).unwrap();
        assert!(hetero.contains("level_overrides"), "{hetero}");
        assert!(hetero.contains("\"rails\":4"), "{hetero}");
    }

    #[test]
    fn gpu_presets_are_heterogeneous_and_fast_inside() {
        let d = dgx_like(2, 4);
        assert!(d.is_heterogeneous());
        let lv = d.level_params();
        assert!(lv.get(1).bandwidth > 10.0 * lv.get(0).bandwidth);
        assert!(lv.get(1).launch > Time::ZERO, "GPU level has launch cost");
        let h = gpu_hier(&[2, 2, 2, 2]);
        let lv = h.level_params();
        assert_eq!(lv.depth(), 4);
        for k in 1..4 {
            assert!(
                lv.get(k).bandwidth > lv.get(k - 1).bandwidth,
                "inner levels must be faster"
            );
            assert!(lv.get(k).latency < lv.get(0).latency);
        }
    }

    #[test]
    fn with_helpers_compose() {
        let p = mini(2, 2)
            .with_rails(2, RailPolicy::RoundRobin)
            .with_level_override(
                1,
                LevelParams {
                    bandwidth: 123e9,
                    latency: Time::from_ns(10),
                    reduce_rate: 1e9,
                    reduce_rate_avx: 2e9,
                    launch: Time::ZERO,
                },
            );
        assert_eq!(p.net.rails, 2);
        assert!(p.is_heterogeneous());
        assert_eq!(p.level_params().get(1).bandwidth, 123e9);
    }

    #[test]
    #[should_panic]
    fn socketize_requires_even_split() {
        socketize(mini(2, 5), 2, 1.5);
    }
}
