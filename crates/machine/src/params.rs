//! Hardware parameter sets for nodes and network.
//!
//! These are the *physical* knobs; per-MPI-library protocol knobs live in
//! [`crate::flavor`]. Values are chosen so the simulated machines reproduce
//! the qualitative curves of the paper's testbeds (see `EXPERIMENTS.md` for
//! the calibration notes); nothing downstream depends on their absolute
//! magnitudes.

use han_sim::Time;
use serde::{Deserialize, Error, Serialize, Value};

/// Per-node hardware parameters.
#[derive(Debug, Clone, Copy)]
pub struct NodeParams {
    /// Cores per node (capacity; informational — ppn comes from topology).
    pub cores: usize,
    /// Single-core memcpy rate, bytes/s. Shared-memory collectives move
    /// data at this rate on the copying rank's CPU.
    pub copy_rate: f64,
    /// Aggregate per-node memory bandwidth, bytes/s, shared by all ranks on
    /// the node *and* by NIC DMA. Contention on this resource is one of the
    /// two causes of imperfect `ib`/`sb` overlap (paper section III-A2).
    pub bus_bw: f64,
    /// Scalar (non-vectorized) local reduction rate, bytes/s. Used by the
    /// SM and Libnbc submodules, which the paper notes do not use AVX.
    pub reduce_rate: f64,
    /// Vectorized (AVX) local reduction rate, bytes/s. Used by ADAPT and
    /// SOLO (paper section IV-A2).
    pub reduce_rate_avx: f64,
    /// Latency for an intra-node synchronization flag to become visible to
    /// another rank (cache-coherence round trip).
    pub flag_latency: Time,
    /// Size of one SM bounce-buffer fragment; the SM submodule pays one
    /// flag round per fragment, which is why it loses to SOLO on large
    /// segments (paper section III: "SM has better performance for small
    /// messages while SOLO performs significantly better as the
    /// communication size increases").
    pub sm_chunk: u64,
    /// Fixed setup cost of a SOLO (one-sided) operation: window
    /// synchronization/exposure epochs.
    pub solo_setup: Time,
    /// Memory-bus time multiplier for intra-node transfers that cross a
    /// shared-memory-domain boundary (socket/NUMA interconnect hop on a
    /// 3-level topology). 1.0 models a socket-uniform node and is the
    /// value for every two-level preset; only deeper topologies ever
    /// observe other values, so two-level virtual times are unchanged.
    pub xsocket_bus_factor: f64,
}

// Hand-written serde keeps the historical 8-field JSON form whenever the
// cross-socket factor is neutral, so two-level preset fingerprints (and
// the persisted cost caches keyed by them) survive the N-level refactor.
impl Serialize for NodeParams {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("cores".to_string(), self.cores.to_value()),
            ("copy_rate".to_string(), self.copy_rate.to_value()),
            ("bus_bw".to_string(), self.bus_bw.to_value()),
            ("reduce_rate".to_string(), self.reduce_rate.to_value()),
            (
                "reduce_rate_avx".to_string(),
                self.reduce_rate_avx.to_value(),
            ),
            ("flag_latency".to_string(), self.flag_latency.to_value()),
            ("sm_chunk".to_string(), self.sm_chunk.to_value()),
            ("solo_setup".to_string(), self.solo_setup.to_value()),
        ];
        if self.xsocket_bus_factor != 1.0 {
            map.push((
                "xsocket_bus_factor".to_string(),
                self.xsocket_bus_factor.to_value(),
            ));
        }
        Value::Map(map)
    }
}

impl Deserialize for NodeParams {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        Ok(NodeParams {
            cores: usize::from_value(field("cores")?)?,
            copy_rate: f64::from_value(field("copy_rate")?)?,
            bus_bw: f64::from_value(field("bus_bw")?)?,
            reduce_rate: f64::from_value(field("reduce_rate")?)?,
            reduce_rate_avx: f64::from_value(field("reduce_rate_avx")?)?,
            flag_latency: Time::from_value(field("flag_latency")?)?,
            sm_chunk: u64::from_value(field("sm_chunk")?)?,
            solo_setup: Time::from_value(field("solo_setup")?)?,
            xsocket_bus_factor: match v.get("xsocket_bus_factor") {
                Some(x) => f64::from_value(x)?,
                None => 1.0,
            },
        })
    }
}

/// Network parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetParams {
    /// Per-node injection bandwidth, bytes/s, *per direction* (full duplex).
    pub nic_bw: f64,
    /// One-way wire latency between any two nodes.
    pub latency: Time,
    /// Fraction of each inter-node byte additionally charged to the
    /// endpoint memory bus (NIC DMA traffic). 1.0 = every byte crosses the
    /// bus once per endpoint.
    pub dma_bus_factor: f64,
    /// Optional aggregate network-core bandwidth, bytes/s, shared by all
    /// concurrent inter-node transfers. `None` = non-blocking fabric.
    pub core_bw: Option<f64>,
}

impl NodeParams {
    /// Time for one rank to memcpy `bytes` (CPU side).
    #[inline]
    pub fn copy_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.copy_rate)
    }

    /// Bus occupancy for moving `bytes` across the node memory system.
    #[inline]
    pub fn bus_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.bus_bw)
    }

    /// Bus occupancy for `bytes`, derated by the cross-socket factor when
    /// the transfer crosses a shared-memory-domain boundary. With the
    /// neutral factor (1.0) this is exactly [`NodeParams::bus_time`].
    #[inline]
    pub fn bus_time_crossing(&self, bytes: u64, cross_domain: bool) -> Time {
        if cross_domain {
            Time::for_bytes(bytes, self.bus_bw / self.xsocket_bus_factor)
        } else {
            self.bus_time(bytes)
        }
    }

    /// Local reduction compute time over `bytes`.
    #[inline]
    pub fn reduce_time(&self, bytes: u64, vectorized: bool) -> Time {
        let rate = if vectorized {
            self.reduce_rate_avx
        } else {
            self.reduce_rate
        };
        Time::for_bytes(bytes, rate)
    }

    /// Number of SM bounce fragments needed for `bytes`.
    #[inline]
    pub fn sm_fragments(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.sm_chunk).max(1)
    }
}

impl NetParams {
    /// NIC occupancy (one direction) for `bytes`.
    #[inline]
    pub fn wire_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.nic_bw)
    }

    /// Endpoint bus occupancy caused by NIC DMA for `bytes`.
    #[inline]
    pub fn dma_bus_time(&self, bytes: u64, node: &NodeParams) -> Time {
        Time::for_bytes((bytes as f64 * self.dma_bus_factor) as u64, node.bus_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeParams {
        NodeParams {
            cores: 4,
            copy_rate: 8e9,
            bus_bw: 80e9,
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            flag_latency: Time::from_ns(150),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        }
    }

    #[test]
    fn derived_times() {
        let n = node();
        assert_eq!(n.copy_time(8_000_000_000), Time::from_secs_f64(1.0));
        assert!(n.bus_time(1 << 20) < n.copy_time(1 << 20));
        assert!(n.reduce_time(1 << 20, true) < n.reduce_time(1 << 20, false));
    }

    #[test]
    fn sm_fragment_count() {
        let n = node();
        assert_eq!(n.sm_fragments(1), 1);
        assert_eq!(n.sm_fragments(8 * 1024), 1);
        assert_eq!(n.sm_fragments(8 * 1024 + 1), 2);
        assert_eq!(n.sm_fragments(64 * 1024), 8);
        assert_eq!(n.sm_fragments(0), 1); // zero-byte ops still sync once
    }

    #[test]
    fn net_times() {
        let net = NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
        };
        let n = node();
        assert_eq!(net.wire_time(10_000_000_000), Time::from_secs_f64(1.0));
        // DMA charge is bytes/bus_bw when factor is 1.
        assert_eq!(net.dma_bus_time(80_000, &n), Time::from_us(1));
    }

    #[test]
    fn neutral_xsocket_factor_is_free_and_unserialized() {
        let n = node();
        assert_eq!(n.bus_time_crossing(1 << 20, true), n.bus_time(1 << 20));
        let json = serde_json::to_string(&n).expect("serialize");
        assert!(
            !json.contains("xsocket_bus_factor"),
            "neutral factor must keep the historical JSON form: {json}"
        );
        let back: NodeParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.xsocket_bus_factor, 1.0);
    }

    #[test]
    fn xsocket_factor_roundtrips_and_derates_bus() {
        let mut n = node();
        n.xsocket_bus_factor = 1.6;
        assert!(n.bus_time_crossing(1 << 20, true) > n.bus_time(1 << 20));
        assert_eq!(n.bus_time_crossing(1 << 20, false), n.bus_time(1 << 20));
        let json = serde_json::to_string(&n).expect("serialize");
        let back: NodeParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.xsocket_bus_factor, 1.6);
    }
}
