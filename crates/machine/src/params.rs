//! Hardware parameter sets for nodes and network.
//!
//! These are the *physical* knobs; per-MPI-library protocol knobs live in
//! [`crate::flavor`]. Values are chosen so the simulated machines reproduce
//! the qualitative curves of the paper's testbeds (see `EXPERIMENTS.md` for
//! the calibration notes); nothing downstream depends on their absolute
//! magnitudes.

use crate::topology::MAX_LEVELS;
use han_sim::Time;
use serde::{Deserialize, Error, Serialize, Value};

/// Per-node hardware parameters.
#[derive(Debug, Clone, Copy)]
pub struct NodeParams {
    /// Cores per node (capacity; informational — ppn comes from topology).
    pub cores: usize,
    /// Single-core memcpy rate, bytes/s. Shared-memory collectives move
    /// data at this rate on the copying rank's CPU.
    pub copy_rate: f64,
    /// Aggregate per-node memory bandwidth, bytes/s, shared by all ranks on
    /// the node *and* by NIC DMA. Contention on this resource is one of the
    /// two causes of imperfect `ib`/`sb` overlap (paper section III-A2).
    pub bus_bw: f64,
    /// Scalar (non-vectorized) local reduction rate, bytes/s. Used by the
    /// SM and Libnbc submodules, which the paper notes do not use AVX.
    pub reduce_rate: f64,
    /// Vectorized (AVX) local reduction rate, bytes/s. Used by ADAPT and
    /// SOLO (paper section IV-A2).
    pub reduce_rate_avx: f64,
    /// Latency for an intra-node synchronization flag to become visible to
    /// another rank (cache-coherence round trip).
    pub flag_latency: Time,
    /// Size of one SM bounce-buffer fragment; the SM submodule pays one
    /// flag round per fragment, which is why it loses to SOLO on large
    /// segments (paper section III: "SM has better performance for small
    /// messages while SOLO performs significantly better as the
    /// communication size increases").
    pub sm_chunk: u64,
    /// Fixed setup cost of a SOLO (one-sided) operation: window
    /// synchronization/exposure epochs.
    pub solo_setup: Time,
    /// Memory-bus time multiplier for intra-node transfers that cross a
    /// shared-memory-domain boundary (socket/NUMA interconnect hop on a
    /// 3-level topology). 1.0 models a socket-uniform node and is the
    /// value for every two-level preset; only deeper topologies ever
    /// observe other values, so two-level virtual times are unchanged.
    pub xsocket_bus_factor: f64,
}

// Hand-written serde keeps the historical 8-field JSON form whenever the
// cross-socket factor is neutral, so two-level preset fingerprints (and
// the persisted cost caches keyed by them) survive the N-level refactor.
impl Serialize for NodeParams {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("cores".to_string(), self.cores.to_value()),
            ("copy_rate".to_string(), self.copy_rate.to_value()),
            ("bus_bw".to_string(), self.bus_bw.to_value()),
            ("reduce_rate".to_string(), self.reduce_rate.to_value()),
            (
                "reduce_rate_avx".to_string(),
                self.reduce_rate_avx.to_value(),
            ),
            ("flag_latency".to_string(), self.flag_latency.to_value()),
            ("sm_chunk".to_string(), self.sm_chunk.to_value()),
            ("solo_setup".to_string(), self.solo_setup.to_value()),
        ];
        if self.xsocket_bus_factor != 1.0 {
            map.push((
                "xsocket_bus_factor".to_string(),
                self.xsocket_bus_factor.to_value(),
            ));
        }
        Value::Map(map)
    }
}

impl Deserialize for NodeParams {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        Ok(NodeParams {
            cores: usize::from_value(field("cores")?)?,
            copy_rate: f64::from_value(field("copy_rate")?)?,
            bus_bw: f64::from_value(field("bus_bw")?)?,
            reduce_rate: f64::from_value(field("reduce_rate")?)?,
            reduce_rate_avx: f64::from_value(field("reduce_rate_avx")?)?,
            flag_latency: Time::from_value(field("flag_latency")?)?,
            sm_chunk: u64::from_value(field("sm_chunk")?)?,
            solo_setup: Time::from_value(field("solo_setup")?)?,
            xsocket_bus_factor: match v.get("xsocket_bus_factor") {
                Some(x) => f64::from_value(x)?,
                None => 1.0,
            },
        })
    }
}

/// How a multi-rail NIC assigns messages to its rails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RailPolicy {
    /// Each message rides one rail, chosen round-robin by message id.
    /// Distinct concurrent messages use distinct rails; a single message
    /// never exceeds one rail's bandwidth.
    #[default]
    RoundRobin,
    /// Each message is split evenly across all rails (HiCCL-style
    /// striping), so even a single large transfer sees the aggregate
    /// bandwidth.
    Stripe,
}

/// Network parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// Injection bandwidth *per rail*, bytes/s, *per direction* (full
    /// duplex). A node's aggregate injection bandwidth is `nic_bw * rails`.
    pub nic_bw: f64,
    /// One-way wire latency between any two nodes.
    pub latency: Time,
    /// Fraction of each inter-node byte additionally charged to the
    /// endpoint memory bus (NIC DMA traffic). 1.0 = every byte crosses the
    /// bus once per endpoint.
    pub dma_bus_factor: f64,
    /// Optional aggregate network-core bandwidth, bytes/s, shared by all
    /// concurrent inter-node transfers. `None` = non-blocking fabric.
    pub core_bw: Option<f64>,
    /// Independent NIC rails per node (tx/rx resource pairs). 1 models the
    /// classic single-NIC node and is free: resource layout, names and
    /// virtual times are unchanged from the pre-multi-rail model.
    pub rails: usize,
    /// How messages map onto rails; irrelevant when `rails == 1`.
    pub rail_policy: RailPolicy,
}

// Hand-written serde keeps the historical 4-field JSON form for
// single-rail networks, so every existing preset fingerprint (and the
// persisted cost caches and tuned tables keyed by them) survives the
// multi-rail extension.
impl Serialize for NetParams {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("nic_bw".to_string(), self.nic_bw.to_value()),
            ("latency".to_string(), self.latency.to_value()),
            ("dma_bus_factor".to_string(), self.dma_bus_factor.to_value()),
            ("core_bw".to_string(), self.core_bw.to_value()),
        ];
        if self.rails != 1 {
            map.push(("rails".to_string(), self.rails.to_value()));
            map.push(("rail_policy".to_string(), self.rail_policy.to_value()));
        }
        Value::Map(map)
    }
}

impl Deserialize for NetParams {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        Ok(NetParams {
            nic_bw: f64::from_value(field("nic_bw")?)?,
            latency: Time::from_value(field("latency")?)?,
            dma_bus_factor: f64::from_value(field("dma_bus_factor")?)?,
            core_bw: match v.get("core_bw") {
                Some(x) => Option::<f64>::from_value(x)?,
                None => None,
            },
            rails: match v.get("rails") {
                Some(x) => usize::from_value(x)?,
                None => 1,
            },
            rail_policy: match v.get("rail_policy") {
                Some(x) => RailPolicy::from_value(x)?,
                None => RailPolicy::RoundRobin,
            },
        })
    }
}

/// Link parameters of one hierarchy level: the physics of moving (and
/// combining) bytes between peer groups of that level. Level 0 is the
/// network; deeper levels are intra-node interconnects (memory bus, QPI,
/// NVLink, ...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelParams {
    /// Bytes/s between two endpoints of this level.
    pub bandwidth: f64,
    /// Latency for a synchronization/flag round (or wire hop) at this
    /// level.
    pub latency: Time,
    /// Scalar (non-vectorized) reduction rate for combines performed at
    /// this level, bytes/s.
    pub reduce_rate: f64,
    /// Vectorized reduction rate for combines at this level, bytes/s.
    /// GPU-like levels set this much higher than `reduce_rate`.
    pub reduce_rate_avx: f64,
    /// Fixed launch/injection overhead charged once per data-movement or
    /// reduction operation at this level (kernel-launch cost on GPU-like
    /// levels). Zero for classic CPU levels.
    pub launch: Time,
}

impl LevelParams {
    /// Link occupancy for moving `bytes` at this level's bandwidth.
    #[inline]
    pub fn xfer_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.bandwidth)
    }

    /// Reduction compute time over `bytes` at this level's rates.
    #[inline]
    pub fn reduce_time(&self, bytes: u64, vectorized: bool) -> Time {
        let rate = if vectorized {
            self.reduce_rate_avx
        } else {
            self.reduce_rate
        };
        Time::for_bytes(bytes, rate)
    }
}

/// Per-level link parameters for a whole machine, outermost first.
/// `Copy` and fixed-size so presets and build contexts can pass it by
/// value exactly like [`NodeParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelVec {
    params: [LevelParams; MAX_LEVELS],
    depth: usize,
}

impl LevelVec {
    /// Build from an ordered slice (outermost first). Panics on an empty
    /// slice or one deeper than [`MAX_LEVELS`].
    pub fn from_slice(levels: &[LevelParams]) -> Self {
        assert!(
            !levels.is_empty() && levels.len() <= MAX_LEVELS,
            "level params need 1..={MAX_LEVELS} entries, got {}",
            levels.len()
        );
        let mut params = [levels[0]; MAX_LEVELS];
        params[..levels.len()].copy_from_slice(levels);
        LevelVec {
            params,
            depth: levels.len(),
        }
    }

    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Parameters of level `k` (0 = outermost).
    #[inline]
    pub fn get(&self, k: usize) -> &LevelParams {
        debug_assert!(k < self.depth, "level {k} out of range");
        &self.params[k]
    }

    /// Mutable parameters of level `k` (0 = outermost).
    #[inline]
    pub fn get_mut(&mut self, k: usize) -> &mut LevelParams {
        debug_assert!(k < self.depth, "level {k} out of range");
        &mut self.params[k]
    }

    /// The innermost (fastest, shared-memory) level.
    #[inline]
    pub fn innermost(&self) -> &LevelParams {
        &self.params[self.depth - 1]
    }

    pub fn iter(&self) -> impl Iterator<Item = &LevelParams> {
        self.params[..self.depth].iter()
    }
}

/// Launch-aware segment coarsening: the effective HAN segment width on a
/// machine whose inner levels charge a per-op launch overhead.
///
/// Fine segmentation is what makes the task pipeline overlap, but every
/// extra segment costs one `launch` on each consumer that copies or
/// reduces it — on GPU-like levels (kernel launches of microseconds) a
/// finely-segmented broadcast pays more in launches than it gains in
/// overlap, and loses to coarse-grained compositions. The builders
/// therefore widen the configured `fs` to the smallest power-of-two
/// multiple whose per-segment copy time amortizes the worst inner-level
/// launch to at most 1/8 of the segment, trading pipeline depth for
/// launch amortization.
///
/// Level 0 is excluded: wire transfers never pay a launch (only compute
/// ops do, and those always join ranks within one node). On uniform
/// machines every launch is zero and `fs` is returned unchanged, so
/// historical programs stay bit-identical.
///
/// The doubling is clamped at the message size `m`: any `fs ≥ m` yields
/// exactly one segment of `m` bytes (segmentation caps the last segment
/// at the remaining length), so widening past `m` cannot change a built
/// program or a simulated time — it only inflated template keys, making
/// structurally identical sweeps on high-launch presets miss the
/// template/delta caches.
pub fn coarsen_fs(fs: u64, m: u64, node: &NodeParams, levels: &LevelVec) -> u64 {
    const AMORTIZE: u64 = 8;
    let launch = levels
        .iter()
        .skip(1)
        .map(|lp| lp.launch)
        .max()
        .unwrap_or(Time::ZERO);
    if launch == Time::ZERO {
        return fs;
    }
    let target = launch * AMORTIZE;
    let cap = m.max(1);
    let mut f = fs.max(1);
    while node.copy_time(f) < target && f < (1 << 40) && f < cap {
        f *= 2;
    }
    f.min(cap.max(fs.max(1)))
}

impl NodeParams {
    /// Time for one rank to memcpy `bytes` (CPU side).
    #[inline]
    pub fn copy_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.copy_rate)
    }

    /// Bus occupancy for moving `bytes` across the node memory system.
    #[inline]
    pub fn bus_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.bus_bw)
    }

    /// Bus occupancy for `bytes`, derated by the cross-socket factor when
    /// the transfer crosses a shared-memory-domain boundary. With the
    /// neutral factor (1.0) this is exactly [`NodeParams::bus_time`].
    #[inline]
    pub fn bus_time_crossing(&self, bytes: u64, cross_domain: bool) -> Time {
        if cross_domain {
            Time::for_bytes(bytes, self.bus_bw / self.xsocket_bus_factor)
        } else {
            self.bus_time(bytes)
        }
    }

    /// Local reduction compute time over `bytes`.
    #[inline]
    pub fn reduce_time(&self, bytes: u64, vectorized: bool) -> Time {
        let rate = if vectorized {
            self.reduce_rate_avx
        } else {
            self.reduce_rate
        };
        Time::for_bytes(bytes, rate)
    }

    /// Number of SM bounce fragments needed for `bytes`.
    #[inline]
    pub fn sm_fragments(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.sm_chunk).max(1)
    }

    /// View of these node parameters as seen by a builder recursing at one
    /// hierarchy level: the synchronization latency becomes that level's
    /// latency (everything else — copy rate, SM fragmenting, SOLO setup —
    /// is a property of the rank's CPU, not of the link). On a uniform
    /// machine every inner level carries `flag_latency`, so this view is
    /// bitwise-identical to `self` and generated programs do not change.
    #[inline]
    pub fn at_level(&self, lvl: &LevelParams) -> NodeParams {
        NodeParams {
            flag_latency: lvl.latency,
            ..*self
        }
    }
}

impl NetParams {
    /// NIC occupancy (one direction) for `bytes`.
    #[inline]
    pub fn wire_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.nic_bw)
    }

    /// Endpoint bus occupancy caused by NIC DMA for `bytes`.
    #[inline]
    pub fn dma_bus_time(&self, bytes: u64, node: &NodeParams) -> Time {
        Time::for_bytes((bytes as f64 * self.dma_bus_factor) as u64, node.bus_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeParams {
        NodeParams {
            cores: 4,
            copy_rate: 8e9,
            bus_bw: 80e9,
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            flag_latency: Time::from_ns(150),
            sm_chunk: 8 * 1024,
            solo_setup: Time::from_us(2),
            xsocket_bus_factor: 1.0,
        }
    }

    #[test]
    fn derived_times() {
        let n = node();
        assert_eq!(n.copy_time(8_000_000_000), Time::from_secs_f64(1.0));
        assert!(n.bus_time(1 << 20) < n.copy_time(1 << 20));
        assert!(n.reduce_time(1 << 20, true) < n.reduce_time(1 << 20, false));
    }

    #[test]
    fn sm_fragment_count() {
        let n = node();
        assert_eq!(n.sm_fragments(1), 1);
        assert_eq!(n.sm_fragments(8 * 1024), 1);
        assert_eq!(n.sm_fragments(8 * 1024 + 1), 2);
        assert_eq!(n.sm_fragments(64 * 1024), 8);
        assert_eq!(n.sm_fragments(0), 1); // zero-byte ops still sync once
    }

    #[test]
    fn net_times() {
        let net = NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 1,
            rail_policy: RailPolicy::RoundRobin,
        };
        let n = node();
        assert_eq!(net.wire_time(10_000_000_000), Time::from_secs_f64(1.0));
        // DMA charge is bytes/bus_bw when factor is 1.
        assert_eq!(net.dma_bus_time(80_000, &n), Time::from_us(1));
    }

    #[test]
    fn neutral_xsocket_factor_is_free_and_unserialized() {
        let n = node();
        assert_eq!(n.bus_time_crossing(1 << 20, true), n.bus_time(1 << 20));
        let json = serde_json::to_string(&n).expect("serialize");
        assert!(
            !json.contains("xsocket_bus_factor"),
            "neutral factor must keep the historical JSON form: {json}"
        );
        let back: NodeParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.xsocket_bus_factor, 1.0);
    }

    #[test]
    fn single_rail_net_keeps_historical_json_form() {
        let net = NetParams {
            nic_bw: 10e9,
            latency: Time::from_us(1),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 1,
            rail_policy: RailPolicy::RoundRobin,
        };
        let json = serde_json::to_string(&net).expect("serialize");
        assert_eq!(
            json,
            r#"{"nic_bw":10000000000.0,"latency":1000000,"dma_bus_factor":1.0,"core_bw":null}"#
        );
        let back: NetParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.rails, 1);
        assert_eq!(back.rail_policy, RailPolicy::RoundRobin);
    }

    #[test]
    fn multi_rail_net_roundtrips() {
        let mut net = NetParams {
            nic_bw: 25e9,
            latency: Time::from_ns(1_500),
            dma_bus_factor: 1.0,
            core_bw: None,
            rails: 4,
            rail_policy: RailPolicy::Stripe,
        };
        let json = serde_json::to_string(&net).expect("serialize");
        assert!(json.contains("\"rails\":4"), "{json}");
        let back: NetParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.rails, 4);
        assert_eq!(back.rail_policy, RailPolicy::Stripe);
        net.rail_policy = RailPolicy::RoundRobin;
        let back: NetParams = serde_json::from_str(&serde_json::to_string(&net).unwrap()).unwrap();
        assert_eq!(back.rail_policy, RailPolicy::RoundRobin);
    }

    #[test]
    fn level_params_times() {
        let lvl = LevelParams {
            bandwidth: 300e9,
            latency: Time::from_ns(700),
            reduce_rate: 50e9,
            reduce_rate_avx: 150e9,
            launch: Time::from_us(5),
        };
        assert_eq!(lvl.xfer_time(300_000_000_000), Time::from_secs_f64(1.0));
        assert!(lvl.reduce_time(1 << 20, true) < lvl.reduce_time(1 << 20, false));
    }

    #[test]
    fn level_vec_indexing() {
        let a = LevelParams {
            bandwidth: 10e9,
            latency: Time::from_us(1),
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            launch: Time::ZERO,
        };
        let mut b = a;
        b.bandwidth = 60e9;
        let lv = LevelVec::from_slice(&[a, b]);
        assert_eq!(lv.depth(), 2);
        assert_eq!(lv.get(0).bandwidth, 10e9);
        assert_eq!(lv.get(1).bandwidth, 60e9);
        assert_eq!(lv.innermost().bandwidth, 60e9);
        assert_eq!(lv.iter().count(), 2);
    }

    fn launch_levels(launch: Time) -> LevelVec {
        let wire = LevelParams {
            bandwidth: 10e9,
            latency: Time::from_us(1),
            reduce_rate: 3e9,
            reduce_rate_avx: 12e9,
            launch: Time::ZERO,
        };
        let mut inner = wire;
        inner.launch = launch;
        LevelVec::from_slice(&[wire, inner])
    }

    #[test]
    fn coarsen_fs_uniform_is_identity() {
        let n = node();
        let lv = launch_levels(Time::ZERO);
        // Zero launch: unchanged, even past the message size.
        assert_eq!(coarsen_fs(4096, 1024, &n, &lv), 4096);
        assert_eq!(coarsen_fs(1 << 20, 1 << 30, &n, &lv), 1 << 20);
    }

    #[test]
    fn coarsen_fs_clamps_at_message_size() {
        let n = node();
        let lv = launch_levels(Time::from_us(5));
        // target = 40 us => amortized width 320 KB, rounded up to 512 KB.
        assert_eq!(coarsen_fs(4096, 16 << 20, &n, &lv), 512 * 1024);
        // A 64 KB message must not coarsen to a fragment wider than
        // itself: any fs >= m is one m-byte segment anyway, and widening
        // further only skews template keys.
        assert_eq!(coarsen_fs(4096, 64 * 1024, &n, &lv), 64 * 1024);
        // Non-power-of-two messages clamp exactly at m.
        assert_eq!(coarsen_fs(4096, 100_000, &n, &lv), 100_000);
        // A configured fs already past the message size is left alone.
        assert_eq!(coarsen_fs(1 << 20, 64 * 1024, &n, &lv), 1 << 20);
        // Tiny messages never widen at all.
        assert_eq!(coarsen_fs(4096, 1, &n, &lv), 4096);
    }

    #[test]
    fn coarsen_fs_guard_boundary() {
        let n = node();
        // launch * 8 = 160 s, amortized width ~ 1.28e12 bytes > 1 << 40:
        // the doubling must stop exactly at the 1 TiB guard, not wrap or
        // overshoot, and still respect a smaller message clamp.
        let lv = launch_levels(Time::from_secs_f64(20.0));
        assert_eq!(coarsen_fs(1, u64::MAX, &n, &lv), 1 << 40);
        assert_eq!(coarsen_fs(1, (1 << 40) + 1, &n, &lv), 1 << 40);
        assert_eq!(coarsen_fs(1, 1 << 20, &n, &lv), 1 << 20);
    }

    #[test]
    fn at_level_changes_only_flag_latency() {
        let n = node();
        let lvl = LevelParams {
            bandwidth: 60e9,
            latency: Time::from_ns(999),
            reduce_rate: 1e9,
            reduce_rate_avx: 2e9,
            launch: Time::from_us(9),
        };
        let v = n.at_level(&lvl);
        assert_eq!(v.flag_latency, Time::from_ns(999));
        assert_eq!(v.copy_rate, n.copy_rate);
        assert_eq!(v.sm_chunk, n.sm_chunk);
        assert_eq!(v.solo_setup, n.solo_setup);
        // A level carrying the node's own flag latency is a no-op view.
        let mut same = lvl;
        same.latency = n.flag_latency;
        let json_a = serde_json::to_string(&n.at_level(&same)).unwrap();
        let json_b = serde_json::to_string(&n).unwrap();
        assert_eq!(json_a, json_b);
    }

    #[test]
    fn xsocket_factor_roundtrips_and_derates_bus() {
        let mut n = node();
        n.xsocket_bus_factor = 1.6;
        assert!(n.bus_time_crossing(1 << 20, true) > n.bus_time(1 << 20));
        assert_eq!(n.bus_time_crossing(1 << 20, false), n.bus_time(1 << 20));
        let json = serde_json::to_string(&n).expect("serialize");
        let back: NodeParams = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.xsocket_bus_factor, 1.6);
    }
}
