//! Per-MPI-library point-to-point protocol parameters.
//!
//! The paper explains HAN's small-message gap to Cray MPI on Shaheen II by
//! measuring raw P2P with Netpipe (Fig. 11): "when the message size is
//! between 512B and 2MB, Open MPI achieves less bandwidth comparing to Cray
//! MPI especially for messages in the range from 16KB to 512KB. As message
//! sizes increase, both Open MPI and Cray MPI reach the same peak P2P
//! performance." Those curve shapes are produced by protocol constants —
//! per-message CPU overheads, the eager/rendezvous threshold, and the
//! rendezvous handshake cost — not by the wire itself, so this module keeps
//! them separate from the hardware parameters and provides one preset per
//! library the paper compares.

use han_sim::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The MPI implementations compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Flavor {
    /// Open MPI 4.0.0 — the stack HAN is built in.
    OpenMpi,
    /// Cray MPI 7.7.0 (Shaheen II system MPI).
    CrayMpi,
    /// Intel MPI 18.0.2 (Stampede2).
    IntelMpi,
    /// MVAPICH2 2.3.1 (Stampede2).
    Mvapich2,
}

impl Flavor {
    pub const ALL: [Flavor; 4] = [
        Flavor::OpenMpi,
        Flavor::CrayMpi,
        Flavor::IntelMpi,
        Flavor::Mvapich2,
    ];

    pub fn p2p(self) -> P2pParams {
        match self {
            // Open MPI's OB1/uGNI path: modest per-message costs, small
            // eager limit, and a comparatively expensive rendezvous
            // round-trip — the source of the 16KB–512KB dip in Fig. 11.
            Flavor::OpenMpi => P2pParams {
                o_send: Time::from_ns(400),
                o_recv: Time::from_ns(400),
                eager_limit: 4 * 1024,
                rndv_handshake: Time::from_ns(2_400),
                cpu_byte_rate: 40e9,
            },
            // Cray MPI rides the DMAPP/Aries fast path: low overheads,
            // larger eager window, cheap handshake. Same peak bandwidth —
            // the wire is identical.
            Flavor::CrayMpi => P2pParams {
                o_send: Time::from_ns(180),
                o_recv: Time::from_ns(180),
                eager_limit: 8 * 1024,
                rndv_handshake: Time::from_ns(1_200),
                cpu_byte_rate: 80e9,
            },
            Flavor::IntelMpi => P2pParams {
                o_send: Time::from_ns(250),
                o_recv: Time::from_ns(250),
                eager_limit: 16 * 1024,
                rndv_handshake: Time::from_ns(1_600),
                cpu_byte_rate: 60e9,
            },
            Flavor::Mvapich2 => P2pParams {
                o_send: Time::from_ns(300),
                o_recv: Time::from_ns(300),
                eager_limit: 16 * 1024,
                rndv_handshake: Time::from_ns(1_500),
                cpu_byte_rate: 55e9,
            },
        }
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flavor::OpenMpi => "Open MPI",
            Flavor::CrayMpi => "Cray MPI",
            Flavor::IntelMpi => "Intel MPI",
            Flavor::Mvapich2 => "MVAPICH2",
        };
        f.write_str(s)
    }
}

/// Point-to-point protocol constants for one MPI stack.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct P2pParams {
    /// CPU time to post a send (descriptor setup, matching).
    pub o_send: Time,
    /// CPU time to post/complete a receive.
    pub o_recv: Time,
    /// Messages of at most this many bytes use the eager protocol: the
    /// payload is copied through bounce buffers and flows without waiting
    /// for the receiver, at the cost of one extra copy per side.
    pub eager_limit: u64,
    /// Extra cost of the rendezvous RTS/CTS exchange before a large
    /// transfer may start (paid once per message, on top of wire latency).
    pub rndv_handshake: Time,
    /// Bytes/s of additional CPU work per transferred byte in the stack
    /// (header processing, completion handling). Large values = negligible.
    pub cpu_byte_rate: f64,
}

impl P2pParams {
    /// Is a message of `bytes` sent eagerly under this stack?
    #[inline]
    pub fn is_eager(&self, bytes: u64) -> bool {
        bytes <= self.eager_limit
    }

    /// Per-byte CPU time the stack burns on a message of `bytes`.
    #[inline]
    pub fn cpu_byte_time(&self, bytes: u64) -> Time {
        Time::for_bytes(bytes, self.cpu_byte_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_boundary() {
        let p = Flavor::OpenMpi.p2p();
        assert!(p.is_eager(0));
        assert!(p.is_eager(4 * 1024));
        assert!(!p.is_eager(4 * 1024 + 1));
    }

    #[test]
    fn cray_is_cheaper_per_message() {
        let ompi = Flavor::OpenMpi.p2p();
        let cray = Flavor::CrayMpi.p2p();
        assert!(cray.o_send < ompi.o_send);
        assert!(cray.rndv_handshake < ompi.rndv_handshake);
        assert!(cray.eager_limit >= ompi.eager_limit);
    }

    #[test]
    fn all_flavors_have_sane_params() {
        for f in Flavor::ALL {
            let p = f.p2p();
            assert!(p.o_send > han_sim::Time::ZERO, "{f}");
            assert!(p.eager_limit >= 1024, "{f}");
            assert!(p.cpu_byte_rate > 1e9, "{f}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Flavor::OpenMpi.to_string(), "Open MPI");
        assert_eq!(Flavor::Mvapich2.to_string(), "MVAPICH2");
    }
}
