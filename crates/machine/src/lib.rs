//! # han-machine — simulated cluster model
//!
//! The paper evaluates HAN on Shaheen II (Cray XC40, Aries/Dragonfly,
//! 2×16-core Haswell nodes) and Stampede2 (Skylake, Omni-Path, 48-core
//! nodes). Neither machine — nor the closed-source MPI stacks compared
//! against — is available to this reproduction, so this crate models the
//! relevant hardware as a set of FIFO-shared resources per the substitution
//! plan in `DESIGN.md`:
//!
//! * one **CPU** resource per rank — the single-threaded MPI progression
//!   engine; every posted operation, memcpy and local reduction occupies it;
//! * one **memory bus** per node — every byte that crosses sockets (shared
//!   memory copies, one-sided reads, NIC DMA on both send and receive
//!   sides) occupies it;
//! * one **NIC** per node and *direction* (full duplex) — which is what
//!   lets an inter-node reduce and an inter-node broadcast of the same
//!   pipeline overlap (paper Fig. 6) while same-direction transfers
//!   serialize (endpoint congestion);
//! * an optional **network core** capacity, shared by all nodes, for
//!   congestion at scale.
//!
//! Point-to-point *protocol* behaviour (eager vs rendezvous thresholds,
//! per-message overheads) varies by MPI implementation, not by hardware, so
//! it lives in a separate parameter set ([`flavor::P2pParams`]) with presets
//! for the four libraries the paper compares (Open MPI, Cray MPI, Intel
//! MPI, MVAPICH2). The Netpipe experiment (Fig. 11) is exactly a sweep of
//! those parameter sets over the same machine.

pub mod flavor;
pub mod machine;
pub mod params;
pub mod presets;
pub mod topology;

pub use flavor::{Flavor, P2pParams};
pub use han_sim::PoolState;
pub use machine::Machine;
pub use params::{coarsen_fs, LevelParams, LevelVec, NetParams, NodeParams, RailPolicy};
pub use presets::{
    dgx_like, gpu_hier, level_label, mini, mini3, shaheen2, shaheen2_ppn, shaheen2_sockets,
    socketize, stampede2, stampede2_ppn, uniform_level_params, MachinePreset, NO_OVERRIDES,
};
pub use topology::{Topology, MAX_LEVELS};
