//! Cluster topology: an ordered list of hardware levels.
//!
//! The paper restricts HAN to the two levels exposed portably by
//! `MPI_Comm_split_type` (intra-node / inter-node); this type keeps that
//! two-level form as the common case (`Topology::new(nodes, ppn)`) but is
//! built from a general **level-extent vector** — e.g. `[nodes, sockets,
//! cores]` — so the hierarchy the paper names as future work (NUMA,
//! sockets, switches) is first-class. Rank placement is block-major at
//! every level (the `--map-by core` default the paper's experiments use):
//! rank `r` lives on node `r / ppn` with local index `r % ppn`, and more
//! generally the level-`k` group of `r` is `r / stride(k)` where
//! `stride(k)` is the number of ranks under one level-`k` group.
//!
//! Serialization keeps the historical two-level `{nodes, ppn}` JSON form
//! for depth-2 topologies (so existing preset fingerprints, persisted
//! cost caches, and tuned tables stay valid) and uses `{levels: [...]}`
//! only for deeper hierarchies; deserialization accepts both.

use serde::{Deserialize, Error, Serialize, Value};

/// Maximum supported hierarchy depth (e.g. racks, nodes, boards, sockets,
/// NUMA, GPUs, tiles, cores).
pub const MAX_LEVELS: usize = 8;

/// Where a world rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    pub node: usize,
    pub local: usize,
}

/// A cluster layout described by per-level extents. Depth-2 instances
/// behave exactly like the original `nodes × ppn` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Extents per level, outermost first; unused tail entries are 1.
    extents: [usize; MAX_LEVELS],
    depth: usize,
}

impl Topology {
    /// Create the classic two-level topology; panics on zero nodes or
    /// zero ppn (an empty machine cannot run any program).
    pub fn new(nodes: usize, ppn: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(ppn > 0, "topology needs at least one rank per node");
        Topology::from_levels(&[nodes, ppn])
    }

    /// Create a topology from an ordered level-extent list (outermost
    /// first, e.g. `[nodes, sockets, cores_per_socket]`). Panics on an
    /// empty list, a zero extent, or more than [`MAX_LEVELS`] levels.
    pub fn from_levels(levels: &[usize]) -> Self {
        assert!(!levels.is_empty(), "topology needs at least one level");
        assert!(
            levels.len() <= MAX_LEVELS,
            "topology supports at most {MAX_LEVELS} levels, got {}",
            levels.len()
        );
        assert!(
            levels.iter().all(|&e| e > 0),
            "every level extent must be positive: {levels:?}"
        );
        let mut extents = [1usize; MAX_LEVELS];
        extents[..levels.len()].copy_from_slice(levels);
        Topology {
            extents,
            depth: levels.len(),
        }
    }

    /// Number of hierarchy levels.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The level-extent vector, outermost first.
    #[inline]
    pub fn levels(&self) -> &[usize] {
        &self.extents[..self.depth]
    }

    /// Extent of level `k` (0 = outermost).
    #[inline]
    pub fn extent(&self, k: usize) -> usize {
        self.extents[k]
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.extents[0]
    }

    /// Ranks per node: the product of all intra-node extents.
    #[inline]
    pub fn ppn(&self) -> usize {
        self.extents[1..self.depth].iter().product()
    }

    #[inline]
    pub fn world_size(&self) -> usize {
        self.extents[..self.depth].iter().product()
    }

    /// Number of ranks under one level-`k` group (the group "stride").
    #[inline]
    pub fn group_size(&self, k: usize) -> usize {
        self.extents[k + 1..self.depth].iter().product()
    }

    /// Index of the level-`k` group containing `rank`. Level-0 groups are
    /// nodes; level-`depth-1` groups are individual ranks. Group indices
    /// are global (distinct across parent groups).
    #[inline]
    pub fn group_of(&self, rank: usize, k: usize) -> usize {
        rank / self.group_size(k)
    }

    /// Do two world ranks share their level-`k` group?
    #[inline]
    pub fn same_group(&self, a: usize, b: usize, k: usize) -> bool {
        self.group_of(a, k) == self.group_of(b, k)
    }

    /// The innermost shared-memory domain of a rank (the level just above
    /// individual ranks: the socket on a 3-level machine, the whole node
    /// on a 2-level one). Transfers between ranks on the same node but in
    /// different domains pay the cross-socket bus penalty.
    #[inline]
    pub fn sm_domain_of(&self, rank: usize) -> usize {
        self.group_of(rank, self.depth.saturating_sub(2))
    }

    #[inline]
    pub fn location(&self, rank: usize) -> Location {
        debug_assert!(rank < self.world_size(), "rank {rank} out of range");
        let ppn = self.ppn();
        Location {
            node: rank / ppn,
            local: rank % ppn,
        }
    }

    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ppn()
    }

    #[inline]
    pub fn rank_of(&self, node: usize, local: usize) -> usize {
        debug_assert!(node < self.nodes() && local < self.ppn());
        node * self.ppn() + local
    }

    /// Are two world ranks on the same node?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The hierarchy level whose link two ranks communicate over: the
    /// outermost (smallest-index) level at which they sit in *different*
    /// groups. Ranks on different nodes link at level 0; ranks sharing the
    /// innermost domain (including a rank with itself) link at the
    /// innermost level `depth - 1`.
    #[inline]
    pub fn link_level(&self, a: usize, b: usize) -> usize {
        for k in 0..self.depth - 1 {
            if self.group_of(a, k) != self.group_of(b, k) {
                return k;
            }
        }
        self.depth - 1
    }

    /// World ranks living on `node`, in local order.
    pub fn node_ranks(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let base = node * self.ppn();
        base..base + self.ppn()
    }
}

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        if self.depth == 2 {
            // Historical form: keeps preset fingerprints (and therefore
            // persisted caches and tables) stable for two-level machines.
            Value::Map(vec![
                ("nodes".to_string(), Value::UInt(self.nodes() as u64)),
                ("ppn".to_string(), Value::UInt(self.ppn() as u64)),
            ])
        } else {
            let levels = self
                .levels()
                .iter()
                .map(|&e| Value::UInt(e as u64))
                .collect();
            Value::Map(vec![("levels".to_string(), Value::Seq(levels))])
        }
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(seq) = v.get("levels").and_then(|l| l.as_array()) {
            let levels: Vec<usize> = seq
                .iter()
                .map(|e| {
                    e.as_u64()
                        .map(|x| x as usize)
                        .ok_or_else(|| Error::custom("level extent must be an integer"))
                })
                .collect::<Result<_, _>>()?;
            if levels.is_empty() || levels.len() > MAX_LEVELS || levels.contains(&0) {
                return Err(Error::custom("invalid level-extent vector"));
            }
            return Ok(Topology::from_levels(&levels));
        }
        let nodes = v
            .get("nodes")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| Error::custom("topology needs nodes or levels"))?
            as usize;
        let ppn = v
            .get("ppn")
            .and_then(|x| x.as_u64())
            .ok_or_else(|| Error::custom("topology needs ppn"))? as usize;
        if nodes == 0 || ppn == 0 {
            return Err(Error::custom("topology extents must be positive"));
        }
        Ok(Topology::new(nodes, ppn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(4, 3);
        assert_eq!(t.world_size(), 12);
        assert_eq!(t.location(0), Location { node: 0, local: 0 });
        assert_eq!(t.location(5), Location { node: 1, local: 2 });
        assert_eq!(t.location(11), Location { node: 3, local: 2 });
        assert_eq!(t.rank_of(1, 2), 5);
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(2, 4);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert!(t.same_node(4, 7));
    }

    #[test]
    fn node_ranks_iterates_locals() {
        let t = Topology::new(3, 2);
        assert_eq!(t.node_ranks(1).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        Topology::new(0, 4);
    }

    #[test]
    #[should_panic]
    fn zero_ppn_rejected() {
        Topology::new(4, 0);
    }

    #[test]
    fn roundtrip_rank_location() {
        let t = Topology::new(7, 5);
        for r in 0..t.world_size() {
            let loc = t.location(r);
            assert_eq!(t.rank_of(loc.node, loc.local), r);
        }
    }

    #[test]
    fn two_level_is_depth_two() {
        let t = Topology::new(4, 8);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.levels(), &[4, 8]);
        assert_eq!(t, Topology::from_levels(&[4, 8]));
        // Innermost SM domain of a two-level machine is the whole node.
        assert_eq!(t.sm_domain_of(9), t.node_of(9));
    }

    #[test]
    fn three_level_grouping() {
        // 2 nodes × 2 sockets × 3 cores.
        let t = Topology::from_levels(&[2, 2, 3]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.ppn(), 6);
        assert_eq!(t.world_size(), 12);
        // Level-0 groups are nodes.
        assert_eq!(t.group_of(7, 0), 1);
        assert_eq!(t.group_of(7, 0), t.node_of(7));
        // Level-1 groups are sockets (global indices).
        assert_eq!(t.group_of(2, 1), 0);
        assert_eq!(t.group_of(3, 1), 1);
        assert_eq!(t.group_of(7, 1), 2);
        // Level-2 groups are individual ranks.
        assert_eq!(t.group_of(7, 2), 7);
        // Same node, different socket.
        assert!(t.same_node(2, 3));
        assert!(!t.same_group(2, 3, 1));
        assert_eq!(t.sm_domain_of(2), 0);
        assert_eq!(t.sm_domain_of(3), 1);
    }

    #[test]
    #[should_panic]
    fn zero_level_extent_rejected() {
        Topology::from_levels(&[2, 0, 3]);
    }

    #[test]
    #[should_panic]
    fn too_many_levels_rejected() {
        Topology::from_levels(&[2; MAX_LEVELS + 1]);
    }

    #[test]
    fn eight_levels_supported() {
        let t = Topology::from_levels(&[2; 8]);
        assert_eq!(t.depth(), 8);
        assert_eq!(t.world_size(), 256);
        assert_eq!(t.ppn(), 128);
    }

    #[test]
    fn link_level_picks_outermost_split() {
        // 2 nodes × 2 sockets × 3 cores.
        let t = Topology::from_levels(&[2, 2, 3]);
        assert_eq!(t.link_level(0, 6), 0, "different nodes");
        assert_eq!(t.link_level(2, 3), 1, "same node, different sockets");
        assert_eq!(t.link_level(0, 2), 2, "same socket");
        assert_eq!(t.link_level(5, 5), 2, "a rank with itself is innermost");
        // Two-level: inter-node = 0, intra-node = 1.
        let flat = Topology::new(2, 4);
        assert_eq!(flat.link_level(0, 4), 0);
        assert_eq!(flat.link_level(0, 3), 1);
    }

    #[test]
    fn serde_keeps_two_level_form() {
        let t = Topology::new(4, 8);
        let json = serde_json::to_string(&t).expect("serialize");
        assert_eq!(json, r#"{"nodes":4,"ppn":8}"#);
        let back: Topology = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, t);
    }

    #[test]
    fn serde_three_level_roundtrip() {
        let t = Topology::from_levels(&[2, 2, 4]);
        let json = serde_json::to_string(&t).expect("serialize");
        assert!(json.contains("levels"), "deep form: {json}");
        let back: Topology = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, t);
    }
}
