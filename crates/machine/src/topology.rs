//! Cluster topology: `n` nodes × `p` ranks per node.
//!
//! The paper restricts HAN to the two levels exposed portably by
//! `MPI_Comm_split_type` (intra-node / inter-node), so the topology is a
//! flat grid of nodes; rank `r` lives on node `r / ppn` with local index
//! `r % ppn` (block placement, the `--map-by core` default the paper's
//! experiments use).

use serde::{Deserialize, Serialize};

/// Where a world rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    pub node: usize,
    pub local: usize,
}

/// An `n`-node × `p`-process-per-node cluster layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    nodes: usize,
    ppn: usize,
}

impl Topology {
    /// Create a topology; panics on zero nodes or zero ppn (an empty
    /// machine cannot run any program).
    pub fn new(nodes: usize, ppn: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(ppn > 0, "topology needs at least one rank per node");
        Topology { nodes, ppn }
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    #[inline]
    pub fn ppn(&self) -> usize {
        self.ppn
    }

    #[inline]
    pub fn world_size(&self) -> usize {
        self.nodes * self.ppn
    }

    #[inline]
    pub fn location(&self, rank: usize) -> Location {
        debug_assert!(rank < self.world_size(), "rank {rank} out of range");
        Location {
            node: rank / self.ppn,
            local: rank % self.ppn,
        }
    }

    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ppn
    }

    #[inline]
    pub fn rank_of(&self, node: usize, local: usize) -> usize {
        debug_assert!(node < self.nodes && local < self.ppn);
        node * self.ppn + local
    }

    /// Are two world ranks on the same node?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// World ranks living on `node`, in local order.
    pub fn node_ranks(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        let base = node * self.ppn;
        base..base + self.ppn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(4, 3);
        assert_eq!(t.world_size(), 12);
        assert_eq!(t.location(0), Location { node: 0, local: 0 });
        assert_eq!(t.location(5), Location { node: 1, local: 2 });
        assert_eq!(t.location(11), Location { node: 3, local: 2 });
        assert_eq!(t.rank_of(1, 2), 5);
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(2, 4);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert!(t.same_node(4, 7));
    }

    #[test]
    fn node_ranks_iterates_locals() {
        let t = Topology::new(3, 2);
        assert_eq!(t.node_ranks(1).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        Topology::new(0, 4);
    }

    #[test]
    #[should_panic]
    fn zero_ppn_rejected() {
        Topology::new(4, 0);
    }

    #[test]
    fn roundtrip_rank_location() {
        let t = Topology::new(7, 5);
        for r in 0..t.world_size() {
            let loc = t.location(r);
            assert_eq!(t.rank_of(loc.node, loc.local), r);
        }
    }
}
