//! The instantiated machine: topology + parameters + live resources.
//!
//! A [`Machine`] owns one [`han_sim::ResourcePool`] laid out as:
//! CPU per rank, memory bus per node, NIC-tx and NIC-rx per node, and an
//! optional shared network-core resource. The executor in `han-mpi`
//! addresses resources through the id accessors here, and `reset()` returns
//! the machine to idle between benchmark repetitions.

use crate::params::{LevelVec, NetParams, NodeParams};
use crate::presets::{uniform_level_params, MachinePreset};
use crate::topology::Topology;
use han_sim::{PoolState, ResourcePool, Time};

/// A simulated cluster ready to execute programs.
#[derive(Debug)]
pub struct Machine {
    pub topo: Topology,
    pub node: NodeParams,
    pub net: NetParams,
    /// Per-level link parameters, outermost first. Uniform machines carry
    /// exactly the values derived from `node`/`net`; heterogeneous presets
    /// override individual levels.
    pub levels: LevelVec,
    pool: ResourcePool,
    cpu_base: usize,
    bus_base: usize,
    nic_tx_base: usize,
    nic_rx_base: usize,
    core_id: Option<usize>,
}

impl Machine {
    /// Build a uniform machine: per-level parameters derived from
    /// `node`/`net` (the historical model).
    pub fn new(topo: Topology, node: NodeParams, net: NetParams) -> Self {
        let levels = uniform_level_params(&topo, &node, &net);
        Machine::with_levels(topo, node, net, levels)
    }

    /// Build a machine with explicit per-level link parameters.
    pub fn with_levels(topo: Topology, node: NodeParams, net: NetParams, levels: LevelVec) -> Self {
        assert_eq!(
            levels.depth(),
            topo.depth(),
            "level params must match topology depth"
        );
        assert!(net.rails >= 1, "need at least one NIC rail");
        let mut pool = ResourcePool::new();
        let cpu_base = pool.len();
        for r in 0..topo.world_size() {
            pool.add(format!("cpu[{r}]"));
        }
        let bus_base = pool.len();
        for n in 0..topo.nodes() {
            pool.add(format!("bus[{n}]"));
        }
        // Single-rail nodes keep the historical `nic_tx[n]` names and pool
        // layout byte-for-byte; multi-rail nodes get one resource per
        // direction and rail.
        let nic_tx_base = pool.len();
        for n in 0..topo.nodes() {
            for r in 0..net.rails {
                if net.rails == 1 {
                    pool.add(format!("nic_tx[{n}]"));
                } else {
                    pool.add(format!("nic_tx[{n}.{r}]"));
                }
            }
        }
        let nic_rx_base = pool.len();
        for n in 0..topo.nodes() {
            for r in 0..net.rails {
                if net.rails == 1 {
                    pool.add(format!("nic_rx[{n}]"));
                } else {
                    pool.add(format!("nic_rx[{n}.{r}]"));
                }
            }
        }
        let core_id = net.core_bw.map(|_| pool.add("net_core"));
        Machine {
            topo,
            node,
            net,
            levels,
            pool,
            cpu_base,
            bus_base,
            nic_tx_base,
            nic_rx_base,
            core_id,
        }
    }

    pub fn from_preset(p: &MachinePreset) -> Self {
        Machine::with_levels(p.topology, p.node, p.net, p.level_params())
    }

    /// Resource id of a rank's CPU (MPI progression engine).
    #[inline]
    pub fn cpu(&self, rank: usize) -> usize {
        debug_assert!(rank < self.topo.world_size());
        self.cpu_base + rank
    }

    /// Resource id of a node's memory bus.
    #[inline]
    pub fn bus(&self, node: usize) -> usize {
        debug_assert!(node < self.topo.nodes());
        self.bus_base + node
    }

    /// Resource id of a node's NIC transmit direction (rail 0).
    #[inline]
    pub fn nic_tx(&self, node: usize) -> usize {
        self.nic_tx_base + node * self.net.rails
    }

    /// Resource id of a node's NIC receive direction (rail 0).
    #[inline]
    pub fn nic_rx(&self, node: usize) -> usize {
        self.nic_rx_base + node * self.net.rails
    }

    /// Resource id of one rail of a node's NIC transmit direction.
    #[inline]
    pub fn nic_tx_rail(&self, node: usize, rail: usize) -> usize {
        debug_assert!(rail < self.net.rails);
        self.nic_tx_base + node * self.net.rails + rail
    }

    /// Resource id of one rail of a node's NIC receive direction.
    #[inline]
    pub fn nic_rx_rail(&self, node: usize, rail: usize) -> usize {
        debug_assert!(rail < self.net.rails);
        self.nic_rx_base + node * self.net.rails + rail
    }

    /// Shared network-core resource, if the fabric is modeled as blocking.
    #[inline]
    pub fn net_core(&self) -> Option<usize> {
        self.core_id
    }

    /// Acquire a resource: FIFO start no earlier than `at`, for `dur`.
    #[inline]
    pub fn acquire(&mut self, id: usize, at: Time, dur: Time) -> (Time, Time) {
        self.pool.acquire(id, at, dur)
    }

    /// Reset all resources to idle (between independent runs).
    pub fn reset(&mut self) {
        self.pool.reset();
    }

    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Snapshot every resource's dynamic state (delta re-simulation
    /// checkpoints).
    pub fn save_pool(&self) -> PoolState {
        self.pool.save()
    }

    /// Snapshot resource state into an existing buffer, reusing its
    /// allocations.
    pub fn save_pool_into(&self, out: &mut PoolState) {
        self.pool.save_into(out)
    }

    /// Restore a snapshot taken from this machine (same layout).
    pub fn restore_pool(&mut self, state: &PoolState) {
        self.pool.restore(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::mini;

    #[test]
    fn resource_layout_is_disjoint() {
        let m = Machine::from_preset(&mini(3, 4));
        let mut ids = vec![];
        for r in 0..12 {
            ids.push(m.cpu(r));
        }
        for n in 0..3 {
            ids.push(m.bus(n));
            ids.push(m.nic_tx(n));
            ids.push(m.nic_rx(n));
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "resource ids must be unique");
        assert_eq!(m.pool().len(), 12 + 3 * 3);
        assert_eq!(m.net_core(), None);
    }

    #[test]
    fn core_resource_when_blocking_fabric() {
        let mut p = mini(2, 2);
        p.net.core_bw = Some(50e9);
        let m = Machine::from_preset(&p);
        assert!(m.net_core().is_some());
    }

    #[test]
    fn acquire_and_reset() {
        let mut m = Machine::from_preset(&mini(2, 2));
        let cpu0 = m.cpu(0);
        let (s, e) = m.acquire(cpu0, Time::ZERO, Time::from_ns(100));
        assert_eq!(s, Time::ZERO);
        assert_eq!(e, Time::from_ns(100));
        let (s2, _) = m.acquire(cpu0, Time::ZERO, Time::from_ns(50));
        assert_eq!(s2, Time::from_ns(100), "CPU serializes");
        m.reset();
        let (s3, _) = m.acquire(cpu0, Time::ZERO, Time::from_ns(10));
        assert_eq!(s3, Time::ZERO);
    }

    #[test]
    fn names_are_descriptive() {
        let m = Machine::from_preset(&mini(2, 2));
        assert_eq!(m.pool().name(m.cpu(3)), "cpu[3]");
        assert_eq!(m.pool().name(m.bus(1)), "bus[1]");
        assert_eq!(m.pool().name(m.nic_tx(0)), "nic_tx[0]");
        assert_eq!(m.pool().name(m.nic_rx(1)), "nic_rx[1]");
    }

    #[test]
    fn machine_carries_level_params() {
        let p = mini(2, 4);
        let m = Machine::from_preset(&p);
        assert_eq!(m.levels.depth(), 2);
        assert_eq!(m.levels.get(0).bandwidth, p.net.nic_bw);
        assert_eq!(m.levels.get(1).bandwidth, p.node.bus_bw);
    }

    #[test]
    fn multi_rail_pool_layout() {
        use crate::params::RailPolicy;
        let p = mini(3, 2).with_rails(4, RailPolicy::Stripe);
        let m = Machine::from_preset(&p);
        // 6 cpus + 3 buses + 3 * 4 tx + 3 * 4 rx.
        assert_eq!(m.pool().len(), 6 + 3 + 24);
        let mut ids = vec![];
        for n in 0..3 {
            for r in 0..4 {
                ids.push(m.nic_tx_rail(n, r));
                ids.push(m.nic_rx_rail(n, r));
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "rail ids must be unique");
        assert_eq!(m.pool().name(m.nic_tx_rail(1, 2)), "nic_tx[1.2]");
        assert_eq!(m.nic_tx(1), m.nic_tx_rail(1, 0));
    }
}
