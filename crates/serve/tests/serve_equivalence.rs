//! Serve-path equivalence: batched answers served over TCP must be
//! bit-identical to direct `han_decide::LookupTable` lookups, across
//! presets, random batches, client caching, and mid-flight hot-swaps.

use han_decide::{preset_fingerprint, LookupTable};
use han_machine::{dgx_like, mini, mini3, MachinePreset};
use han_serve::{serve, tune_table, Client, Query, TableStore, SERVE_COLLS};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

struct Fixture {
    presets: Vec<MachinePreset>,
    tables: Vec<LookupTable>,
    fingerprints: Vec<u64>,
}

/// Tuning is the expensive part; share one tuned set across all tests.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let presets = vec![mini(4, 4), mini3(2, 2, 2), dgx_like(2, 4)];
        let tables: Vec<LookupTable> = presets.iter().map(tune_table).collect();
        let fingerprints = presets.iter().map(preset_fingerprint).collect();
        Fixture {
            presets,
            tables,
            fingerprints,
        }
    })
}

fn store_with_tables() -> Arc<TableStore> {
    let fx = fixture();
    let store = Arc::new(TableStore::new());
    for (fp, table) in fx.fingerprints.iter().zip(&fx.tables) {
        store.publish(*fp, table.clone());
    }
    store
}

/// The direct answer the served one must match bit-for-bit.
fn direct(table: &LookupTable, q: &Query) -> (u64, han_core::HanConfig, u64) {
    let e = table.nearest(q.coll, q.m).expect("tuned collective");
    (e.m, e.cfg, e.cost_ps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random batches over all presets, served over real TCP through the
    /// caching client, agree bit-identically with direct table lookups.
    #[test]
    fn served_batches_match_direct_lookups(
        raw in proptest::collection::vec(
            (0usize..3, 0usize..3, 0u64..(64 << 20)),
            1..48,
        ),
    ) {
        let fx = fixture();
        let store = store_with_tables();
        let mut server = serve("127.0.0.1:0", store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let queries: Vec<Query> = raw
            .iter()
            .map(|&(p, c, m)| Query {
                fingerprint: fx.fingerprints[p],
                coll: SERVE_COLLS[c],
                m,
            })
            .collect();
        let answers = client.resolve_batch(&queries).unwrap();
        prop_assert_eq!(answers.len(), queries.len());
        for (q, a) in queries.iter().zip(&answers) {
            let p = fx.fingerprints.iter().position(|f| *f == a.fingerprint).unwrap();
            let (sample, cfg, cost_ps) = direct(&fx.tables[p], q);
            prop_assert_eq!(a.m, q.m);
            prop_assert_eq!(a.coll, q.coll);
            prop_assert_eq!(a.generation, 1);
            prop_assert_eq!(a.sample, sample);
            prop_assert_eq!(a.cfg, cfg);
            prop_assert_eq!(a.cost_ps, cost_ps);
            prop_assert!(a.lo <= q.m && q.m <= a.hi);
        }
        server.shutdown();
    }

    /// The client cache never changes an answer: replaying the same
    /// batch (now mostly cache hits) returns identical answers, and the
    /// hit rate climbs.
    #[test]
    fn cached_replay_is_bit_identical(
        raw in proptest::collection::vec((0usize..3, 0u64..(64 << 20)), 8..64),
    ) {
        let fx = fixture();
        let store = store_with_tables();
        let mut server = serve("127.0.0.1:0", store).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let queries: Vec<Query> = raw
            .iter()
            .map(|&(c, m)| Query {
                fingerprint: fx.fingerprints[c % 3],
                coll: SERVE_COLLS[c],
                m,
            })
            .collect();
        let first = client.resolve_batch(&queries).unwrap();
        let misses_after_first = client.misses();
        let second = client.resolve_batch(&queries).unwrap();
        prop_assert_eq!(&first, &second);
        // The replay is answered entirely from the bucket cache.
        prop_assert_eq!(client.misses(), misses_after_first);
        prop_assert!(client.hit_rate() > 0.0);
        server.shutdown();
    }
}

/// Hot-swap consistency: while a publisher thread keeps swapping table
/// versions, every served batch stays internally consistent — one
/// generation per fingerprint per batch, every answer bit-identical to
/// the table version of *that* generation. Old-generation answers are
/// fine mid-swap; mixed-generation batches are not.
#[test]
fn hot_swap_never_mixes_generations() {
    let fx = fixture();
    // Two handmade versions so every generation's right answer is known.
    // (Versions alternate v1, v2, v1, ... as generations climb.)
    let versions: Vec<LookupTable> = vec![
        fx.tables[0].clone(),
        LookupTable {
            entries: fx.tables[0]
                .entries
                .iter()
                .map(|e| {
                    let mut e = e.clone();
                    e.cfg = e.cfg.with_fs(e.cfg.fs.saturating_mul(2).max(8));
                    e.cost_ps += 1;
                    e
                })
                .collect(),
            ..fx.tables[0].clone()
        },
    ];
    let fp = fx.fingerprints[0];
    let store = Arc::new(TableStore::new());
    store.publish(fp, versions[0].clone());
    let mut server = serve("127.0.0.1:0", Arc::clone(&store)).unwrap();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let versions = versions.clone();
        std::thread::spawn(move || {
            let mut v = 1usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                store.publish(fp, versions[v % 2].clone());
                v += 1;
                // Throttled: the epoch cell retains every published
                // generation, so keep the churn to a few hundred swaps.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        })
    };

    let mut client = Client::connect(server.addr()).unwrap();
    let sizes: Vec<u64> = (0..14).map(|i| 1u64 << i).chain([100, 77777]).collect();
    let mut last_gen = 0u64;
    for round in 0..200 {
        let queries: Vec<Query> = sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| Query {
                fingerprint: fp,
                coll: SERVE_COLLS[(i + round) % SERVE_COLLS.len()],
                m: m + round as u64,
            })
            .collect();
        let answers = client.resolve_batch(&queries).unwrap();
        // One generation across the whole batch (single fingerprint).
        let generation = answers[0].generation;
        assert!(
            answers.iter().all(|a| a.generation == generation),
            "mixed generations in one batch: {answers:?}"
        );
        // Generations only move forward from the client's point of view.
        assert!(generation >= last_gen, "generation went backwards");
        last_gen = generation;
        // Bit-identical to the version that generation published:
        // generation g carries versions[(g-1) % 2].
        let table = &versions[((generation - 1) % 2) as usize];
        for (q, a) in queries.iter().zip(&answers) {
            let e = table.nearest(q.coll, q.m).unwrap();
            assert_eq!(a.cfg, e.cfg, "wrong config for generation {generation}");
            assert_eq!(a.sample, e.m);
            assert_eq!(a.cost_ps, e.cost_ps);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    publisher.join().unwrap();
    // Deterministic swap observation: publish once more (parity chosen so
    // generation g still maps to versions[(g-1) % 2]) and require the
    // client to pick up the new generation on a fresh query.
    let settled = store.snapshot(fp).unwrap().generation;
    assert!(settled > 1, "publisher never landed a swap");
    store.publish(fp, versions[(settled % 2) as usize].clone());
    client.flush_cache(); // force a round-trip; buckets tile the axis
    let a = client
        .resolve(Query {
            fingerprint: fp,
            coll: SERVE_COLLS[0],
            m: 999_999,
        })
        .unwrap();
    assert_eq!(a.generation, settled + 1);
    let e = versions[(settled % 2) as usize]
        .nearest(SERVE_COLLS[0], 999_999)
        .unwrap();
    assert_eq!(a.cfg, e.cfg);
    server.shutdown();
}

/// A served preset's fingerprint answers must track the preset: publish
/// all three tables, then check each fingerprint resolves with its own
/// preset's table, not a neighbour's.
#[test]
fn fingerprints_do_not_cross_talk() {
    let fx = fixture();
    let store = store_with_tables();
    let mut server = serve("127.0.0.1:0", store).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for (p, fp) in fx.fingerprints.iter().enumerate() {
        for coll in SERVE_COLLS {
            for m in [1u64, 4096, 1 << 20, 32 << 20] {
                let a = client
                    .resolve(Query {
                        fingerprint: *fp,
                        coll,
                        m,
                    })
                    .unwrap();
                let e = fx.tables[p].nearest(coll, m).unwrap();
                assert_eq!(a.cfg, e.cfg, "preset {p} {coll:?} m={m}");
                assert_eq!(a.sample, e.m);
            }
        }
    }
    // Tables listing matches what was published.
    let rows = client.tables().unwrap();
    assert_eq!(rows.len(), 3);
    for row in rows {
        let p = fx
            .fingerprints
            .iter()
            .position(|f| *f == row.fingerprint)
            .unwrap();
        assert_eq!(row.entries as usize, fx.tables[p].entries.len());
        assert_eq!(row.levels, fx.presets[p].topology.levels().to_vec());
    }
    server.shutdown();
}

/// The server-initiated retune path: ask the daemon to re-tune a preset
/// it already serves and wait for the hot-swap to land; the new
/// generation must serve answers identical to a locally tuned table.
#[test]
fn remote_retune_hot_swaps_in() {
    let fx = fixture();
    let preset = fx.presets[0];
    let fp = fx.fingerprints[0];
    let store = Arc::new(TableStore::new());
    // Start from a deliberately stale table (one entry) so the swap is
    // observable.
    let mut stale = LookupTable::for_topology(&preset.topology);
    stale.insert(
        han_colls::Coll::Bcast,
        1024,
        han_core::HanConfig::default(),
        han_sim::Time::from_us(1),
    );
    store.publish(fp, stale);
    let mut server = serve("127.0.0.1:0", Arc::clone(&store)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.retune(preset).unwrap(), fp);
    // Wait for the background worker to land the swap.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        if store.snapshot(fp).map(|s| s.generation) == Some(2) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "retune did not land in time"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    for coll in SERVE_COLLS {
        for m in [512u64, 64 * 1024, 8 << 20] {
            let a = client
                .resolve(Query {
                    fingerprint: fp,
                    coll,
                    m,
                })
                .unwrap();
            assert_eq!(a.generation, 2);
            let e = fx.tables[0].nearest(coll, m).unwrap();
            assert_eq!(a.cfg, e.cfg, "{coll:?} m={m}");
            assert_eq!(a.sample, e.m);
        }
    }
    server.shutdown();
}
