//! The caching client.
//!
//! Every server answer carries its size bucket `[lo, hi]` and table
//! generation, so the client caches one entry per *bucket* per
//! `(fingerprint, collective)` and answers every subsequent query inside
//! the bucket locally — bit-identical to the server by the
//! [`han_decide::resolve`] construction. Buckets are invalidated by
//! generation: the first server answer carrying a newer generation for a
//! fingerprint flushes that fingerprint's buckets (and any answers
//! already assembled from them in the in-flight batch, which are then
//! re-resolved), so one returned batch never mixes generations for a
//! fingerprint.

use crate::proto::{read_frame, write_frame, Answer, Query, Request, Response, ServerStats};
use han_colls::Coll;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{TcpStream, ToSocketAddrs};

#[derive(Debug, Clone, Copy)]
struct Bucket {
    hi: u64,
    answer: Answer,
}

/// A connected client with a local decision cache.
pub struct Client {
    stream: TcpStream,
    /// `(fingerprint, coll)` → bucket start `lo` → bucket.
    buckets: HashMap<(u64, Coll), BTreeMap<u64, Bucket>>,
    /// Last generation seen per fingerprint.
    generations: HashMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl Client {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut c = Client {
            stream,
            buckets: HashMap::new(),
            generations: HashMap::new(),
            hits: 0,
            misses: 0,
        };
        match c.roundtrip(&Request::Hello)? {
            Response::Hello { proto, .. } if proto == crate::proto::PROTO_VERSION => Ok(c),
            Response::Hello { proto, .. } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("protocol mismatch: server speaks v{proto}"),
            )),
            other => Err(bad_response(&other)),
        }
    }

    /// Local cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that needed a server round-trip.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups answered without touching the server.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop every cached bucket (diagnostics; generation bumps already
    /// invalidate precisely).
    pub fn flush_cache(&mut self) {
        self.buckets.clear();
    }

    fn roundtrip(&mut self, request: &Request) -> std::io::Result<Response> {
        write_frame(&mut self.stream, &request.to_value())?;
        let frame = read_frame(&mut self.stream)?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed")
        })?;
        Response::from_value(&frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    fn local(&self, q: &Query) -> Option<Answer> {
        let tree = self.buckets.get(&(q.fingerprint, q.coll))?;
        let (_, bucket) = tree.range(..=q.m).next_back()?;
        if q.m > bucket.hi {
            return None;
        }
        let mut a = bucket.answer;
        a.m = q.m;
        Some(a)
    }

    fn absorb(&mut self, answer: Answer) {
        let fp = answer.fingerprint;
        if self.generations.get(&fp).copied() != Some(answer.generation) {
            // New table generation: flush this fingerprint's buckets so
            // nothing stale answers locally again.
            self.buckets.retain(|(f, _), _| *f != fp);
            self.generations.insert(fp, answer.generation);
        }
        self.buckets.entry((fp, answer.coll)).or_default().insert(
            answer.lo,
            Bucket {
                hi: answer.hi,
                answer,
            },
        );
    }

    /// Resolve a batch. Answers come back in query order; for each
    /// fingerprint, every answer in the batch carries one generation.
    ///
    /// Termination under concurrent re-tuning: if a server response
    /// leaves a fingerprint's batch answers spanning two generations
    /// (cache answers at the old table, fresh answers at the new one),
    /// every slot for that fingerprint is cleared and the next request
    /// bypasses the local cache for it — the server then answers the
    /// whole set from **one** store snapshot, which is gen-uniform by
    /// construction. A fingerprint therefore needs at most one such
    /// repair round no matter how fast the server hot-swaps.
    pub fn resolve_batch(&mut self, queries: &[Query]) -> std::io::Result<Vec<Answer>> {
        let mut answers: Vec<Option<Answer>> = vec![None; queries.len()];
        let mut force_server: HashSet<u64> = HashSet::new();
        loop {
            // Local pass over everything still unresolved.
            for (i, q) in queries.iter().enumerate() {
                if answers[i].is_none() && !force_server.contains(&q.fingerprint) {
                    if let Some(a) = self.local(q) {
                        answers[i] = Some(a);
                        self.hits += 1;
                    }
                }
            }
            let missing: Vec<usize> = (0..queries.len())
                .filter(|&i| answers[i].is_none())
                .collect();
            if missing.is_empty() {
                return Ok(answers.into_iter().map(|a| a.unwrap()).collect());
            }
            force_server.clear();
            self.misses += missing.len() as u64;
            let request = Request::Resolve {
                queries: missing.iter().map(|&i| queries[i]).collect(),
            };
            match self.roundtrip(&request)? {
                Response::Resolved { answers: fresh } => {
                    if fresh.len() != missing.len() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            "answer count mismatch",
                        ));
                    }
                    for (&i, a) in missing.iter().zip(fresh) {
                        self.absorb(a);
                        answers[i] = Some(a);
                    }
                    // Per-fingerprint generation uniformity sweep: a
                    // mixed fingerprint is fully retracted and re-asked
                    // server-side in one snapshot next round.
                    let mut gens: HashMap<u64, u64> = HashMap::new();
                    for a in answers.iter().flatten() {
                        let g = gens.entry(a.fingerprint).or_insert(a.generation);
                        if *g != a.generation {
                            force_server.insert(a.fingerprint);
                        }
                    }
                    for slot in answers.iter_mut() {
                        if slot.is_some_and(|a| force_server.contains(&a.fingerprint)) {
                            *slot = None;
                        }
                    }
                }
                Response::Error { message } => return Err(std::io::Error::other(message)),
                other => return Err(bad_response(&other)),
            }
        }
    }

    /// Resolve one query.
    pub fn resolve(&mut self, q: Query) -> std::io::Result<Answer> {
        Ok(self.resolve_batch(std::slice::from_ref(&q))?[0])
    }

    /// Publish a table under a fingerprint; returns the new generation.
    pub fn publish(
        &mut self,
        fingerprint: u64,
        table: han_decide::LookupTable,
    ) -> std::io::Result<u64> {
        match self.roundtrip(&Request::Publish { fingerprint, table })? {
            Response::Published { generation, .. } => Ok(generation),
            Response::Error { message } => Err(std::io::Error::other(message)),
            other => Err(bad_response(&other)),
        }
    }

    /// Kick off a background re-tune of `preset` on the server; returns
    /// the fingerprint the table will hot-swap under.
    pub fn retune(&mut self, preset: han_machine::MachinePreset) -> std::io::Result<u64> {
        match self.roundtrip(&Request::Retune {
            preset: Box::new(preset),
        })? {
            Response::Retuning { fingerprint } => Ok(fingerprint),
            Response::Error { message } => Err(std::io::Error::other(message)),
            other => Err(bad_response(&other)),
        }
    }

    /// List the server's tables.
    pub fn tables(&mut self) -> std::io::Result<Vec<crate::proto::TableRow>> {
        match self.roundtrip(&Request::Tables)? {
            Response::Tables { tables } => Ok(tables),
            other => Err(bad_response(&other)),
        }
    }

    /// Fetch server counters.
    pub fn server_stats(&mut self) -> std::io::Result<ServerStats> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(bad_response(&other)),
        }
    }

    /// Ask the daemon to exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Done => Ok(()),
            other => Err(bad_response(&other)),
        }
    }
}

fn bad_response(r: &Response) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("unexpected response: {r:?}"),
    )
}
