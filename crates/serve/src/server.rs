//! The daemon: a `TcpListener` accept loop, one std thread per
//! connection, batched resolution against the shared [`TableStore`].
//!
//! Batch semantics: the server groups a batch's queries by fingerprint
//! and loads each fingerprint's epoch cell snapshot **once per batch**.
//! Every answer for a fingerprint within one batch therefore carries the
//! same generation, even if a re-tune hot-swaps the table mid-batch —
//! the swap lands atomically between batches, never inside one.

use crate::proto::{
    read_frame, write_frame, Answer, Query, Request, Response, ServerStats, TableRow, PROTO_VERSION,
};
use crate::retune::spawn_retune;
use crate::store::{TableGen, TableStore};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone counters, shared across connection threads.
#[derive(Debug, Default)]
pub struct Counters {
    pub lookups: AtomicU64,
    pub batches: AtomicU64,
    pub publishes: AtomicU64,
    pub retunes: AtomicU64,
}

impl Counters {
    fn stats(&self, tables: u64) -> ServerStats {
        ServerStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            retunes: self.retunes.load(Ordering::Relaxed),
            tables,
        }
    }
}

/// A running daemon: the bound address, the shared store (pre-publish
/// tables through it before pointing clients at the address), and the
/// accept-loop handle.
pub struct ServerHandle {
    addr: SocketAddr,
    store: Arc<TableStore>,
    counters: Arc<Counters>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    pub fn stats(&self) -> ServerStats {
        self.counters.stats(self.store.len() as u64)
    }

    /// Ask the accept loop to stop and wait for it. Safe to call twice.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until the daemon exits (a client sent `Shutdown`).
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind and start serving `store` on `addr` (use port 0 for an
/// ephemeral port; the bound address is on the handle).
pub fn serve(addr: impl ToSocketAddrs, store: Arc<TableStore>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let counters = Arc::new(Counters::default());
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_store = Arc::clone(&store);
    let accept_counters = Arc::clone(&counters);
    let accept_shutdown = Arc::clone(&shutdown);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let store = Arc::clone(&accept_store);
            let counters = Arc::clone(&accept_counters);
            let shutdown = Arc::clone(&accept_shutdown);
            let server_addr = addr;
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &store, &counters, &shutdown, server_addr);
            });
        }
    });

    Ok(ServerHandle {
        addr,
        store,
        counters,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Arc<TableStore>,
    counters: &Counters,
    shutdown: &AtomicBool,
    server_addr: SocketAddr,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    loop {
        let Some(frame) = read_frame(&mut stream)? else {
            return Ok(()); // peer closed
        };
        let request = match Request::from_value(&frame) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    message: format!("bad request: {e}"),
                };
                write_frame(&mut stream, &resp.to_value())?;
                continue;
            }
        };
        let stop = matches!(request, Request::Shutdown);
        let response = dispatch(request, store, counters);
        write_frame(&mut stream, &response.to_value())?;
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = TcpStream::connect(server_addr);
            return Ok(());
        }
    }
}

fn dispatch(request: Request, store: &Arc<TableStore>, counters: &Counters) -> Response {
    match request {
        Request::Hello => Response::Hello {
            proto: PROTO_VERSION,
            tables: store.len() as u64,
        },
        Request::Resolve { queries } => match resolve_batch(store, &queries) {
            Ok(answers) => {
                counters.batches.fetch_add(1, Ordering::Relaxed);
                counters
                    .lookups
                    .fetch_add(answers.len() as u64, Ordering::Relaxed);
                Response::Resolved { answers }
            }
            Err(message) => Response::Error { message },
        },
        Request::Tables => Response::Tables {
            tables: store
                .tables()
                .into_iter()
                .map(|t| TableRow {
                    fingerprint: t.fingerprint,
                    generation: t.generation,
                    levels: t.levels,
                    entries: t.entries as u64,
                })
                .collect(),
        },
        Request::Publish { fingerprint, table } => {
            let generation = store.publish(fingerprint, table);
            counters.publishes.fetch_add(1, Ordering::Relaxed);
            Response::Published {
                fingerprint,
                generation,
            }
        }
        Request::Retune { preset } => {
            counters.retunes.fetch_add(1, Ordering::Relaxed);
            // Detached worker; the swap lands whenever tuning finishes.
            let (fingerprint, _handle) = spawn_retune(Arc::clone(store), *preset);
            Response::Retuning { fingerprint }
        }
        Request::Stats => Response::Stats {
            stats: counters.stats(store.len() as u64),
        },
        Request::Shutdown => Response::Done,
    }
}

/// Resolve a batch with per-fingerprint generation consistency: one
/// snapshot per distinct fingerprint for the whole batch.
pub fn resolve_batch(store: &TableStore, queries: &[Query]) -> Result<Vec<Answer>, String> {
    let mut snapshots: HashMap<u64, Arc<TableGen>> = HashMap::new();
    let mut answers = Vec::with_capacity(queries.len());
    for q in queries {
        let snap = match snapshots.get(&q.fingerprint) {
            Some(s) => s,
            None => {
                let s = store
                    .snapshot(q.fingerprint)
                    .ok_or_else(|| format!("unknown fingerprint {:016x}", q.fingerprint))?;
                snapshots.entry(q.fingerprint).or_insert(s)
            }
        };
        let r = snap.table.resolve(q.coll, q.m).ok_or_else(|| {
            format!(
                "no entries for {} in table {:016x}",
                q.coll.name(),
                q.fingerprint
            )
        })?;
        answers.push(Answer {
            fingerprint: q.fingerprint,
            coll: q.coll,
            m: q.m,
            generation: snap.generation,
            cfg: r.cfg,
            sample: r.m,
            lo: r.lo,
            hi: r.hi,
            cost_ps: r.cost_ps,
        });
    }
    Ok(answers)
}
