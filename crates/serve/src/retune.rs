//! Background re-tuning: rebuild a preset's table through the existing
//! delta-sweep path and hand it to the store for an atomic hot-swap.
//!
//! The worker runs the same pruned + delta-resimulated exhaustive sweep
//! the verify suite trusts (`TuneOpts { prune: true, delta: true }` is
//! pinned bit-identical to the unpruned full sweep by the
//! `table-dominance` and `delta-agreement` guidelines), over a compact
//! serving space. Tuning is CPU-bound and can take seconds; readers keep
//! resolving against the previous generation until the swap lands.

use crate::store::TableStore;
use han_colls::Coll;
use han_decide::{preset_fingerprint, LookupTable};
use han_machine::MachinePreset;
use han_tuner::{tune_with_opts, SearchSpace, Strategy, TuneOpts};
use std::sync::Arc;

/// Collectives a served table covers by default: the ones the paper
/// tunes (and the verify suite's dominance set).
pub const SERVE_COLLS: [Coll; 3] = [Coll::Bcast, Coll::Allreduce, Coll::Reduce];

/// The compact space served tables are tuned over: wide enough to give
/// every collective several size buckets, small enough that a re-tune
/// completes in interactive time.
pub fn serve_space() -> SearchSpace {
    SearchSpace {
        msg_sizes: vec![4 * 1024, 64 * 1024, 512 * 1024, 4 << 20],
        seg_sizes: vec![32 * 1024, 256 * 1024],
        ..SearchSpace::small()
    }
}

/// Tune a fresh table for `preset` over [`serve_space`].
pub fn tune_table(preset: &MachinePreset) -> LookupTable {
    tune_with_opts(
        preset,
        &serve_space(),
        &SERVE_COLLS,
        Strategy::Exhaustive,
        None,
        TuneOpts {
            prune: true,
            delta: true,
        },
    )
    .table
}

/// Tune `preset` on a detached worker thread and hot-swap the result
/// into `store`. Returns the fingerprint the table will land under and
/// the worker handle (joinable for deterministic tests; the daemon lets
/// it detach).
pub fn spawn_retune(
    store: Arc<TableStore>,
    preset: MachinePreset,
) -> (u64, std::thread::JoinHandle<u64>) {
    let fingerprint = preset_fingerprint(&preset);
    let handle = std::thread::spawn(move || {
        let table = tune_table(&preset);
        store.publish(fingerprint, table)
    });
    (fingerprint, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    #[test]
    fn retune_publishes_under_the_preset_fingerprint() {
        let store = Arc::new(TableStore::new());
        let preset = mini(2, 2);
        let (fp, handle) = spawn_retune(Arc::clone(&store), preset);
        assert_eq!(fp, preset_fingerprint(&preset));
        let generation = handle.join().unwrap();
        assert_eq!(generation, 1);
        let snap = store.snapshot(fp).unwrap();
        assert!(!snap.table.entries.is_empty());
        // Every serve collective gets sampled at every space size.
        for coll in SERVE_COLLS {
            assert_eq!(
                snap.table.sampled_sizes(coll),
                serve_space().msg_sizes,
                "{coll:?}"
            );
        }
        // A second retune hot-swaps to generation 2.
        let (_, handle) = spawn_retune(Arc::clone(&store), preset);
        assert_eq!(handle.join().unwrap(), 2);
        assert_eq!(store.snapshot(fp).unwrap().generation, 2);
    }
}
