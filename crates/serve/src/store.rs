//! The authoritative table store: sharded, generation-counted, and
//! hot-swappable without ever blocking a reader.
//!
//! Layout: fingerprints hash (they already *are* FNV hashes) onto a
//! fixed array of [`SHARDS`] shards, each an `RwLock<HashMap>` from
//! preset fingerprint to one [`EpochCell`]. The shard lock only guards
//! the *map* — inserting a new fingerprint or fetching the cell `Arc` —
//! never a lookup: queries clone the cell `Arc` once and read through
//! its epoch pointer lock-free.
//!
//! An [`EpochCell`] is the arc-swap idea with the retirement problem
//! solved by retention: an atomic pointer to the current
//! [`TableGen`], plus a mutex-guarded history holding every `Arc` this
//! cell ever published. Publishing pushes the new `Arc` into the
//! history *first*, then stores its pointer with release ordering;
//! readers load with acquire ordering and bump the strong count. Because
//! retired generations are never freed while the cell is alive, a reader
//! holding yesterday's pointer is always safe — and re-tunes are rare
//! (seconds apart, machine-count many), so retention is bounded in
//! practice. The history mutex is taken only by writers.

use han_decide::LookupTable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of shards in the store. A small power of two: contention is
/// per-*fingerprint-map*, not per-query, so this only needs to exceed
/// plausible concurrent publisher counts.
pub const SHARDS: usize = 16;

/// One published table version: the generation counter is per-cell,
/// starts at 1, and increments on every hot-swap.
#[derive(Debug)]
pub struct TableGen {
    pub fingerprint: u64,
    pub generation: u64,
    pub table: LookupTable,
}

/// An epoch pointer over [`TableGen`]s (see module docs): lock-free
/// reads, mutex-serialized writers, retention instead of reclamation.
pub struct EpochCell {
    current: AtomicPtr<TableGen>,
    history: Mutex<Vec<Arc<TableGen>>>,
}

impl EpochCell {
    pub fn new(fingerprint: u64, table: LookupTable) -> Self {
        let first = Arc::new(TableGen {
            fingerprint,
            generation: 1,
            table,
        });
        let ptr = Arc::as_ptr(&first) as *mut TableGen;
        EpochCell {
            current: AtomicPtr::new(ptr),
            history: Mutex::new(vec![first]),
        }
    }

    /// Snapshot the current generation without taking any lock. The
    /// returned `Arc` stays valid across any number of concurrent
    /// [`EpochCell::publish`] calls.
    pub fn load(&self) -> Arc<TableGen> {
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc` that
        // `history` retains for the lifetime of the cell (publish pushes
        // to history *before* storing the pointer, and history entries
        // are never removed), so the pointee is alive and incrementing
        // its strong count materializes a second owner.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Hot-swap in a new table version; returns its generation. Readers
    /// mid-flight keep whatever generation they already loaded.
    pub fn publish(&self, table: LookupTable) -> u64 {
        let mut history = self.history.lock().unwrap();
        let generation = history.last().map(|g| g.generation).unwrap_or(0) + 1;
        let fingerprint = history.last().map(|g| g.fingerprint).unwrap_or(0);
        let next = Arc::new(TableGen {
            fingerprint,
            generation,
            table,
        });
        let ptr = Arc::as_ptr(&next) as *mut TableGen;
        history.push(next);
        self.current.store(ptr, Ordering::Release);
        generation
    }

    /// Number of versions ever published (the retention cost).
    pub fn versions(&self) -> usize {
        self.history.lock().unwrap().len()
    }
}

/// Summary row for one stored table (the `Tables` listing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableInfo {
    pub fingerprint: u64,
    pub generation: u64,
    pub levels: Vec<usize>,
    pub entries: usize,
}

/// The sharded store (see module docs).
pub struct TableStore {
    shards: Vec<RwLock<HashMap<u64, Arc<EpochCell>>>>,
}

impl Default for TableStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TableStore {
    pub fn new() -> Self {
        TableStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, fingerprint: u64) -> &RwLock<HashMap<u64, Arc<EpochCell>>> {
        // Fingerprints are FNV-1a outputs; their low bits are already
        // well mixed.
        &self.shards[(fingerprint as usize) % SHARDS]
    }

    /// Publish a table under a fingerprint: first publish inserts at
    /// generation 1, subsequent ones hot-swap. Returns the generation.
    pub fn publish(&self, fingerprint: u64, table: LookupTable) -> u64 {
        if let Some(cell) = self.cell(fingerprint) {
            return cell.publish(table);
        }
        let mut map = self.shard(fingerprint).write().unwrap();
        // Racing first publishers: the loser swaps into the winner's cell.
        match map.get(&fingerprint) {
            Some(cell) => cell.publish(table),
            None => {
                map.insert(fingerprint, Arc::new(EpochCell::new(fingerprint, table)));
                1
            }
        }
    }

    /// The epoch cell for a fingerprint. Batched readers fetch the cell
    /// (one shard read-lock), then [`EpochCell::load`] once per batch so
    /// every answer in the batch comes from one generation.
    pub fn cell(&self, fingerprint: u64) -> Option<Arc<EpochCell>> {
        self.shard(fingerprint)
            .read()
            .unwrap()
            .get(&fingerprint)
            .cloned()
    }

    /// One-shot snapshot of the current generation for a fingerprint.
    pub fn snapshot(&self, fingerprint: u64) -> Option<Arc<TableGen>> {
        self.cell(fingerprint).map(|c| c.load())
    }

    /// Number of distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Listing of every stored table at its current generation.
    pub fn tables(&self) -> Vec<TableInfo> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for cell in shard.read().unwrap().values() {
                let gen = cell.load();
                out.push(TableInfo {
                    fingerprint: gen.fingerprint,
                    generation: gen.generation,
                    levels: gen.table.levels.clone(),
                    entries: gen.table.entries.len(),
                });
            }
        }
        out.sort_by_key(|t| t.fingerprint);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::Coll;
    use han_core::HanConfig;
    use han_sim::Time;

    fn table(fs: u64) -> LookupTable {
        let mut t = LookupTable::new(2, 2);
        t.insert(
            Coll::Bcast,
            1024,
            HanConfig::default().with_fs(fs),
            Time::from_us(1),
        );
        t
    }

    #[test]
    fn publish_bumps_generations() {
        let store = TableStore::new();
        assert!(store.is_empty());
        assert_eq!(store.publish(7, table(1024)), 1);
        assert_eq!(store.publish(7, table(2048)), 2);
        assert_eq!(store.publish(9, table(4096)), 1);
        assert_eq!(store.len(), 2);
        let snap = store.snapshot(7).unwrap();
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.table.entries[0].cfg.fs, 2048);
        assert!(store.snapshot(8).is_none());
    }

    #[test]
    fn readers_keep_their_generation_across_swaps() {
        let store = TableStore::new();
        store.publish(1, table(1024));
        let old = store.snapshot(1).unwrap();
        store.publish(1, table(2048));
        // The old snapshot is still fully readable at its own version.
        assert_eq!(old.generation, 1);
        assert_eq!(old.table.entries[0].cfg.fs, 1024);
        let new = store.snapshot(1).unwrap();
        assert_eq!(new.generation, 2);
        assert_eq!(new.table.entries[0].cfg.fs, 2048);
        assert_eq!(store.cell(1).unwrap().versions(), 2);
    }

    #[test]
    fn tables_listing_is_sorted_and_current() {
        let store = TableStore::new();
        for fp in [5u64, 3, 21] {
            store.publish(fp, table(fp * 64));
        }
        store.publish(3, table(9999));
        let infos = store.tables();
        assert_eq!(
            infos.iter().map(|t| t.fingerprint).collect::<Vec<_>>(),
            vec![3, 5, 21]
        );
        assert_eq!(infos[0].generation, 2);
        assert_eq!(infos[0].entries, 1);
        assert_eq!(infos[0].levels, vec![2, 2]);
    }

    #[test]
    fn concurrent_publish_and_load() {
        let store = Arc::new(TableStore::new());
        store.publish(42, table(4));
        let mut threads = Vec::new();
        for i in 0..4u64 {
            let s = Arc::clone(&store);
            threads.push(std::thread::spawn(move || {
                for j in 0..50 {
                    s.publish(42, table(4 << (i % 3)));
                    let snap = s.snapshot(42).unwrap();
                    assert_eq!(snap.fingerprint, 42);
                    assert!(snap.generation > j, "generations move forward");
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        let snap = store.snapshot(42).unwrap();
        assert_eq!(snap.generation, 201);
        assert_eq!(store.cell(42).unwrap().versions(), 201);
    }
}
