//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Framing is a 4-byte big-endian byte length followed by one JSON
//! document — trivially parseable from any language, and torn-write
//! immune because a frame is only acted on once fully read. Messages are
//! hand-serialized through the vendored [`serde::Value`] tree (the
//! vendored derive macro does not support data-carrying enum variants),
//! following the same pattern as `HanConfig`'s hand-written serde.
//!
//! The protocol is deliberately request/response (no streaming, no
//! server push): a client sends one `Request` frame and reads exactly
//! one `Response` frame. Batched resolution amortizes the round-trip.

use han_colls::Coll;
use han_core::HanConfig;
use han_decide::LookupTable;
use han_machine::MachinePreset;
use serde::{Deserialize, Error, Serialize, Value};
use std::io::{Read, Write};

/// Protocol version, exchanged in `Hello` so mismatched binaries fail
/// loudly instead of misparsing.
pub const PROTO_VERSION: u64 = 1;

/// Largest accepted frame (64 MiB): a defense against garbage length
/// prefixes, not a practical limit — a full lookup table is kilobytes.
pub const MAX_FRAME: u32 = 64 << 20;

/// One decision query: which machine (by fingerprint), which collective,
/// how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    pub fingerprint: u64,
    pub coll: Coll,
    pub m: u64,
}

/// One resolved answer: the configuration plus the size bucket
/// `[lo, hi]` it holds on (for client-side caching) and the generation
/// of the table that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    pub fingerprint: u64,
    pub coll: Coll,
    pub m: u64,
    pub generation: u64,
    pub cfg: HanConfig,
    /// The sampled size the query resolved to.
    pub sample: u64,
    pub lo: u64,
    pub hi: u64,
    pub cost_ps: u64,
}

/// Counters the server reports under `Stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub lookups: u64,
    pub batches: u64,
    pub publishes: u64,
    pub retunes: u64,
    pub tables: u64,
}

/// Client → server messages.
#[derive(Debug, Clone)]
pub enum Request {
    /// Version handshake.
    Hello,
    /// Resolve a batch of queries. Answers preserve query order; a query
    /// against an unknown fingerprint fails the whole batch (`Error`).
    Resolve { queries: Vec<Query> },
    /// List stored tables.
    Tables,
    /// Publish a pre-tuned table under a fingerprint (insert or
    /// hot-swap).
    Publish {
        fingerprint: u64,
        table: LookupTable,
    },
    /// Re-tune a preset on a background worker and hot-swap the result
    /// in when done. Returns immediately with the fingerprint. Boxed so
    /// the variant does not inflate every `Request` on the stack.
    Retune { preset: Box<MachinePreset> },
    /// Server counters.
    Stats,
    /// Stop the daemon.
    Shutdown,
}

/// Server → client messages.
#[derive(Debug, Clone)]
pub enum Response {
    Hello { proto: u64, tables: u64 },
    Resolved { answers: Vec<Answer> },
    Tables { tables: Vec<TableRow> },
    Published { fingerprint: u64, generation: u64 },
    Retuning { fingerprint: u64 },
    Stats { stats: ServerStats },
    Error { message: String },
    Done,
}

/// One `Tables` listing row (wire twin of [`crate::store::TableInfo`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    pub fingerprint: u64,
    pub generation: u64,
    pub levels: Vec<usize>,
    pub entries: u64,
}

// ---------------------------------------------------------------------
// Framing

/// Write one value as a length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(v).expect("frame serializes");
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one length-prefixed JSON frame. `Ok(None)` means the peer closed
/// the connection cleanly at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Value>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean close at a frame boundary
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "torn frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let v = serde_json::from_str(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some(v))
}

// ---------------------------------------------------------------------
// Message (de)serialization

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut map = vec![("type".to_string(), Value::Str(tag.to_string()))];
    map.append(&mut fields);
    Value::Map(map)
}

fn coll_to_value(c: Coll) -> Value {
    Value::Str(c.name().to_string())
}

fn coll_from_value(v: &Value) -> Result<Coll, Error> {
    v.as_str()
        .and_then(Coll::from_name)
        .ok_or_else(|| Error::custom("bad collective name"))
}

fn need_u64(v: &Value, key: &str) -> Result<u64, Error> {
    v[key]
        .as_u64()
        .ok_or_else(|| Error::custom(format!("missing u64 field `{key}`")))
}

impl Serialize for Query {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("fp".to_string(), Value::UInt(self.fingerprint)),
            ("coll".to_string(), coll_to_value(self.coll)),
            ("m".to_string(), Value::UInt(self.m)),
        ])
    }
}

impl Deserialize for Query {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Query {
            fingerprint: need_u64(v, "fp")?,
            coll: coll_from_value(&v["coll"])?,
            m: need_u64(v, "m")?,
        })
    }
}

impl Serialize for Answer {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("fp".to_string(), Value::UInt(self.fingerprint)),
            ("coll".to_string(), coll_to_value(self.coll)),
            ("m".to_string(), Value::UInt(self.m)),
            ("gen".to_string(), Value::UInt(self.generation)),
            ("cfg".to_string(), self.cfg.to_value()),
            ("sample".to_string(), Value::UInt(self.sample)),
            ("lo".to_string(), Value::UInt(self.lo)),
            ("hi".to_string(), Value::UInt(self.hi)),
            ("cost_ps".to_string(), Value::UInt(self.cost_ps)),
        ])
    }
}

impl Deserialize for Answer {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Answer {
            fingerprint: need_u64(v, "fp")?,
            coll: coll_from_value(&v["coll"])?,
            m: need_u64(v, "m")?,
            generation: need_u64(v, "gen")?,
            cfg: HanConfig::from_value(&v["cfg"])?,
            sample: need_u64(v, "sample")?,
            lo: need_u64(v, "lo")?,
            hi: need_u64(v, "hi")?,
            cost_ps: need_u64(v, "cost_ps")?,
        })
    }
}

impl Serialize for ServerStats {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("lookups".to_string(), Value::UInt(self.lookups)),
            ("batches".to_string(), Value::UInt(self.batches)),
            ("publishes".to_string(), Value::UInt(self.publishes)),
            ("retunes".to_string(), Value::UInt(self.retunes)),
            ("tables".to_string(), Value::UInt(self.tables)),
        ])
    }
}

impl Deserialize for ServerStats {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(ServerStats {
            lookups: need_u64(v, "lookups")?,
            batches: need_u64(v, "batches")?,
            publishes: need_u64(v, "publishes")?,
            retunes: need_u64(v, "retunes")?,
            tables: need_u64(v, "tables")?,
        })
    }
}

impl Serialize for TableRow {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("fp".to_string(), Value::UInt(self.fingerprint)),
            ("gen".to_string(), Value::UInt(self.generation)),
            (
                "levels".to_string(),
                Value::Seq(self.levels.iter().map(|&l| Value::UInt(l as u64)).collect()),
            ),
            ("entries".to_string(), Value::UInt(self.entries)),
        ])
    }
}

impl Deserialize for TableRow {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let levels = v["levels"]
            .as_array()
            .ok_or_else(|| Error::custom("missing levels"))?
            .iter()
            .map(|l| l.as_u64().map(|u| u as usize))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| Error::custom("bad level"))?;
        Ok(TableRow {
            fingerprint: need_u64(v, "fp")?,
            generation: need_u64(v, "gen")?,
            levels,
            entries: need_u64(v, "entries")?,
        })
    }
}

fn seq_of<T: Serialize>(items: &[T]) -> Value {
    Value::Seq(items.iter().map(|i| i.to_value()).collect())
}

fn vec_of<T: Deserialize>(v: &Value) -> Result<Vec<T>, Error> {
    v.as_array()
        .ok_or_else(|| Error::custom("expected sequence"))?
        .iter()
        .map(T::from_value)
        .collect()
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Hello => tagged("hello", vec![]),
            Request::Resolve { queries } => {
                tagged("resolve", vec![("queries".to_string(), seq_of(queries))])
            }
            Request::Tables => tagged("tables", vec![]),
            Request::Publish { fingerprint, table } => tagged(
                "publish",
                vec![
                    ("fp".to_string(), Value::UInt(*fingerprint)),
                    ("table".to_string(), table.to_value()),
                ],
            ),
            Request::Retune { preset } => {
                tagged("retune", vec![("preset".to_string(), preset.to_value())])
            }
            Request::Stats => tagged("stats", vec![]),
            Request::Shutdown => tagged("shutdown", vec![]),
        }
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tag = v["type"]
            .as_str()
            .ok_or_else(|| Error::custom("missing type tag"))?;
        Ok(match tag {
            "hello" => Request::Hello,
            "resolve" => Request::Resolve {
                queries: vec_of(&v["queries"])?,
            },
            "tables" => Request::Tables,
            "publish" => Request::Publish {
                fingerprint: need_u64(v, "fp")?,
                table: LookupTable::from_value(&v["table"])?,
            },
            "retune" => Request::Retune {
                preset: Box::new(MachinePreset::from_value(&v["preset"])?),
            },
            "stats" => Request::Stats,
            "shutdown" => Request::Shutdown,
            other => return Err(Error::custom(format!("unknown request `{other}`"))),
        })
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Hello { proto, tables } => tagged(
                "hello",
                vec![
                    ("proto".to_string(), Value::UInt(*proto)),
                    ("tables".to_string(), Value::UInt(*tables)),
                ],
            ),
            Response::Resolved { answers } => {
                tagged("resolved", vec![("answers".to_string(), seq_of(answers))])
            }
            Response::Tables { tables } => {
                tagged("tables", vec![("tables".to_string(), seq_of(tables))])
            }
            Response::Published {
                fingerprint,
                generation,
            } => tagged(
                "published",
                vec![
                    ("fp".to_string(), Value::UInt(*fingerprint)),
                    ("gen".to_string(), Value::UInt(*generation)),
                ],
            ),
            Response::Retuning { fingerprint } => tagged(
                "retuning",
                vec![("fp".to_string(), Value::UInt(*fingerprint))],
            ),
            Response::Stats { stats } => {
                tagged("stats", vec![("stats".to_string(), stats.to_value())])
            }
            Response::Error { message } => tagged(
                "error",
                vec![("message".to_string(), Value::Str(message.clone()))],
            ),
            Response::Done => tagged("done", vec![]),
        }
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tag = v["type"]
            .as_str()
            .ok_or_else(|| Error::custom("missing type tag"))?;
        Ok(match tag {
            "hello" => Response::Hello {
                proto: need_u64(v, "proto")?,
                tables: need_u64(v, "tables")?,
            },
            "resolved" => Response::Resolved {
                answers: vec_of(&v["answers"])?,
            },
            "tables" => Response::Tables {
                tables: vec_of(&v["tables"])?,
            },
            "published" => Response::Published {
                fingerprint: need_u64(v, "fp")?,
                generation: need_u64(v, "gen")?,
            },
            "retuning" => Response::Retuning {
                fingerprint: need_u64(v, "fp")?,
            },
            "stats" => Response::Stats {
                stats: ServerStats::from_value(&v["stats"])?,
            },
            "error" => Response::Error {
                message: v["message"]
                    .as_str()
                    .ok_or_else(|| Error::custom("missing message"))?
                    .to_string(),
            },
            "done" => Response::Done,
            other => return Err(Error::custom(format!("unknown response `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    fn roundtrip_req(r: &Request) -> Request {
        Request::from_value(&r.to_value()).expect("request roundtrips")
    }

    fn roundtrip_resp(r: &Response) -> Response {
        Response::from_value(&r.to_value()).expect("response roundtrips")
    }

    #[test]
    fn query_and_answer_roundtrip() {
        let q = Query {
            fingerprint: 0xdead_beef,
            coll: Coll::Allreduce,
            m: 1 << 20,
        };
        assert_eq!(Query::from_value(&q.to_value()).unwrap(), q);
        let a = Answer {
            fingerprint: 1,
            coll: Coll::Bcast,
            m: 4096,
            generation: 3,
            cfg: HanConfig::default().with_fs(65536),
            sample: 4096,
            lo: 0,
            hi: u64::MAX,
            cost_ps: 123_456,
        };
        assert_eq!(Answer::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn requests_roundtrip_through_json_frames() {
        let mut table = LookupTable::new(2, 2);
        table.insert(
            Coll::Bcast,
            1024,
            HanConfig::default(),
            han_sim::Time::from_us(4),
        );
        let reqs = vec![
            Request::Hello,
            Request::Resolve {
                queries: vec![Query {
                    fingerprint: 9,
                    coll: Coll::Reduce,
                    m: 17,
                }],
            },
            Request::Tables,
            Request::Publish {
                fingerprint: 11,
                table,
            },
            Request::Retune {
                preset: Box::new(mini(2, 2)),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in &reqs {
            // Through full framing, not just the value tree.
            let mut buf = Vec::new();
            write_frame(&mut buf, &r.to_value()).unwrap();
            let v = read_frame(&mut buf.as_slice()).unwrap().unwrap();
            let back = Request::from_value(&v).unwrap();
            assert_eq!(
                serde_json::to_string(&back.to_value()).unwrap(),
                serde_json::to_string(&r.to_value()).unwrap()
            );
        }
        let _ = roundtrip_req(&reqs[0]);
    }

    #[test]
    fn responses_roundtrip() {
        let resps = vec![
            Response::Hello {
                proto: PROTO_VERSION,
                tables: 3,
            },
            Response::Resolved { answers: vec![] },
            Response::Tables {
                tables: vec![TableRow {
                    fingerprint: 5,
                    generation: 2,
                    levels: vec![4, 8],
                    entries: 12,
                }],
            },
            Response::Published {
                fingerprint: 5,
                generation: 2,
            },
            Response::Retuning { fingerprint: 7 },
            Response::Stats {
                stats: ServerStats {
                    lookups: 100,
                    batches: 10,
                    publishes: 2,
                    retunes: 1,
                    tables: 3,
                },
            },
            Response::Error {
                message: "nope".to_string(),
            },
            Response::Done,
        ];
        for r in &resps {
            let back = roundtrip_resp(r);
            assert_eq!(
                serde_json::to_string(&back.to_value()).unwrap(),
                serde_json::to_string(&r.to_value()).unwrap()
            );
        }
    }

    #[test]
    fn eof_at_frame_boundary_is_clean() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut &*empty).unwrap().is_none());
        // A torn frame mid-length or mid-body is an error, not a clean EOF.
        let torn: &[u8] = &[0, 0];
        assert!(read_frame(&mut &*torn).is_err());
        let mut framed = Vec::new();
        write_frame(&mut framed, &Value::UInt(7)).unwrap();
        framed.truncate(framed.len() - 1);
        assert!(read_frame(&mut framed.as_slice()).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let huge = (MAX_FRAME + 1).to_be_bytes();
        let mut data = huge.to_vec();
        data.extend_from_slice(&[0; 16]);
        assert!(read_frame(&mut data.as_slice()).is_err());
    }
}
