//! # han-serve — tuning-as-a-service
//!
//! HAN's payoff is not the sweep itself but *serving* its decisions:
//! every collective call must resolve `(machine, collective, message
//! size)` → configuration at memory speed. This crate is the serving
//! half of that split (the pure decision logic lives in [`han_decide`]):
//!
//! * [`store`] — the authoritative in-memory table store: sharded by
//!   preset fingerprint, with per-table generation counters and
//!   arc-swap-style epoch pointers so re-tuned tables hot-swap in
//!   atomically while readers never take a lock.
//! * [`proto`] — the wire protocol: length-prefixed JSON frames over
//!   TCP, batched `Resolve` requests, `Publish`/`Retune` for table
//!   management.
//! * [`server`] — the daemon: std-thread-per-connection accept loop,
//!   per-batch generation snapshots (a batch never mixes generations
//!   for a fingerprint).
//! * [`client`] — the caching client: one cache entry per size *bucket*
//!   (served answers carry the maximal interval they hold on),
//!   invalidated by generation counters, bit-identical to direct
//!   [`han_decide::LookupTable`] lookups.
//! * [`retune`] — background re-tuning workers driving the existing
//!   pruned + delta-resimulated sweep, publishing results through the
//!   store's hot-swap path.

pub mod client;
pub mod proto;
pub mod retune;
pub mod server;
pub mod store;

pub use client::Client;
pub use proto::{Answer, Query, ServerStats};
pub use retune::{serve_space, spawn_retune, tune_table, SERVE_COLLS};
pub use server::{resolve_batch, serve, ServerHandle};
pub use store::{EpochCell, TableGen, TableInfo, TableStore};
