//! The autotuning lookup table and decision function.
//!
//! Step 1 of autotuning (section III-C) produces, for each sampled input
//! `(n, p, m, t)`, the estimated-best configuration — "stores the
//! estimated best configuration for each input to a lookup table in a
//! file". Step 2 serves arbitrary inputs from the table; this
//! implementation uses nearest-sample-in-log-space selection, the simplest
//! of the schemes the paper cites (quadtree encoding and decision trees
//! are refinements of this step, which the paper explicitly does not
//! focus on).

use han_colls::Coll;
use han_core::{ConfigSource, HanConfig};
use han_sim::Time;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// One tuned entry: inputs (t, m) → output configuration (+ the cost the
/// tuner attributed to it, for reporting).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Entry {
    pub coll: String,
    pub m: u64,
    pub cfg: HanConfig,
    pub cost_ps: u64,
}

/// The tuning output for one machine shape — `(n, p)` plus, on machines
/// with more than two hierarchy levels, the full level-extent vector the
/// table was tuned for.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct LookupTable {
    pub nodes: usize,
    pub ppn: usize,
    /// The topology's level extents, outermost first (`[nodes, ppn]` on a
    /// two-level machine; e.g. `[nodes, sockets, cores]` on three).
    pub levels: Vec<usize>,
    pub entries: Vec<Entry>,
}

impl LookupTable {
    pub fn new(nodes: usize, ppn: usize) -> Self {
        LookupTable {
            nodes,
            ppn,
            levels: vec![nodes, ppn],
            entries: Vec::new(),
        }
    }

    /// A table keyed to an N-level topology (equals [`LookupTable::new`]
    /// on two-level machines).
    pub fn for_topology(topo: &han_machine::Topology) -> Self {
        LookupTable {
            nodes: topo.nodes(),
            ppn: topo.ppn(),
            levels: topo.levels().to_vec(),
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, coll: Coll, m: u64, cfg: HanConfig, cost: Time) {
        self.entries.push(Entry {
            coll: coll.name().to_string(),
            m,
            cfg,
            cost_ps: cost.as_ps(),
        });
    }

    /// Insert-or-improve: replace the existing `(coll, m)` entry when the
    /// new cost is strictly cheaper, insert when the sample is new, and
    /// leave the table untouched otherwise. Returns whether the table
    /// changed. This is how synthesized schedules merge into a tuned
    /// table without ever regressing an entry.
    pub fn upsert(&mut self, coll: Coll, m: u64, cfg: HanConfig, cost: Time) -> bool {
        let cost_ps = cost.as_ps();
        match self
            .entries
            .iter_mut()
            .find(|e| e.coll == coll.name() && e.m == m)
        {
            Some(e) => {
                if cost_ps < e.cost_ps {
                    e.cfg = cfg;
                    e.cost_ps = cost_ps;
                    true
                } else {
                    false
                }
            }
            None => {
                self.insert(coll, m, cfg, cost);
                true
            }
        }
    }

    /// Exact-sample lookup.
    pub fn get(&self, coll: Coll, m: u64) -> Option<&Entry> {
        self.entries
            .iter()
            .find(|e| e.coll == coll.name() && e.m == m)
    }

    /// Decision function: the entry whose sampled message size is nearest
    /// to `m` in log space (ties prefer the smaller sample).
    pub fn nearest(&self, coll: Coll, m: u64) -> Option<&Entry> {
        let lm = (m.max(1) as f64).log2();
        self.entries
            .iter()
            .filter(|e| e.coll == coll.name())
            .min_by(|a, b| {
                let da = ((a.m.max(1) as f64).log2() - lm).abs();
                let db = ((b.m.max(1) as f64).log2() - lm).abs();
                da.partial_cmp(&db).unwrap().then_with(|| a.m.cmp(&b.m))
            })
    }

    /// All sampled message sizes for a collective, ascending.
    pub fn sampled_sizes(&self, coll: Coll) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .entries
            .iter()
            .filter(|e| e.coll == coll.name())
            .map(|e| e.m)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Tuned cost per sampled size (for reporting/validation).
    pub fn costs(&self, coll: Coll) -> HashMap<u64, Time> {
        self.entries
            .iter()
            .filter(|e| e.coll == coll.name())
            .map(|e| (e.m, Time::from_ps(e.cost_ps)))
            .collect()
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string_pretty(self).expect("serialize"))
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        serde_json::from_str(&s)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl ConfigSource for LookupTable {
    fn config(&self, coll: Coll, _nodes: usize, _ppn: usize, bytes: u64) -> HanConfig {
        self.nearest(coll, bytes).map(|e| e.cfg).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LookupTable {
        let mut t = LookupTable::new(4, 8);
        t.insert(
            Coll::Bcast,
            1024,
            HanConfig::default().with_fs(1024),
            Time::from_us(10),
        );
        t.insert(
            Coll::Bcast,
            1 << 20,
            HanConfig::default().with_fs(128 * 1024),
            Time::from_us(500),
        );
        t.insert(
            Coll::Allreduce,
            1 << 20,
            HanConfig::default().with_fs(512 * 1024),
            Time::from_ms(1),
        );
        t
    }

    #[test]
    fn exact_and_nearest_lookup() {
        let t = table();
        assert_eq!(t.get(Coll::Bcast, 1024).unwrap().cfg.fs, 1024);
        assert!(t.get(Coll::Bcast, 2048).is_none());
        // 8 KB is nearer (log-space) to 1 KB than to 1 MB.
        assert_eq!(t.nearest(Coll::Bcast, 8 * 1024).unwrap().m, 1024);
        // 512 KB is nearer to 1 MB.
        assert_eq!(t.nearest(Coll::Bcast, 512 * 1024).unwrap().m, 1 << 20);
        // Collectives do not bleed into each other.
        assert_eq!(t.nearest(Coll::Allreduce, 4).unwrap().m, 1 << 20);
    }

    #[test]
    fn config_source_serves_decisions() {
        let t = table();
        let cfg = t.config(Coll::Bcast, 4, 8, 2 << 20);
        assert_eq!(cfg.fs, 128 * 1024);
        // Unknown collective: falls back to the default config.
        let cfg = t.config(Coll::Gather, 4, 8, 64);
        assert_eq!(cfg, HanConfig::default());
    }

    #[test]
    fn upsert_improves_without_regressing() {
        let mut t = table();
        // Worse cost: no change.
        assert!(!t.upsert(
            Coll::Bcast,
            1024,
            HanConfig::default().with_fs(4096),
            Time::from_us(20),
        ));
        assert_eq!(t.get(Coll::Bcast, 1024).unwrap().cfg.fs, 1024);
        // Equal cost: keep the incumbent (stability under re-merge).
        assert!(!t.upsert(
            Coll::Bcast,
            1024,
            HanConfig::default().with_fs(4096),
            Time::from_us(10),
        ));
        assert_eq!(t.get(Coll::Bcast, 1024).unwrap().cfg.fs, 1024);
        // Strictly better: replace in place, no duplicate entry.
        assert!(t.upsert(
            Coll::Bcast,
            1024,
            HanConfig::default().with_fs(4096),
            Time::from_us(5),
        ));
        assert_eq!(t.get(Coll::Bcast, 1024).unwrap().cfg.fs, 4096);
        assert_eq!(t.entries.iter().filter(|e| e.m == 1024).count(), 1);
        // New sample: plain insert.
        assert!(t.upsert(Coll::Allreduce, 64, HanConfig::default(), Time::from_us(1),));
        assert_eq!(t.entries.len(), 4);
    }

    #[test]
    fn save_load_roundtrip() {
        let t = table();
        let dir = std::env::temp_dir().join("han_tuner_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.json");
        t.save(&path).unwrap();
        let back = LookupTable::load(&path).unwrap();
        assert_eq!(back.entries.len(), 3);
        assert_eq!(back.nodes, 4);
        assert_eq!(
            back.get(Coll::Bcast, 1024).unwrap().cfg,
            HanConfig::default().with_fs(1024)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn levels_track_topology() {
        let two = LookupTable::new(4, 8);
        assert_eq!(two.levels, vec![4, 8]);
        let topo = han_machine::Topology::from_levels(&[4, 2, 16]);
        let three = LookupTable::for_topology(&topo);
        assert_eq!(three.nodes, 4);
        assert_eq!(three.ppn, 32);
        assert_eq!(three.levels, vec![4, 2, 16]);
    }

    #[test]
    fn sampled_sizes_sorted() {
        let t = table();
        assert_eq!(t.sampled_sizes(Coll::Bcast), vec![1024, 1 << 20]);
        assert_eq!(t.costs(Coll::Bcast).len(), 2);
    }
}
