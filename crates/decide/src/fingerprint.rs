//! Stable machine-preset fingerprints.
//!
//! Tables, cost caches, and the serving daemon's store are all keyed by
//! *which machine* a decision was tuned for. The key is a fingerprint —
//! FNV-1a over the preset's canonical JSON form (topology, node, and
//! network parameters; floats hash by their shortest decimal
//! representation). Any change to the machine changes the fingerprint,
//! so persisted state is invalidated, never merged across machines.

use han_machine::MachinePreset;

/// Stable fingerprint of a machine preset: FNV-1a over its canonical JSON
/// form. Any change to topology, node, or network parameters changes the
/// fingerprint and invalidates persisted caches and served tables.
pub fn preset_fingerprint(preset: &MachinePreset) -> u64 {
    let text = serde_json::to_string(preset).expect("preset serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;

    #[test]
    fn fingerprint_separates_presets() {
        let a = preset_fingerprint(&mini(4, 4));
        let b = preset_fingerprint(&mini(4, 8));
        let c = preset_fingerprint(&mini(4, 4));
        assert_ne!(a, b, "different topologies must differ");
        assert_eq!(a, c, "fingerprint must be stable");
    }

    #[test]
    fn fingerprint_separates_rails_and_level_overrides() {
        use han_machine::{dgx_like, RailPolicy};
        let base = mini(4, 4);
        let a = preset_fingerprint(&base);
        let striped = base.with_rails(4, RailPolicy::Stripe);
        assert_ne!(a, preset_fingerprint(&striped), "rails must re-key");
        assert_ne!(
            preset_fingerprint(&striped),
            preset_fingerprint(&base.with_rails(4, RailPolicy::RoundRobin)),
            "rail policy must re-key"
        );
        let mut gpuish = *base.level_params().get(1);
        gpuish.bandwidth *= 2.0;
        assert_ne!(
            a,
            preset_fingerprint(&base.with_level_override(1, gpuish)),
            "level overrides must re-key"
        );
        assert_ne!(a, preset_fingerprint(&dgx_like(4, 4)));
    }
}
