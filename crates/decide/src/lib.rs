//! # han-decide — pure decision logic (autotuning step 2)
//!
//! The sweep (`han-tuner`) *produces* decisions; everything downstream —
//! the serving daemon (`han-serve`), the verify suite, applications —
//! only *consumes* them. This crate is that consumption surface, split
//! out of the tuner so servers and clients link the decision function
//! without dragging in the search machinery, task benchmarks, or the
//! delta-simulation engine:
//!
//! * [`table`] — the lookup table (tuning output) and the
//!   nearest-sample-in-log-space decision function, implementing
//!   [`han_core::ConfigSource`].
//! * [`decision`] — decision trees distilled from the table: adjacent
//!   samples tuning to the same configuration merge into range rules.
//! * [`fingerprint`] — stable FNV-1a fingerprints of machine presets,
//!   the key under which tables and cost caches are stored and the
//!   invalidation token for anything persisted.
//! * [`resolve`] — size-bucket resolution: for a query, the *maximal
//!   interval* of message sizes that resolve to the same table entry,
//!   so clients can cache one answer per bucket instead of one per
//!   byte count, bit-identically.

pub mod decision;
pub mod fingerprint;
pub mod resolve;
pub mod table;

pub use decision::DecisionTree;
pub use fingerprint::preset_fingerprint;
pub use resolve::Resolution;
pub use table::LookupTable;
