//! Size-bucket resolution: one answer per *interval*, not per byte count.
//!
//! [`LookupTable::nearest`] partitions the message-size axis into
//! buckets — every query inside a bucket resolves to the same table
//! entry. A client that learns the bucket once can answer every future
//! query inside it locally, bit-identically, without another round-trip.
//! [`LookupTable::resolve`] computes the bucket by binary search **using
//! the exact comparator `nearest` uses** (log-space distance, ties to
//! the smaller sample). The comparator is monotone along the size axis,
//! so the search is exact: for every `x` in `[lo, hi]`,
//! `nearest(coll, x)` returns the resolved entry — there is no
//! tolerance, no epsilon, no disagreement window.

use crate::table::LookupTable;
use han_colls::Coll;
use han_core::HanConfig;

/// The answer to one decision query, widened to the maximal interval of
/// message sizes on which it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The tuned configuration to use.
    pub cfg: HanConfig,
    /// The sampled message size the query resolved to.
    pub m: u64,
    /// Smallest query size (inclusive) resolving to this entry.
    pub lo: u64,
    /// Largest query size (inclusive) resolving to this entry.
    pub hi: u64,
    /// The cost the tuner attributed to the sample, in picoseconds.
    pub cost_ps: u64,
}

impl Resolution {
    /// Does `m` fall inside this resolution's bucket?
    pub fn contains(&self, m: u64) -> bool {
        self.lo <= m && m <= self.hi
    }
}

/// Absolute log-space distance between a sampled size and a query — the
/// exact expression inside [`LookupTable::nearest`]'s comparator.
fn log_dist(sample: u64, m: u64) -> f64 {
    ((sample.max(1) as f64).log2() - (m.max(1) as f64).log2()).abs()
}

/// The sample `nearest` would choose for query `m` among `samples`
/// (sorted ascending, distinct): minimal `(log distance, sample)`.
fn pick(samples: &[u64], m: u64) -> u64 {
    *samples
        .iter()
        .min_by(|&&a, &&b| {
            log_dist(a, m)
                .partial_cmp(&log_dist(b, m))
                .unwrap()
                .then_with(|| a.cmp(&b))
        })
        .expect("samples non-empty")
}

impl LookupTable {
    /// Resolve a query to its entry *and* the maximal interval
    /// `[lo, hi]` of sizes that resolve identically (see module docs).
    pub fn resolve(&self, coll: Coll, m: u64) -> Option<Resolution> {
        let e = self.nearest(coll, m)?;
        let samples = self.sampled_sizes(coll);
        let s = e.m;
        let i = samples.iter().position(|&x| x == s).expect("sampled");

        // Below the first sample every query resolves to it; otherwise
        // binary-search the smallest x with pick(x) == s. The bracket is
        // valid because pick at a sample is that sample (nearest returned
        // s, so no equal-log smaller sample shadows it) and pick is
        // monotone in x (log2 and the distance comparator both are).
        let lo = if i == 0 {
            0
        } else {
            let mut out = samples[i - 1]; // pick(out) != s
            let mut inside = s; // pick(inside) == s
            while inside - out > 1 {
                let mid = out + (inside - out) / 2;
                if pick(&samples, mid) == s {
                    inside = mid;
                } else {
                    out = mid;
                }
            }
            inside
        };
        let hi = if i + 1 == samples.len() {
            u64::MAX
        } else {
            let mut inside = s; // pick(inside) == s
            let mut out = samples[i + 1]; // pick(out) != s
            while out - inside > 1 {
                let mid = inside + (out - inside) / 2;
                if pick(&samples, mid) == s {
                    inside = mid;
                } else {
                    out = mid;
                }
            }
            inside
        };
        Some(Resolution {
            cfg: e.cfg,
            m: s,
            lo,
            hi,
            cost_ps: e.cost_ps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_sim::Time;

    fn table(sizes: &[u64]) -> LookupTable {
        let mut t = LookupTable::new(4, 8);
        for &m in sizes {
            t.insert(
                Coll::Bcast,
                m,
                HanConfig::default().with_fs(m.max(4)),
                Time::from_us(1),
            );
        }
        t
    }

    #[test]
    fn buckets_tile_the_axis() {
        let t = table(&[1024, 1 << 20, 16 << 20]);
        let r0 = t.resolve(Coll::Bcast, 4).unwrap();
        assert_eq!((r0.m, r0.lo), (1024, 0));
        let r2 = t.resolve(Coll::Bcast, 1 << 30).unwrap();
        assert_eq!((r2.m, r2.hi), (16 << 20, u64::MAX));
        // Adjacent buckets share a boundary with no gap and no overlap.
        let r1 = t.resolve(Coll::Bcast, 64 * 1024).unwrap();
        assert_eq!(r0.hi + 1, r1.lo);
        assert_eq!(r1.hi + 1, r2.lo);
    }

    #[test]
    fn boundary_is_exactly_nearests_boundary() {
        let t = table(&[1024, 1 << 20]);
        let r = t.resolve(Coll::Bcast, 2048).unwrap();
        // Geometric midpoint of 1K and 1M is 32K; ties go to the smaller
        // sample, so 32K itself still resolves small.
        assert_eq!(r.m, 1024);
        assert_eq!(t.nearest(Coll::Bcast, r.hi).unwrap().m, 1024);
        assert_eq!(t.nearest(Coll::Bcast, r.hi + 1).unwrap().m, 1 << 20);
        assert!(r.contains(32 * 1024));
        assert!(!r.contains(33 * 1024));
    }

    #[test]
    fn every_query_in_bucket_agrees_with_nearest() {
        let t = table(&[4, 4096, 65536, 1 << 24]);
        for q in [0u64, 1, 3, 4, 5, 511, 513, 4096, 60000, 70000, 1 << 30] {
            let r = t.resolve(Coll::Bcast, q).unwrap();
            assert!(r.contains(q), "bucket must contain its own query ({q})");
            for x in [
                r.lo,
                r.lo + 1,
                r.lo + (r.hi - r.lo) / 2,
                r.hi.saturating_sub(1),
                r.hi,
            ] {
                let n = t.nearest(Coll::Bcast, x).unwrap();
                assert_eq!(n.m, r.m, "query {x} must resolve like {q}");
                assert_eq!(n.cfg, r.cfg);
            }
        }
    }

    #[test]
    fn single_sample_covers_everything() {
        let t = table(&[8192]);
        let r = t.resolve(Coll::Bcast, 1).unwrap();
        assert_eq!((r.lo, r.hi), (0, u64::MAX));
        assert!(t.resolve(Coll::Allreduce, 1).is_none());
    }

    #[test]
    fn zero_and_one_byte_queries() {
        // log2 treats 0 and 1 identically (m.max(1)); both land in the
        // smallest bucket.
        let t = table(&[0, 16]);
        let r = t.resolve(Coll::Bcast, 1).unwrap();
        assert_eq!(r.m, 0);
        assert_eq!(r.lo, 0);
        assert_eq!(t.nearest(Coll::Bcast, r.hi + 1).unwrap().m, 16);
    }
}
