//! Compact decision functions distilled from the lookup table.
//!
//! Step 2 of autotuning serves arbitrary `(n, p, m, t)` from the sampled
//! table. The paper cites quadtree encoding \[35\] and decision trees
//! \[36\] as ways to compress that table; this module implements the
//! decision-tree flavour: adjacent message-size samples that tuned to the
//! same configuration merge into one range rule, turning dozens of samples
//! into a handful of `size ≤ bound → config` rules (which is also exactly
//! the shape of the `coll_tuned` decision functions HAN replaces — except
//! these rules were *derived for this machine*, not frozen in 2006).

use crate::table::LookupTable;
use han_colls::Coll;
use han_core::{ConfigSource, HanConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One range rule: messages of at most `upto` bytes use `cfg`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Rule {
    pub upto: u64,
    pub cfg: HanConfig,
}

/// A distilled per-collective rule list (ascending `upto`; the last rule
/// is open-ended).
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct DecisionTree {
    rules: HashMap<String, Vec<Rule>>,
    /// Sample count before compression (for reporting).
    pub samples: usize,
}

impl DecisionTree {
    /// Distill a lookup table: walk the sampled sizes in order and merge
    /// runs with identical tuned configurations. The rule boundary between
    /// two runs is the geometric midpoint of the neighbouring samples
    /// (log-space nearest-sample semantics, matching
    /// [`LookupTable::nearest`]).
    pub fn distill(table: &LookupTable) -> Self {
        let mut rules: HashMap<String, Vec<Rule>> = HashMap::new();
        let mut samples = 0;
        // The canonical list, so no tuned collective (notably Barrier,
        // once dropped by an explicit enumeration here) is silently lost.
        for coll in Coll::ALL {
            let sizes = table.sampled_sizes(coll);
            if sizes.is_empty() {
                continue;
            }
            samples += sizes.len();
            let mut out: Vec<Rule> = Vec::new();
            let mut run_cfg: Option<HanConfig> = None;
            let mut prev_size = 0u64;
            for &m in &sizes {
                let cfg = table.get(coll, m).expect("sampled").cfg;
                match run_cfg {
                    Some(c) if c == cfg => {}
                    Some(c) => {
                        // Close the previous run at the log-space midpoint.
                        let bound = geo_mid(prev_size, m);
                        out.push(Rule {
                            upto: bound,
                            cfg: c,
                        });
                        run_cfg = Some(cfg);
                    }
                    None => run_cfg = Some(cfg),
                }
                prev_size = m;
            }
            if let Some(c) = run_cfg {
                out.push(Rule {
                    upto: u64::MAX,
                    cfg: c,
                });
            }
            rules.insert(coll.name().to_string(), out);
        }
        DecisionTree { rules, samples }
    }

    /// The rule list for a collective (empty if untuned).
    pub fn rules(&self, coll: Coll) -> &[Rule] {
        self.rules
            .get(coll.name())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of rules across collectives.
    pub fn rule_count(&self) -> usize {
        self.rules.values().map(|v| v.len()).sum()
    }

    /// Sample-to-rule compression factor (≥ 1).
    pub fn compression(&self) -> f64 {
        if self.rule_count() == 0 {
            1.0
        } else {
            self.samples as f64 / self.rule_count() as f64
        }
    }

    /// Decide the configuration for `bytes`.
    pub fn decide(&self, coll: Coll, bytes: u64) -> Option<HanConfig> {
        let rules = self.rules(coll);
        rules.iter().find(|r| bytes <= r.upto).map(|r| r.cfg)
    }
}

/// Geometric midpoint of two sizes (log-space boundary).
fn geo_mid(a: u64, b: u64) -> u64 {
    ((a.max(1) as f64 * b.max(1) as f64).sqrt()).floor() as u64
}

impl ConfigSource for DecisionTree {
    fn config(&self, coll: Coll, _nodes: usize, _ppn: usize, bytes: u64) -> HanConfig {
        self.decide(coll, bytes).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_sim::Time;

    fn table_with(picks: &[(u64, u64)]) -> LookupTable {
        // (message size, tuned fs)
        let mut t = LookupTable::new(4, 8);
        for &(m, fs) in picks {
            t.insert(
                Coll::Bcast,
                m,
                HanConfig::default().with_fs(fs),
                Time::from_us(1),
            );
        }
        t
    }

    #[test]
    fn merges_equal_runs() {
        let t = table_with(&[
            (1024, 1024),
            (2048, 2048),
            (4096, 4096),
            (8192, 4096),
            (16384, 4096),
            (32768, 32768),
        ]);
        // fs=m for the first three (each distinct), then a run of 4096,
        // then 32768: runs are [1024],[2048],[4096,4096,4096... wait:
        // fs=4096 at m=4096 equals the run start. Expected runs:
        // {1024},{2048},{4096 x3},{32768} = 4 rules... the first three
        // configs differ pairwise, then 4096 repeats.
        let d = DecisionTree::distill(&t);
        let rules = d.rules(Coll::Bcast);
        assert_eq!(rules.len(), 4, "{rules:?}");
        assert_eq!(rules.last().unwrap().upto, u64::MAX);
        assert!(d.compression() > 1.0);
        assert_eq!(d.samples, 6);
    }

    #[test]
    fn decisions_match_nearest_sample_semantics() {
        let t = table_with(&[(1024, 512), (1 << 20, 65536)]);
        let d = DecisionTree::distill(&t);
        // Near the small sample: small config; near the big one: big.
        assert_eq!(d.decide(Coll::Bcast, 4).unwrap().fs, 512);
        assert_eq!(d.decide(Coll::Bcast, 2048).unwrap().fs, 512);
        assert_eq!(d.decide(Coll::Bcast, 900_000).unwrap().fs, 65536);
        assert_eq!(d.decide(Coll::Bcast, 1 << 30).unwrap().fs, 65536);
        // Boundary: geometric midpoint of 1K and 1M is 32K.
        assert_eq!(d.decide(Coll::Bcast, 32 * 1024).unwrap().fs, 512);
        assert_eq!(d.decide(Coll::Bcast, 33 * 1024).unwrap().fs, 65536);
    }

    #[test]
    fn agrees_with_table_at_sampled_sizes() {
        let t = table_with(&[
            (64, 64),
            (4096, 2048),
            (1 << 20, 131072),
            (16 << 20, 1 << 20),
        ]);
        let d = DecisionTree::distill(&t);
        for &(m, fs) in &[
            (64u64, 64u64),
            (4096, 2048),
            (1 << 20, 131072),
            (16 << 20, 1 << 20),
        ] {
            assert_eq!(d.decide(Coll::Bcast, m).unwrap().fs, fs, "at {m}");
        }
    }

    #[test]
    fn barrier_rules_survive_distillation() {
        let mut t = LookupTable::new(4, 8);
        t.insert(Coll::Barrier, 0, HanConfig::default(), Time::from_us(1));
        let d = DecisionTree::distill(&t);
        assert_eq!(d.rules(Coll::Barrier).len(), 1);
        assert!(d.decide(Coll::Barrier, 64).is_some());
        assert_eq!(d.samples, 1);
    }

    #[test]
    fn untuned_collective_falls_back() {
        let t = table_with(&[(1024, 512)]);
        let d = DecisionTree::distill(&t);
        assert!(d.decide(Coll::Allreduce, 1024).is_none());
        use han_core::ConfigSource;
        assert_eq!(d.config(Coll::Allreduce, 4, 8, 1024), HanConfig::default());
    }

    #[test]
    fn serde_roundtrip() {
        let t = table_with(&[(1024, 512), (1 << 20, 65536)]);
        let d = DecisionTree::distill(&t);
        let json = serde_json::to_string(&d).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rule_count(), d.rule_count());
        assert_eq!(
            back.decide(Coll::Bcast, 123).map(|c| c.fs),
            d.decide(Coll::Bcast, 123).map(|c| c.fs)
        );
    }
}
