//! Composed reference collectives for guideline verification.
//!
//! Performance-guideline checking (Hunold & Träff) compares a library's
//! specialized collective against a semantically equivalent *composition*
//! of other collectives it also ships: a tuned `MPI_Allreduce` should
//! never lose to `MPI_Reduce` followed by `MPI_Bcast`, and `MPI_Bcast`
//! should never lose to `MPI_Scatter` followed by `MPI_Allgather`. These
//! mock-ups chain the existing HAN builders through their completion
//! frontiers — they are upper-bound reference implementations, not
//! production paths, and `han-verify` simulates both sides of each
//! inequality on the same machine.

use crate::bcast::build_bcast;
use crate::config::HanConfig;
use crate::extend::{build_allgather, build_reduce, build_scatter};
use han_colls::stack::{BuildCtx, Coll};
use han_colls::Frontier;
use han_machine::{Machine, MachinePreset};
use han_mpi::{execute, BufRange, Comm, DataType, ExecOpts, ProgramBuilder, ReduceOp};
use han_sim::Time;

/// `Allreduce` as `Reduce`-to-rank-0 chained into `Bcast`-from-rank-0 via
/// the reduce frontier. Semantically equivalent to [`build_allreduce`]
/// (every rank ends with the reduction), but without its cross-phase
/// pipeline overlap — the specialized builder must never be slower.
///
/// [`build_allreduce`]: crate::allreduce::build_allreduce
#[allow(clippy::too_many_arguments)]
pub fn composed_allreduce(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    bufs: &[BufRange],
    op: ReduceOp,
    dtype: DataType,
    deps: &Frontier,
) -> Frontier {
    let f = build_reduce(cx, cfg, comm, 0, bufs, op, dtype, deps);
    build_bcast(cx, cfg, comm, 0, bufs, &f).frontier
}

/// `Bcast` as `Scatter` chained into `Allgather`: the root scatters one
/// `block`-byte slice of its buffer to each rank's own slot, then the
/// allgather reassembles the full array everywhere. Every `bufs[l]` must
/// hold `block · n` bytes; the broadcast payload is the root's buffer.
pub fn composed_bcast(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    block: u64,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let dst: Vec<BufRange> = (0..n)
        .map(|l| bufs[l].slice(l as u64 * block, block))
        .collect();
    let f = build_scatter(cx, cfg, comm, root, bufs[root], &dst, deps);
    build_allgather(cx, cfg, comm, bufs, block, &f)
}

/// Simulated makespan of the composed mock-up for `coll` moving `m`
/// payload bytes, or `None` when no composition is defined. The Bcast
/// composition rounds the payload up to a whole number of per-rank blocks
/// (`n · ⌈m/n⌉` bytes), so it is a weakly pessimistic — hence still
/// sound — upper-bound reference.
pub fn time_composed(preset: &MachinePreset, cfg: &HanConfig, coll: Coll, m: u64) -> Option<Time> {
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    match coll {
        Coll::Allreduce => {
            let bufs = b.alloc_all(m.max(1));
            let mut cx = BuildCtx::new(&mut b, preset);
            composed_allreduce(
                &mut cx,
                cfg,
                &comm,
                &bufs,
                ReduceOp::Sum,
                DataType::Float32,
                &Frontier::empty(n),
            );
        }
        Coll::Bcast => {
            let block = m.div_ceil(n as u64).max(1);
            let bufs = b.alloc_all(block * n as u64);
            let mut cx = BuildCtx::new(&mut b, preset);
            composed_bcast(&mut cx, cfg, &comm, 0, &bufs, block, &Frontier::empty(n));
        }
        _ => return None,
    }
    let prog = b.build();
    let mut machine = Machine::from_preset(preset);
    let opts = ExecOpts::timing(han_machine::Flavor::OpenMpi.p2p());
    Some(execute(&mut machine, &prog, &opts).makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::mini;
    use han_mpi::execute_seeded;

    #[test]
    fn composed_allreduce_sums_everywhere() {
        let preset = mini(2, 3);
        let n = 6;
        let comm = Comm::world(n);
        let cfg = HanConfig::default().with_fs(64);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(256);
        let mut cx = BuildCtx::new(&mut b, &preset);
        composed_allreduce(
            &mut cx,
            &cfg,
            &comm,
            &bufs,
            ReduceOp::Sum,
            DataType::Int32,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(han_machine::Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..n {
                    let vals: Vec<u8> = (0..64)
                        .flat_map(|i| ((r * 7 + i) as i32).to_le_bytes())
                        .collect();
                    mm.write(r, bufs2[r], &vals);
                }
            },
        );
        let expect: Vec<u8> = (0..64)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|r| (r * 7 + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        for r in 0..n {
            assert_eq!(mem.read(r, bufs[r]), expect.as_slice(), "rank {r}");
        }
    }

    #[test]
    fn composed_bcast_delivers_everywhere() {
        let preset = mini(3, 2);
        let n = 6;
        let comm = Comm::world(n);
        let cfg = HanConfig::default();
        let block = 8u64;
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(block * n as u64);
        let mut cx = BuildCtx::new(&mut b, &preset);
        composed_bcast(&mut cx, &cfg, &comm, 0, &bufs, block, &Frontier::empty(n));
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let payload: Vec<u8> = (0..block * n as u64).map(|i| (i % 251) as u8).collect();
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(han_machine::Flavor::OpenMpi.p2p()),
            |mm| mm.write(0, bufs2[0], &payload),
        );
        for r in 0..n {
            assert_eq!(mem.read(r, bufs[r]), payload.as_slice(), "rank {r}");
        }
    }

    #[test]
    fn time_composed_covers_only_defined_compositions() {
        let preset = mini(2, 2);
        let cfg = HanConfig::default().with_fs(16 * 1024);
        assert!(time_composed(&preset, &cfg, Coll::Allreduce, 100_000).is_some());
        assert!(time_composed(&preset, &cfg, Coll::Bcast, 100_000).is_some());
        assert!(time_composed(&preset, &cfg, Coll::Gather, 100_000).is_none());
    }
}
