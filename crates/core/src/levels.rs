//! Hierarchy-level extension points (paper future work; documented stubs).
//!
//! The paper limits HAN to the two levels exposed by the portable
//! `MPI_Comm_split_type` API — intra-node and inter-node — and names two
//! extensions as future work: more hardware levels (NUMA/socket/switch)
//! and a GPU intra-node submodule. This module records the seam where
//! those would attach: a level is (a) a way to split a communicator and
//! (b) a set of submodules whose fine-grained collectives run at that
//! level. The task composition in [`crate::bcast`]/[`crate::allreduce`]
//! is already level-agnostic — it chains frontiers through an ordered
//! list of levels — so adding a level means implementing a split plus
//! submodule dispatch, not changing the pipeline.

/// The hierarchy levels HAN distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Across nodes, over the interconnect (Libnbc / ADAPT submodules).
    InterNode,
    /// Within a node, over shared memory (SM / SOLO submodules).
    IntraNode,
}

impl Level {
    /// The two-level order used throughout the paper: data descends
    /// inter → intra for one-to-all, ascends intra → inter for reductions.
    pub const ORDER: [Level; 2] = [Level::InterNode, Level::IntraNode];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_two_level() {
        assert_eq!(Level::ORDER.len(), 2);
        assert_eq!(Level::ORDER[0], Level::InterNode);
    }
}
