//! The ordered hierarchy-level list (implemented N-level design).
//!
//! The paper limits HAN to the two levels exposed by the portable
//! `MPI_Comm_split_type` API — inter-node and intra-node — and names more
//! hardware levels (NUMA/socket/switch) as future work. This reproduction
//! implements that extension: a machine's hierarchy is no longer the
//! hardcoded `[InterNode, IntraNode]` pair but an **ordered level list**
//! derived from the topology's extent vector
//! ([`han_machine::Topology::levels`]), outermost first.
//!
//! How the levels thread through the framework:
//!
//! * **Splitting** — [`han_mpi::Comm::split_level`] decomposes any
//!   communicator by the topology's level-`k` groups, generalizing the
//!   `split_type(COMM_TYPE_SHARED)` two-level split (level 0 ≡ nodes).
//! * **Composition** — the builders in [`crate::bcast`] and
//!   [`crate::allreduce`] keep the paper's task pipeline at level 0
//!   (`ib`/`ir` over node leaders) and treat everything below as one
//!   *composite deep phase*: `descend_bcast` / `ascend_reduce` recurse
//!   through levels `1..depth`, moving each segment across one level's
//!   subgroup leaders before recursing into the subgroups. On a depth-2
//!   topology the recursion bottoms out immediately and is structurally
//!   identical to the classic intra phase (pinned by
//!   `tests/hierarchy_equivalence.rs` against [`crate::classic`]).
//! * **Configuration** — [`crate::HanConfig::smod_at`] selects the
//!   submodule per level: level 1 is the Table-II `smod`, deeper levels
//!   use the `deep` entries and fall back to `smod`, so every two-level
//!   configuration remains valid at any depth.
//! * **Cost** — the simulated machine charges transfers that cross a
//!   shared-memory-domain boundary (`Topology::sm_domain_of`) the
//!   `xsocket_bus_factor` derating, so deeper levels are observable in
//!   virtual time, and the tuner's per-level sums (eqs. 1–4 generalized)
//!   see them.
//!
//! [`order`] materializes the list for dispatch, reporting, and docs.

use han_machine::Topology;

/// What medium a hierarchy level communicates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Across nodes, over the interconnect (Libnbc / ADAPT submodules).
    Network,
    /// Within a node, over shared memory (SM / SOLO submodules).
    SharedMemory,
}

/// One level of the machine hierarchy, outermost first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Level {
    /// Index into the topology's level list (0 = outermost).
    pub index: usize,
    /// Number of level-`index` units inside one unit of the parent level.
    pub extent: usize,
    pub kind: LevelKind,
}

impl Level {
    /// True for the innermost level, where the recursion bottoms out in a
    /// flat submodule collective.
    pub fn is_leaf(&self, topo: &Topology) -> bool {
        self.index + 1 == topo.depth()
    }
}

/// The ordered level list for a topology: data descends through it for
/// one-to-all collectives and ascends for reductions. Level 0 is always
/// the network; every deeper level is shared memory.
pub fn order(topo: &Topology) -> Vec<Level> {
    topo.levels()
        .iter()
        .enumerate()
        .map(|(index, &extent)| Level {
            index,
            extent,
            kind: if index == 0 {
                LevelKind::Network
            } else {
                LevelKind::SharedMemory
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_order_matches_paper() {
        let topo = Topology::new(4, 8);
        let levels = order(&topo);
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].kind, LevelKind::Network);
        assert_eq!(levels[1].kind, LevelKind::SharedMemory);
        assert!(levels[1].is_leaf(&topo));
        assert!(!levels[0].is_leaf(&topo));
    }

    #[test]
    fn deep_order_is_data_driven() {
        let topo = Topology::from_levels(&[4, 2, 16]);
        let levels = order(&topo);
        assert_eq!(levels.len(), 3);
        assert_eq!(
            levels.iter().map(|l| l.extent).collect::<Vec<_>>(),
            vec![4, 2, 16]
        );
        assert!(levels[1].kind == LevelKind::SharedMemory);
        assert!(!levels[1].is_leaf(&topo));
        assert!(levels[2].is_leaf(&topo));
    }
}
