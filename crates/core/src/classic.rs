//! The pre-generalization two-level pipelines, kept **verbatim** as
//! regression oracles.
//!
//! The N-level refactor rewrote [`crate::bcast`], [`crate::allreduce`]
//! and [`crate::extend`] to chain segment frontiers recursively through
//! the topology's level list. Its non-negotiable invariant is that every
//! two-level machine produces bit-identical virtual times and tuned
//! winners before and after the refactor — so the exact pre-refactor
//! builders live on here, unmodified, and `tests/hierarchy_equivalence.rs`
//! pins the generalized path against them config by config. Nothing else
//! should call this module.

use crate::allreduce::{inter_reduce, intra_reduce, AllreduceBuild};
use crate::bcast::{inter_bcast, intra_bcast, BcastBuild};
use crate::config::HanConfig;
use han_colls::p2p::{dissemination_barrier, ring_allgather};
use han_colls::stack::{split_with_root, sublocals, BuildCtx};
use han_colls::Frontier;
use han_mpi::{BufRange, Comm, DataType, OpId, OpKind, ReduceOp};

/// World-rank-ordered slot index of `world` within its node's members.
#[allow(dead_code)]
fn node_slot(members: &[usize], world: usize) -> usize {
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    sorted.iter().position(|&r| r == world).expect("member")
}

/// Build the HAN broadcast from comm-local `root` over `comm`.
pub fn build_bcast(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
) -> BcastBuild {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return BcastBuild {
            frontier: deps.clone(),
            boundaries: Vec::new(),
            segments: 1,
        };
    }
    let root_world = comm.world_rank(root);
    let (low, up) = split_with_root(comm, &cx.topo, root_world);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = up.local_rank(root_world).expect("root leads its node");

    let node = cx.node;
    let lvl = *cx.levels.innermost();
    let fs = han_machine::coarsen_fs(cfg.fs, bufs[0].len, &node, &cx.levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();

    // Per-leader current boundary (dependency list for the next task) and
    // per-rank intra-broadcast chains.
    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut sb_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    // All node ops of the previous segment's sb, per leader (flow control:
    // the leader's task joins the whole node's intra broadcast).
    let mut sb_node_prev: Vec<Vec<OpId>> = vec![Vec::new(); up.size()];
    let mut boundaries = Vec::with_capacity(u + 1);

    for i in 0..u {
        // ib(i) over the leaders, from each leader's current boundary.
        let mut up_deps = Frontier::empty(up.size());
        for (ul, dep) in boundary.iter().enumerate() {
            up_deps.set(ul, dep.clone());
        }
        let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
        let f_ib = inter_bcast(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, i as u64);

        // Task boundary: join ib(i) with sb(i-1) on each leader.
        let mut joins = Vec::with_capacity(up.size());
        for ul in 0..up.size() {
            let mut ops: Vec<OpId> = f_ib.get(ul).to_vec();
            ops.extend_from_slice(&sb_node_prev[ul]);
            let j = cx.b.nop(up.world_rank(ul), &ops);
            boundary[ul] = vec![j];
            joins.push(j);
        }
        boundaries.push(joins);

        // sb(i) on each node: leader starts from the fresh boundary,
        // non-leaders from their own chains.
        for (ni, lc) in low.iter().enumerate() {
            let locals = &low_locals[ni];
            let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][i]).collect();
            let mut sub_deps = Frontier::empty(lc.size());
            sub_deps.set(0, boundary[ni].clone());
            for (j, &l) in locals.iter().enumerate().skip(1) {
                sub_deps.set(j, sb_chain[l].clone());
            }
            let f_sb = intra_bcast(cx.b, cfg, &node, &lvl, lc, &sub_bufs, &sub_deps);
            let mut node_ops = Vec::new();
            for (j, &l) in locals.iter().enumerate() {
                sb_chain[l] = f_sb.get(j).to_vec();
                node_ops.extend_from_slice(f_sb.get(j));
            }
            sb_node_prev[ni] = node_ops;
        }
    }

    // Final task sb(u-1): leaders join the last intra broadcast.
    let mut joins = Vec::with_capacity(up.size());
    for ul in 0..up.size() {
        let mut ops = boundary[ul].clone();
        ops.extend_from_slice(&sb_node_prev[ul]);
        let j = cx.b.nop(up.world_rank(ul), &ops);
        boundary[ul] = vec![j];
        joins.push(j);
    }
    boundaries.push(joins);

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, sb_chain[l].clone());
        }
    }
    BcastBuild {
        frontier,
        boundaries,
        segments: u,
    }
}

/// Build the HAN allreduce (in place over `bufs`, commutative `op`).
pub fn build_allreduce(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    bufs: &[BufRange],
    op: ReduceOp,
    dtype: DataType,
    deps: &Frontier,
) -> AllreduceBuild {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return AllreduceBuild {
            frontier: deps.clone(),
            boundaries: Vec::new(),
            segments: 1,
        };
    }
    let (low, up) = comm.split_node(&cx.topo);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = 0; // same root for ir and ib (paper section III-B)

    // Segment at datatype granularity: a reduction segment must hold a
    // whole number of elements.
    let node = cx.node;
    let lvl = *cx.levels.innermost();
    let el = dtype.size() as u64;
    let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, bufs[0].len, &node, &cx.levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();
    let nl = up.size();

    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut child_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();

    // Per-segment phase completions needed by the next phase.
    let mut sr_leader: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); nl]; u]; // [seg][ul]
    let mut ir_f: Vec<Option<Frontier>> = vec![None; u]; // over up
    let mut ib_f: Vec<Option<Frontier>> = vec![None; u]; // over up
    let mut boundaries = Vec::with_capacity(u + 3);

    for t in 0..u + 3 {
        // Ops issued in this task, per leader and per non-leader rank.
        let mut issued_leader: Vec<Vec<OpId>> = vec![Vec::new(); nl];
        let mut issued_child: Vec<Vec<OpId>> = vec![Vec::new(); n];

        // sr(t): intra-node reduce of segment t.
        if t < u {
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][t]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                sub_deps.set(0, boundary[ni].clone());
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = intra_reduce(cx.b, cfg, &node, &lvl, lc, &sub_bufs, &sub_deps, op, dtype);
                sr_leader[t][ni] = f.get(0).to_vec();
                issued_leader[ni].extend_from_slice(f.get(0));
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    issued_child[l].extend_from_slice(f.get(j));
                }
            }
        }

        // ir(t-1): inter-node reduce of segment t-1 to the up-root.
        if t >= 1 && t - 1 < u {
            let i = t - 1;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(&sr_leader[i][ul]);
                up_deps.set(ul, d);
            }
            let f = inter_reduce(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, op, dtype);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
            ir_f[i] = Some(f);
        }

        // ib(t-2): inter-node broadcast of the reduced segment t-2.
        if t >= 2 && t - 2 < u {
            let i = t - 2;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let prev = ir_f[i].take().expect("ir before ib");
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(prev.get(ul));
                up_deps.set(ul, d);
            }
            let f = inter_bcast(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, i as u64);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
            ib_f[i] = Some(f);
        }

        // sb(t-3): intra-node broadcast of the final segment t-3.
        if t >= 3 && t - 3 < u {
            let i = t - 3;
            let prev = ib_f[i].take().expect("ib before sb");
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][i]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                let mut d = boundary[ni].clone();
                d.extend_from_slice(prev.get(ni));
                sub_deps.set(0, d);
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = intra_bcast(cx.b, cfg, &node, &lvl, lc, &sub_bufs, &sub_deps);
                for (j, &l) in locals.iter().enumerate() {
                    if j == 0 {
                        issued_leader[ni].extend_from_slice(f.get(0));
                    } else {
                        issued_child[l].extend_from_slice(f.get(j));
                        // Leader's task joins the whole node's sb (bounce
                        // pool flow control), as in bcast.
                        issued_leader[ni].extend_from_slice(f.get(j));
                    }
                }
            }
        }

        // Task boundary joins.
        let mut joins = Vec::with_capacity(nl);
        for ul in 0..nl {
            if issued_leader[ul].is_empty() {
                // Degenerate (u < 3 drains some steps early): carry over.
                joins.push(cx.b.nop(up.world_rank(ul), &boundary[ul]));
            } else {
                joins.push(cx.b.nop(up.world_rank(ul), &issued_leader[ul]));
            }
            boundary[ul] = vec![joins[ul]];
        }
        boundaries.push(joins);
        for l in 0..n {
            if !issued_child[l].is_empty() {
                child_chain[l] = std::mem::take(&mut issued_child[l]);
            }
        }
    }

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, child_chain[l].clone());
        }
    }
    AllreduceBuild {
        frontier,
        boundaries,
        segments: u,
    }
}

/// Hierarchical `MPI_Reduce` to comm-local `root`: a pipelined `sr` → `ir`
/// chain (in place at the root; interior buffers clobbered).
#[allow(clippy::too_many_arguments)]
pub fn build_reduce(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    op: ReduceOp,
    dtype: DataType,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let root_world = comm.world_rank(root);
    let (low, up) = split_with_root(comm, &cx.topo, root_world);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = up.local_rank(root_world).expect("root leads its node");
    let nl = up.size();
    let node = cx.node;
    let lvl = *cx.levels.innermost();

    // Segment at datatype granularity: a reduction segment must hold a
    // whole number of elements.
    let el = dtype.size() as u64;
    let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, bufs[0].len, &node, &cx.levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();

    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut child_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    let mut sr_leader: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); nl]; u];

    for t in 0..u + 1 {
        let mut issued_leader: Vec<Vec<OpId>> = vec![Vec::new(); nl];

        if t < u {
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][t]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                sub_deps.set(0, boundary[ni].clone());
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = intra_reduce(cx.b, cfg, &node, &lvl, lc, &sub_bufs, &sub_deps, op, dtype);
                sr_leader[t][ni] = f.get(0).to_vec();
                issued_leader[ni].extend_from_slice(f.get(0));
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    child_chain[l] = f.get(j).to_vec();
                }
            }
        }
        if t >= 1 {
            let i = t - 1;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(&sr_leader[i][ul]);
                up_deps.set(ul, d);
            }
            let f = inter_reduce(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, op, dtype);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
        }
        for ul in 0..nl {
            if !issued_leader[ul].is_empty() {
                let j = cx.b.nop(up.world_rank(ul), &issued_leader[ul]);
                boundary[ul] = vec![j];
            }
        }
    }

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, child_chain[l].clone());
        }
    }
    frontier
}

/// Hierarchical `MPI_Allgather`: intra-node gather to leaders, ring
/// allgather of node arrays across leaders, intra-node broadcast of the
/// assembled array. Requires equal node populations (true for world
/// communicators) and ascending ranks.
pub fn build_allgather(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    bufs: &[BufRange],
    block: u64,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    assert!(
        comm.ranks().windows(2).all(|w| w[0] < w[1]),
        "allgather requires an ascending-rank communicator"
    );
    let (low, up) = comm.split_node(&cx.topo);
    let ppn = low[0].size();
    assert!(
        low.iter().all(|lc| lc.size() == ppn),
        "allgather requires equal node populations"
    );
    let node_bytes = block * ppn as u64;

    // Phase 1: gather node blocks into each leader's slice of its own
    // (full-size) buffer.
    let up_locals = sublocals(comm, &up);
    let mut leader_ready: Vec<Vec<OpId>> = Vec::with_capacity(low.len());
    let mut out = Frontier::empty(n);
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let leader_l = up_locals[ni];
        let node_slice = bufs[leader_l].slice(ni as u64 * node_bytes, node_bytes);
        let mut ready = Vec::new();
        for (j, &l) in locals.iter().enumerate() {
            let w = lc.world_rank(j);
            let slot = node_slice.slice(j as u64 * block, block);
            let my_block = bufs[l].slice(l as u64 * block, block);
            let op = if j == 0 {
                // Leader's own block is already in place.
                cx.b.nop(wleader, deps.get(l))
            } else {
                let expose = cx.b.nop(w, deps.get(l));
                out.push(l, expose);
                cx.b.op(
                    wleader,
                    OpKind::CrossCopy {
                        from: w as u32,
                        bytes: block,
                        src: Some(my_block),
                        dst: Some(slot),
                    },
                    &[expose],
                )
            };
            ready.push(op);
        }
        leader_ready.push(ready);
    }

    // Phase 2: ring allgather of node arrays across leaders, directly in
    // the leaders' full-size buffers.
    let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| bufs[l]).collect();
    let mut up_deps = Frontier::empty(up.size());
    for (ul, r) in leader_ready.iter().enumerate() {
        up_deps.set(ul, r.clone());
    }
    let f_up = ring_allgather(cx.b, &up, &up_bufs, node_bytes, &up_deps);

    // Phase 3: intra-node broadcast of the full array.
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
        let mut sub_deps = Frontier::empty(lc.size());
        sub_deps.set(0, f_up.get(ni).to_vec());
        for (j, &l) in locals.iter().enumerate().skip(1) {
            sub_deps.set(j, deps.get(l).to_vec());
        }
        let lvl = *cx.levels.innermost();
        let f = intra_bcast(cx.b, cfg, &cx.node, &lvl, lc, &sub_bufs, &sub_deps);
        for (j, &l) in locals.iter().enumerate() {
            let mut v = out.get(l).to_vec();
            v.extend_from_slice(f.get(j));
            out.set(l, v);
        }
    }
    out
}
/// Hierarchical `MPI_Barrier`: intra-node arrival (children signal the
/// leader), inter-node dissemination across leaders, intra-node release.
/// Three flag hops instead of `coll_tuned`'s ⌈log₂(n·p)⌉ network rounds.
pub fn build_barrier(cx: &mut BuildCtx, comm: &Comm, deps: &Frontier) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let (low, up) = comm.split_node(&cx.topo);

    // Phase 1: arrival — each leader joins its node's members.
    let mut up_deps = Frontier::empty(up.size());
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let mut arrive = deps.get(locals[0]).to_vec();
        for (j, &l) in locals.iter().enumerate().skip(1) {
            let w = lc.world_rank(j);
            let flag = cx.b.nop(w, deps.get(l));
            arrive.push(flag);
        }
        let joined = cx.b.nop(wleader, &arrive);
        up_deps.set(ni, vec![joined]);
    }

    // Phase 2: inter-node dissemination across leaders.
    let f_up = dissemination_barrier(cx.b, &up, &up_deps);

    // Phase 3: release — children wait on their leader's exit.
    let mut out = Frontier::empty(n);
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let leader_exit = cx.b.nop(wleader, f_up.get(ni));
        out.set(locals[0], vec![leader_exit]);
        for (j, &l) in locals.iter().enumerate().skip(1) {
            let w = lc.world_rank(j);
            let release = cx.b.nop(w, &[leader_exit]);
            out.set(l, vec![release]);
        }
    }
    out
}
