//! The HAN facade: an [`MpiStack`] backed by either a fixed configuration
//! or an autotuned decision source (the lookup table from `han-tuner`).

use crate::allreduce::build_allreduce;
use crate::bcast::build_bcast;
use crate::config::HanConfig;
use crate::extend::{build_allgather, build_barrier, build_gather, build_reduce, build_scatter};
use han_colls::stack::{BuildCtx, Coll, MpiStack, Unsupported};
use han_colls::Frontier;
use han_machine::Flavor;
use han_mpi::{BufRange, Comm, DataType, ReduceOp};
use std::sync::Arc;

/// Where HAN gets its configuration for a given collective invocation —
/// the second autotuning step of section III-C: "use the lookup table …
/// to generate decisions for any inputs (n, p, m and t)".
pub trait ConfigSource: Send + Sync {
    fn config(&self, coll: Coll, nodes: usize, ppn: usize, bytes: u64) -> HanConfig;
}

/// A fixed configuration is itself a (degenerate) source.
impl ConfigSource for HanConfig {
    fn config(&self, _coll: Coll, _nodes: usize, _ppn: usize, _bytes: u64) -> HanConfig {
        *self
    }
}

/// The HAN collective framework.
#[derive(Clone)]
pub struct Han {
    source: Arc<dyn ConfigSource>,
    label: String,
}

impl Han {
    /// HAN with one fixed configuration (used while tuning).
    pub fn with_config(cfg: HanConfig) -> Self {
        Han {
            source: Arc::new(cfg),
            label: "HAN".into(),
        }
    }

    /// HAN with an autotuned decision source.
    pub fn tuned(source: Arc<dyn ConfigSource>) -> Self {
        Han {
            source,
            label: "HAN".into(),
        }
    }

    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn cfg(&self, cx: &BuildCtx, coll: Coll, bytes: u64) -> HanConfig {
        self.source
            .config(coll, cx.topo.nodes(), cx.topo.ppn(), bytes)
    }
}

impl std::fmt::Debug for Han {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Han({})", self.label)
    }
}

impl MpiStack for Han {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn flavor(&self) -> Flavor {
        // HAN is built inside Open MPI and rides its P2P stack.
        Flavor::OpenMpi
    }

    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let cfg = self.cfg(cx, Coll::Bcast, bufs[0].len);
        build_bcast(cx, &cfg, comm, root, bufs, deps).frontier
    }

    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Frontier {
        let cfg = self.cfg(cx, Coll::Allreduce, bufs[0].len);
        build_allreduce(cx, &cfg, comm, bufs, op, dtype, deps).frontier
    }

    fn reduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Reduce, bufs[0].len);
        Ok(build_reduce(cx, &cfg, comm, root, bufs, op, dtype, deps))
    }

    fn gather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src: &[BufRange],
        dst_root: BufRange,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Gather, src[0].len);
        Ok(build_gather(cx, &cfg, comm, root, src, dst_root, deps))
    }

    fn scatter(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src_root: BufRange,
        dst: &[BufRange],
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Scatter, dst[0].len);
        Ok(build_scatter(cx, &cfg, comm, root, src_root, dst, deps))
    }

    fn allgather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        block: u64,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Allgather, block);
        Ok(build_allgather(cx, &cfg, comm, bufs, block, deps))
    }

    fn barrier(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Ok(build_barrier(cx, comm, deps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::{build_coll, time_coll};
    use han_colls::TunedOpenMpi;
    use han_machine::{mini, Machine};
    use han_mpi::{execute_seeded, ExecOpts};

    #[test]
    fn han_bcast_via_stack_trait_delivers() {
        let preset = mini(3, 3);
        let han = Han::with_config(HanConfig::default().with_fs(64));
        let prog = build_coll(&han, &preset, Coll::Bcast, 200, 0).unwrap();
        let mut m = Machine::from_preset(&preset);
        let buf = BufRange::new(0, 200);
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(han.flavor().p2p()),
            |mm| mm.write(0, buf, &[13u8; 200]),
        );
        for r in 0..9 {
            assert_eq!(mem.read(r, buf), vec![13u8; 200].as_slice(), "rank {r}");
        }
    }

    #[test]
    fn han_beats_tuned_on_fat_nodes() {
        // The headline claim at mini scale: a topology-aware pipelined HAN
        // beats the flat tuned decision for both small and large messages.
        let preset = mini(4, 8);
        for (bytes, cfg) in [
            (8 * 1024, HanConfig::default().with_fs(8 * 1024)),
            (
                4 << 20,
                HanConfig::default()
                    .with_fs(512 * 1024)
                    .with_intra(han_colls::IntraModule::Solo),
            ),
        ] {
            let t_han = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, bytes, 0).unwrap();
            let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, bytes, 0).unwrap();
            assert!(
                t_han < t_tuned,
                "HAN ({t_han}) should beat tuned ({t_tuned}) at {bytes}B"
            );
        }
    }

    #[test]
    fn dynamic_source_is_consulted() {
        struct BySize;
        impl ConfigSource for BySize {
            fn config(&self, _c: Coll, _n: usize, _p: usize, bytes: u64) -> HanConfig {
                if bytes > 1024 {
                    HanConfig::default().with_fs(512)
                } else {
                    HanConfig::default().with_fs(64)
                }
            }
        }
        let han = Han::tuned(Arc::new(BySize));
        let preset = mini(2, 2);
        // Both sizes must run correctly through the dynamic source.
        for bytes in [256u64, 4096] {
            let prog = build_coll(&han, &preset, Coll::Bcast, bytes, 0).unwrap();
            assert!(!prog.is_empty());
        }
    }

    #[test]
    fn label_override() {
        let han = Han::with_config(HanConfig::default()).labeled("HAN (tuned)");
        assert_eq!(han.name(), "HAN (tuned)");
    }
}
