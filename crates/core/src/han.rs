//! The HAN facade: an [`MpiStack`] backed by either a fixed configuration
//! or an autotuned decision source (the lookup table from `han-tuner`).

use crate::allreduce::build_allreduce;
use crate::bcast::build_bcast;
use crate::config::HanConfig;
use crate::extend::{build_allgather, build_barrier, build_gather, build_reduce, build_scatter};
use han_colls::stack::{BuildCtx, Coll, MpiStack, Unsupported};
use han_colls::Frontier;
use han_machine::{Flavor, MachinePreset};
use han_mpi::{BufRange, Comm, DataType, ReduceOp};
use std::sync::Arc;

/// Where HAN gets its configuration for a given collective invocation —
/// the second autotuning step of section III-C: "use the lookup table …
/// to generate decisions for any inputs (n, p, m and t)".
pub trait ConfigSource: Send + Sync {
    fn config(&self, coll: Coll, nodes: usize, ppn: usize, bytes: u64) -> HanConfig;
}

/// A fixed configuration is itself a (degenerate) source.
impl ConfigSource for HanConfig {
    fn config(&self, _coll: Coll, _nodes: usize, _ppn: usize, _bytes: u64) -> HanConfig {
        *self
    }
}

/// The HAN collective framework.
#[derive(Clone)]
pub struct Han {
    source: Arc<dyn ConfigSource>,
    label: String,
    /// The configuration when it is fixed (tuning sweeps). Only a fixed
    /// config can be template-keyed: a dynamic source may pick different
    /// configs for different message sizes, which changes the DAG shape.
    fixed: Option<HanConfig>,
}

impl Han {
    /// HAN with one fixed configuration (used while tuning).
    pub fn with_config(cfg: HanConfig) -> Self {
        Han {
            source: Arc::new(cfg),
            label: "HAN".into(),
            fixed: Some(cfg),
        }
    }

    /// HAN with an autotuned decision source.
    pub fn tuned(source: Arc<dyn ConfigSource>) -> Self {
        Han {
            source,
            label: "HAN".into(),
            fixed: None,
        }
    }

    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    fn cfg(&self, cx: &BuildCtx, coll: Coll, bytes: u64) -> HanConfig {
        self.source
            .config(coll, cx.topo.nodes(), cx.topo.ppn(), bytes)
    }
}

impl std::fmt::Debug for Han {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Han({})", self.label)
    }
}

impl MpiStack for Han {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn flavor(&self) -> Flavor {
        // HAN is built inside Open MPI and rides its P2P stack.
        Flavor::OpenMpi
    }

    fn bcast(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        deps: &Frontier,
    ) -> Frontier {
        let cfg = self.cfg(cx, Coll::Bcast, bufs[0].len);
        build_bcast(cx, &cfg, comm, root, bufs, deps).frontier
    }

    fn allreduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Frontier {
        let cfg = self.cfg(cx, Coll::Allreduce, bufs[0].len);
        build_allreduce(cx, &cfg, comm, bufs, op, dtype, deps).frontier
    }

    fn reduce(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        bufs: &[BufRange],
        op: ReduceOp,
        dtype: DataType,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Reduce, bufs[0].len);
        Ok(build_reduce(cx, &cfg, comm, root, bufs, op, dtype, deps))
    }

    fn gather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src: &[BufRange],
        dst_root: BufRange,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Gather, src[0].len);
        Ok(build_gather(cx, &cfg, comm, root, src, dst_root, deps))
    }

    fn scatter(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        root: usize,
        src_root: BufRange,
        dst: &[BufRange],
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Scatter, dst[0].len);
        Ok(build_scatter(cx, &cfg, comm, root, src_root, dst, deps))
    }

    fn allgather(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        bufs: &[BufRange],
        block: u64,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        let cfg = self.cfg(cx, Coll::Allgather, block);
        Ok(build_allgather(cx, &cfg, comm, bufs, block, deps))
    }

    fn barrier(
        &self,
        cx: &mut BuildCtx,
        comm: &Comm,
        deps: &Frontier,
    ) -> Result<Frontier, Unsupported> {
        Ok(build_barrier(cx, comm, deps))
    }

    /// HAN's builds are templateable because, for a fixed config, every
    /// scalar in the program is affine in the message size once the build's
    /// integer-division decisions are pinned. The key therefore hashes the
    /// full preset and config (shape inputs) plus, per collective, the
    /// *ceil determinants*: the HAN segment count `u`, the shared-memory
    /// fragment count of the short remainder segment, and the ADAPT
    /// `ibs`/`irs` sub-segment counts of that remainder. Two sizes in the
    /// same class build programs of identical shape whose scalars differ
    /// affinely; anything the key fails to pin is caught downstream by
    /// `ProgramTemplate::learn`'s exact structural/slope checks.
    ///
    /// Note: keys assume `build_coll`'s reduction operand conventions
    /// (`Sum`/`Float32`), which is the only path the template store serves.
    fn template_key(
        &self,
        preset: &MachinePreset,
        coll: Coll,
        bytes: u64,
        root: usize,
    ) -> Option<u64> {
        let cfg = self.fixed?;
        if bytes == 0 {
            // Zero-length builds hit empty-buffer special cases; never
            // templated.
            return None;
        }
        let mut h = Fnv1a::new();
        h.write_str(&serde_json::to_string(preset).ok()?);
        h.write_str(&serde_json::to_string(&cfg).ok()?);
        h.write_u64(coll as u64);
        h.write_u64(root as u64);
        let node = &preset.node;
        // Remainder (last-segment) size for segment width `fs`. The
        // builders coarsen `fs` on launch-charging (GPU-like) levels, so
        // the key must pin the *effective* segmentation.
        let lv = preset.level_params();
        let rem = |fs: u64| bytes - (bytes.div_ceil(fs) - 1) * fs;
        match coll {
            Coll::Bcast => {
                let fs = han_machine::coarsen_fs(cfg.fs.max(1), bytes, node, &lv);
                let rem = rem(fs);
                h.write_u64(bytes.div_ceil(fs));
                h.write_u64(node.sm_fragments(rem));
                if let Some(ibs) = cfg.ibs {
                    h.write_u64(rem.div_ceil(ibs.max(1)));
                }
            }
            Coll::Allreduce | Coll::Reduce => {
                // The builders quantize `fs` to whole elements.
                let el = DataType::Float32.size() as u64;
                let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, bytes, node, &lv);
                let rem = rem(fs);
                h.write_u64(bytes.div_ceil(fs));
                h.write_u64(node.sm_fragments(rem));
                if let Some(ibs) = cfg.ibs {
                    h.write_u64(rem.div_ceil(ibs.max(1)));
                }
                if let Some(irs) = cfg.irs {
                    h.write_u64(rem.div_ceil(irs.max(1)));
                }
            }
            // Whole-buffer CrossCopy pulls and node-array messages: purely
            // affine, no integer-division decisions to pin.
            Coll::Gather | Coll::Scatter => {}
            Coll::Allgather => {
                // Phase 3 broadcasts the full n·block array intra-node in
                // one piece; only its fragment count is a ceil.
                let n = preset.topology.world_size() as u64;
                h.write_u64(node.sm_fragments(n.checked_mul(bytes)?));
            }
            // Byte-independent by construction.
            Coll::Barrier => {}
        }
        Some(h.finish())
    }
}

/// FNV-1a, the same construction `han-tuner` uses for preset fingerprints.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn write_str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_colls::stack::{build_coll, time_coll};
    use han_colls::TunedOpenMpi;
    use han_machine::{mini, Machine};
    use han_mpi::{execute_seeded, ExecOpts};

    #[test]
    fn han_bcast_via_stack_trait_delivers() {
        let preset = mini(3, 3);
        let han = Han::with_config(HanConfig::default().with_fs(64));
        let prog = build_coll(&han, &preset, Coll::Bcast, 200, 0).unwrap();
        let mut m = Machine::from_preset(&preset);
        let buf = BufRange::new(0, 200);
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(han.flavor().p2p()),
            |mm| mm.write(0, buf, &[13u8; 200]),
        );
        for r in 0..9 {
            assert_eq!(mem.read(r, buf), vec![13u8; 200].as_slice(), "rank {r}");
        }
    }

    #[test]
    fn han_beats_tuned_on_fat_nodes() {
        // The headline claim at mini scale: a topology-aware pipelined HAN
        // beats the flat tuned decision for both small and large messages.
        let preset = mini(4, 8);
        for (bytes, cfg) in [
            (8 * 1024, HanConfig::default().with_fs(8 * 1024)),
            (
                4 << 20,
                HanConfig::default()
                    .with_fs(512 * 1024)
                    .with_intra(han_colls::IntraModule::Solo),
            ),
        ] {
            let t_han = time_coll(&Han::with_config(cfg), &preset, Coll::Bcast, bytes, 0).unwrap();
            let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Bcast, bytes, 0).unwrap();
            assert!(
                t_han < t_tuned,
                "HAN ({t_han}) should beat tuned ({t_tuned}) at {bytes}B"
            );
        }
    }

    #[test]
    fn dynamic_source_is_consulted() {
        struct BySize;
        impl ConfigSource for BySize {
            fn config(&self, _c: Coll, _n: usize, _p: usize, bytes: u64) -> HanConfig {
                if bytes > 1024 {
                    HanConfig::default().with_fs(512)
                } else {
                    HanConfig::default().with_fs(64)
                }
            }
        }
        let han = Han::tuned(Arc::new(BySize));
        let preset = mini(2, 2);
        // Both sizes must run correctly through the dynamic source.
        for bytes in [256u64, 4096] {
            let prog = build_coll(&han, &preset, Coll::Bcast, bytes, 0).unwrap();
            assert!(!prog.is_empty());
        }
    }

    #[test]
    fn label_override() {
        let han = Han::with_config(HanConfig::default()).labeled("HAN (tuned)");
        assert_eq!(han.name(), "HAN (tuned)");
    }
}
