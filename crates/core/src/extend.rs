//! Extension collectives: Reduce, Gather, Scatter, Allgather.
//!
//! The paper: "Similar designs can be extended to other collective
//! operations, such as MPI_Reduce, MPI_Gather, and MPI_Allgather, as long
//! as the collective operations can be divided into a serial of tasks."
//! `MPI_Reduce` gets the full two-phase (`sr`/`ir`) task pipeline; the
//! block-redistribution collectives use the two-level composition without
//! segmentation (their per-rank blocks are the natural pipeline unit).

use crate::allreduce::{ascend_reduce, inter_reduce};
use crate::bcast::descend_bcast;
use crate::config::HanConfig;
use han_colls::p2p::{dissemination_barrier, ring_allgather};
use han_colls::stack::{split_with_root, sublocals, BuildCtx};
use han_colls::Frontier;
use han_machine::Topology;
use han_mpi::{BufRange, Comm, DataType, OpId, OpKind, ProgramBuilder, ReduceOp};

/// Hierarchical `MPI_Reduce` to comm-local `root`: a pipelined `sr` → `ir`
/// chain (in place at the root; interior buffers clobbered).
#[allow(clippy::too_many_arguments)]
pub fn build_reduce(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    op: ReduceOp,
    dtype: DataType,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let root_world = comm.world_rank(root);
    let (low, up) = split_with_root(comm, &cx.topo, root_world);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = up.local_rank(root_world).expect("root leads its node");
    let nl = up.size();
    let node = cx.node;

    // Segment at datatype granularity: a reduction segment must hold a
    // whole number of elements.
    let topo = cx.topo;
    let levels = cx.levels;
    let el = dtype.size() as u64;
    let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, bufs[0].len, &node, &levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();

    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut child_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    let mut sr_leader: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); nl]; u];

    for t in 0..u + 1 {
        let mut issued_leader: Vec<Vec<OpId>> = vec![Vec::new(); nl];

        if t < u {
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][t]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                sub_deps.set(0, boundary[ni].clone());
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = ascend_reduce(
                    cx.b, cfg, &topo, &node, &levels, 1, lc, &sub_bufs, &sub_deps, op, dtype,
                );
                sr_leader[t][ni] = f.get(0).to_vec();
                issued_leader[ni].extend_from_slice(f.get(0));
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    child_chain[l] = f.get(j).to_vec();
                }
            }
        }
        if t >= 1 {
            let i = t - 1;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(&sr_leader[i][ul]);
                up_deps.set(ul, d);
            }
            let f = inter_reduce(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, op, dtype);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
        }
        for ul in 0..nl {
            if !issued_leader[ul].is_empty() {
                let j = cx.b.nop(up.world_rank(ul), &issued_leader[ul]);
                boundary[ul] = vec![j];
            }
        }
    }

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, child_chain[l].clone());
        }
    }
    frontier
}

/// Recursive arrival: fold a level-`level` group's members up to its
/// leader, one flag join per level. At the innermost level this is the
/// classic per-node arrive (child flags + one leader join); above it the
/// subgroup joins chain upward. Returns the group leader's join op.
fn arrive_level(
    b: &mut ProgramBuilder,
    topo: &Topology,
    level: usize,
    gc: &Comm,
    locals: &[usize],
    deps: &Frontier,
) -> OpId {
    let wleader = gc.world_rank(0);
    if level + 1 >= topo.depth() {
        let mut arrive = deps.get(locals[0]).to_vec();
        for (j, &l) in locals.iter().enumerate().skip(1) {
            let w = gc.world_rank(j);
            let flag = b.nop(w, deps.get(l));
            arrive.push(flag);
        }
        return b.nop(wleader, &arrive);
    }
    let (subs, _) = gc.split_level(topo, level);
    if subs.len() == 1 {
        return arrive_level(b, topo, level + 1, gc, locals, deps);
    }
    let mut arrive = Vec::with_capacity(subs.len());
    for sc in &subs {
        let sc_in_gc = sublocals(gc, sc);
        let sc_locals: Vec<usize> = sc_in_gc.iter().map(|&l| locals[l]).collect();
        arrive.push(arrive_level(b, topo, level + 1, sc, &sc_locals, deps));
    }
    b.nop(wleader, &arrive)
}

/// Recursive release: the group leader's exit fans out level by level —
/// subgroup leaders wait on it, then release their own members.
fn release_level(
    b: &mut ProgramBuilder,
    topo: &Topology,
    level: usize,
    gc: &Comm,
    locals: &[usize],
    entry: &[OpId],
    out: &mut Frontier,
) {
    if level + 1 >= topo.depth() {
        let wleader = gc.world_rank(0);
        let leader_exit = b.nop(wleader, entry);
        out.set(locals[0], vec![leader_exit]);
        for (j, &l) in locals.iter().enumerate().skip(1) {
            let w = gc.world_rank(j);
            let release = b.nop(w, &[leader_exit]);
            out.set(l, vec![release]);
        }
        return;
    }
    let (subs, _) = gc.split_level(topo, level);
    if subs.len() == 1 {
        release_level(b, topo, level + 1, gc, locals, entry, out);
        return;
    }
    for sc in &subs {
        let sc_in_gc = sublocals(gc, sc);
        let sc_locals: Vec<usize> = sc_in_gc.iter().map(|&l| locals[l]).collect();
        release_level(b, topo, level + 1, sc, &sc_locals, entry, out);
    }
}

/// Hierarchical `MPI_Barrier`: arrival flags chain up the level list to
/// each node leader, the leaders run an inter-node dissemination, and the
/// release fans back down — one flag hop per hierarchy level instead of
/// `coll_tuned`'s ⌈log₂(n·p)⌉ network rounds. On two-level topologies
/// this is exactly the classic arrive / disseminate / release barrier.
pub fn build_barrier(cx: &mut BuildCtx, comm: &Comm, deps: &Frontier) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    let topo = cx.topo;
    let (low, up) = comm.split_node(&topo);

    // Phase 1: arrival — each leader joins its node's members, level by
    // level.
    let mut up_deps = Frontier::empty(up.size());
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let joined = arrive_level(cx.b, &topo, 1, lc, &locals, deps);
        up_deps.set(ni, vec![joined]);
    }

    // Phase 2: inter-node dissemination across leaders.
    let f_up = dissemination_barrier(cx.b, &up, &up_deps);

    // Phase 3: release — members wait on their leaders' exits, level by
    // level.
    let mut out = Frontier::empty(n);
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        release_level(cx.b, &topo, 1, lc, &locals, f_up.get(ni), &mut out);
    }
    out
}

/// World-rank-ordered slot index of `world` within its node's members.
fn node_slot(members: &[usize], world: usize) -> usize {
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    sorted.iter().position(|&r| r == world).expect("member")
}

/// Hierarchical `MPI_Gather`: node leaders pull their node's blocks into a
/// node array, then an inter-node gather assembles the root's full array
/// (comm-local-rank order; comm ranks must be ascending).
#[allow(clippy::too_many_arguments)]
pub fn build_gather(
    cx: &mut BuildCtx,
    _cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    src: &[BufRange],
    dst_root: BufRange,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    let block = src[0].len;
    assert_eq!(dst_root.len, block * n as u64);
    assert!(
        comm.ranks().windows(2).all(|w| w[0] < w[1]),
        "gather requires an ascending-rank communicator"
    );
    if n == 1 {
        let cp = cx.b.op(
            comm.world_rank(0),
            OpKind::Copy {
                bytes: block,
                src: Some(src[0]),
                dst: Some(dst_root),
            },
            deps.get(0),
        );
        return Frontier::from_ops(vec![cp]);
    }
    let root_world = comm.world_rank(root);
    let (low, up) = split_with_root(comm, &cx.topo, root_world);
    let up_locals = sublocals(comm, &up);
    let mut out = Frontier::empty(n);

    // Phase 1: each leader pulls its node's blocks into a node array.
    let mut node_arrays = Vec::with_capacity(low.len());
    let mut leader_ready: Vec<Vec<OpId>> = Vec::with_capacity(low.len());
    for lc in &low {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let members: Vec<usize> = lc.ranks().to_vec();
        let arr =
            cx.b.alloc(wleader, block * lc.size() as u64)
                .slice(0, block * lc.size() as u64);
        let mut ready = Vec::new();
        for (j, &l) in locals.iter().enumerate() {
            let w = lc.world_rank(j);
            let slot = arr.slice(node_slot(&members, w) as u64 * block, block);
            let op = if j == 0 {
                cx.b.op(
                    wleader,
                    OpKind::Copy {
                        bytes: block,
                        src: Some(src[l]),
                        dst: Some(slot),
                    },
                    deps.get(l),
                )
            } else {
                // Leader pulls the child's block (child's data must be
                // ready: cross-rank dep through the child's frontier).
                let mut d: Vec<OpId> = deps.get(l).to_vec();
                let expose = cx.b.nop(w, &d);
                out.push(l, expose);
                d = vec![expose];
                cx.b.op(
                    wleader,
                    OpKind::CrossCopy {
                        from: w as u32,
                        bytes: block,
                        src: Some(src[l]),
                        dst: Some(slot),
                    },
                    &d,
                )
            };
            ready.push(op);
        }
        node_arrays.push(arr);
        leader_ready.push(ready);
    }

    // Phase 2: inter-node gather of node arrays into the root's dst.
    // Comm-local order is node-major (ascending ranks), so each node's
    // array lands contiguously.
    let mut offset = 0u64;
    let mut up_dst_slots = Vec::with_capacity(up.size());
    for lc in &low {
        let sz = block * lc.size() as u64;
        up_dst_slots.push(dst_root.slice(offset, sz));
        offset += sz;
    }
    for (ul, lc) in low.iter().enumerate() {
        let wleader = lc.world_rank(0);
        let leader_comm_local = up_locals[ul];
        if wleader == root_world {
            let cp = cx.b.op(
                root_world,
                OpKind::Copy {
                    bytes: node_arrays[ul].len,
                    src: Some(node_arrays[ul]),
                    dst: Some(up_dst_slots[ul]),
                },
                &leader_ready[ul],
            );
            out.push(leader_comm_local, cp);
        } else {
            let (snd, rcv) = cx.b.send_recv(
                wleader,
                root_world,
                node_arrays[ul].len,
                Some(node_arrays[ul]),
                Some(up_dst_slots[ul]),
                &leader_ready[ul],
                deps.get(root),
            );
            out.push(leader_comm_local, snd);
            out.push(root, rcv);
        }
    }
    out
}

/// Hierarchical `MPI_Scatter` (inverse of gather): the root sends each
/// node's slice to its leader; children pull their blocks.
#[allow(clippy::too_many_arguments)]
pub fn build_scatter(
    cx: &mut BuildCtx,
    _cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    src_root: BufRange,
    dst: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    let block = dst[0].len;
    assert_eq!(src_root.len, block * n as u64);
    assert!(
        comm.ranks().windows(2).all(|w| w[0] < w[1]),
        "scatter requires an ascending-rank communicator"
    );
    if n == 1 {
        let cp = cx.b.op(
            comm.world_rank(0),
            OpKind::Copy {
                bytes: block,
                src: Some(src_root),
                dst: Some(dst[0]),
            },
            deps.get(0),
        );
        return Frontier::from_ops(vec![cp]);
    }
    let root_world = comm.world_rank(root);
    let (low, _up) = split_with_root(comm, &cx.topo, root_world);
    let mut out = Frontier::empty(n);

    // Phase 1: root sends each node's slice to its leader.
    let mut offset = 0u64;
    let mut node_arrays = Vec::with_capacity(low.len());
    let mut leader_have: Vec<Vec<OpId>> = Vec::with_capacity(low.len());
    for lc in &low {
        let sz = block * lc.size() as u64;
        let slice = src_root.slice(offset, sz);
        offset += sz;
        let wleader = lc.world_rank(0);
        if wleader == root_world {
            node_arrays.push(slice);
            leader_have.push(deps.get(root).to_vec());
        } else {
            let arr = cx.b.alloc(wleader, sz).slice(0, sz);
            let (snd, rcv) = cx.b.send_recv(
                root_world,
                wleader,
                sz,
                Some(slice),
                Some(arr),
                deps.get(root),
                deps.get(comm.local_rank(wleader).unwrap()),
            );
            out.push(root, snd);
            node_arrays.push(arr);
            leader_have.push(vec![rcv]);
        }
    }

    // Phase 2: each rank takes its block from the leader's array.
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let members: Vec<usize> = lc.ranks().to_vec();
        for (j, &l) in locals.iter().enumerate() {
            let w = lc.world_rank(j);
            let slot = node_arrays[ni].slice(node_slot(&members, w) as u64 * block, block);
            let op = if j == 0 {
                cx.b.op(
                    wleader,
                    OpKind::Copy {
                        bytes: block,
                        src: Some(slot),
                        dst: Some(dst[l]),
                    },
                    &leader_have[ni],
                )
            } else {
                let mut d: Vec<OpId> = deps.get(l).to_vec();
                d.extend_from_slice(&leader_have[ni]);
                cx.b.op(
                    w,
                    OpKind::CrossCopy {
                        from: wleader as u32,
                        bytes: block,
                        src: Some(slot),
                        dst: Some(dst[l]),
                    },
                    &d,
                )
            };
            out.push(l, op);
        }
    }
    out
}

/// Hierarchical `MPI_Allgather`: intra-node gather to leaders, ring
/// allgather of node arrays across leaders, intra-node broadcast of the
/// assembled array. Requires equal node populations (true for world
/// communicators) and ascending ranks.
pub fn build_allgather(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    bufs: &[BufRange],
    block: u64,
    deps: &Frontier,
) -> Frontier {
    let n = comm.size();
    if n == 1 {
        return deps.clone();
    }
    assert!(
        comm.ranks().windows(2).all(|w| w[0] < w[1]),
        "allgather requires an ascending-rank communicator"
    );
    let (low, up) = comm.split_node(&cx.topo);
    let ppn = low[0].size();
    assert!(
        low.iter().all(|lc| lc.size() == ppn),
        "allgather requires equal node populations"
    );
    let node_bytes = block * ppn as u64;

    // Phase 1: gather node blocks into each leader's slice of its own
    // (full-size) buffer.
    let up_locals = sublocals(comm, &up);
    let mut leader_ready: Vec<Vec<OpId>> = Vec::with_capacity(low.len());
    let mut out = Frontier::empty(n);
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let wleader = lc.world_rank(0);
        let leader_l = up_locals[ni];
        let node_slice = bufs[leader_l].slice(ni as u64 * node_bytes, node_bytes);
        let mut ready = Vec::new();
        for (j, &l) in locals.iter().enumerate() {
            let w = lc.world_rank(j);
            let slot = node_slice.slice(j as u64 * block, block);
            let my_block = bufs[l].slice(l as u64 * block, block);
            let op = if j == 0 {
                // Leader's own block is already in place.
                cx.b.nop(wleader, deps.get(l))
            } else {
                let expose = cx.b.nop(w, deps.get(l));
                out.push(l, expose);
                cx.b.op(
                    wleader,
                    OpKind::CrossCopy {
                        from: w as u32,
                        bytes: block,
                        src: Some(my_block),
                        dst: Some(slot),
                    },
                    &[expose],
                )
            };
            ready.push(op);
        }
        leader_ready.push(ready);
    }

    // Phase 2: ring allgather of node arrays across leaders, directly in
    // the leaders' full-size buffers.
    let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| bufs[l]).collect();
    let mut up_deps = Frontier::empty(up.size());
    for (ul, r) in leader_ready.iter().enumerate() {
        up_deps.set(ul, r.clone());
    }
    let f_up = ring_allgather(cx.b, &up, &up_bufs, node_bytes, &up_deps);

    // Phase 3: intra-node broadcast of the full array.
    for (ni, lc) in low.iter().enumerate() {
        let locals = sublocals(comm, lc);
        let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
        let mut sub_deps = Frontier::empty(lc.size());
        sub_deps.set(0, f_up.get(ni).to_vec());
        for (j, &l) in locals.iter().enumerate().skip(1) {
            sub_deps.set(j, deps.get(l).to_vec());
        }
        let topo = cx.topo;
        let levels = cx.levels;
        let f = descend_bcast(
            cx.b, cfg, &topo, &cx.node, &levels, 1, lc, &sub_bufs, &sub_deps,
        );
        for (j, &l) in locals.iter().enumerate() {
            let mut v = out.get(l).to_vec();
            v.extend_from_slice(f.get(j));
            out.set(l, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::ProgramBuilder;
    use han_mpi::{execute_seeded, ExecOpts};

    #[test]
    fn reduce_pipeline_sums() {
        let preset = mini(3, 2);
        let n = 6;
        let cfg = HanConfig::default().with_fs(32);
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(128);
        let mut cx = BuildCtx::new(&mut b, &preset);
        build_reduce(
            &mut cx,
            &cfg,
            &comm,
            2,
            &bufs,
            ReduceOp::Sum,
            DataType::Int32,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..n {
                    let vals: Vec<u8> = (0..32)
                        .flat_map(|i| ((r + i) as i32).to_le_bytes())
                        .collect();
                    mm.write(r, bufs2[r], &vals);
                }
            },
        );
        let expect: Vec<u8> = (0..32)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|r| (r + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        assert_eq!(mem.read(2, bufs[2]), expect.as_slice());
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let preset = mini(2, 3);
        let n = 6;
        let root = 4; // non-leader root
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let src: Vec<BufRange> = (0..n).map(|r| b.alloc(r, 4)).collect();
        let dst = b.alloc(root, 24);
        let mut cx = BuildCtx::new(&mut b, &preset);
        build_gather(
            &mut cx,
            &HanConfig::default(),
            &comm,
            root,
            &src,
            dst,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let src2 = src.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..n {
                    mm.write(r, src2[r], &[r as u8; 4]);
                }
            },
        );
        let expect: Vec<u8> = (0..n).flat_map(|r| [r as u8; 4]).collect();
        assert_eq!(mem.read(root, dst), expect.as_slice());
    }

    #[test]
    fn scatter_distributes_in_rank_order() {
        let preset = mini(2, 3);
        let n = 6;
        let root = 1;
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let src = b.alloc(root, 24);
        let dst: Vec<BufRange> = (0..n).map(|r| b.alloc(r, 4)).collect();
        let mut cx = BuildCtx::new(&mut b, &preset);
        build_scatter(
            &mut cx,
            &HanConfig::default(),
            &comm,
            root,
            src,
            &dst,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                let all: Vec<u8> = (0..n).flat_map(|r| [(r * 11) as u8; 4]).collect();
                mm.write(root, src, &all);
            },
        );
        for r in 0..n {
            assert_eq!(mem.read(r, dst[r]), &[(r * 11) as u8; 4], "rank {r}");
        }
    }

    #[test]
    fn barrier_synchronizes_under_skew() {
        use han_mpi::{execute, OpId};
        // Every rank's barrier exit must be at or after every rank's
        // arrival — the defining property — even with arrival imbalance.
        let preset = mini(3, 3);
        let n = 9;
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let mut cx = BuildCtx::new(&mut b, &preset);
        let f = build_barrier(&mut cx, &comm, &Frontier::empty(n));
        let exits: Vec<OpId> = (0..n).map(|l| f.get(l)[0]).collect();
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let skew: Vec<han_sim::Time> = (0..n)
            .map(|r| han_sim::Time::from_us((r as u64 * 137) % 900))
            .collect();
        let max_arrival = *skew.iter().max().unwrap();
        let rep = execute(
            &mut m,
            &prog,
            &han_mpi::ExecOpts::timing(Flavor::OpenMpi.p2p()).with_skew(skew),
        );
        for (l, &e) in exits.iter().enumerate() {
            assert!(
                rep.finish(e) >= max_arrival,
                "rank {l} exited at {} before the last arrival {max_arrival}",
                rep.finish(e)
            );
        }
    }

    #[test]
    fn hierarchical_barrier_beats_flat_dissemination() {
        use crate::Han;
        use han_colls::stack::{time_coll, Coll};
        use han_colls::TunedOpenMpi;
        // With fat nodes, three flag hops + leader dissemination should
        // beat log2(n*p) full network rounds.
        let preset = mini(4, 8);
        let han = Han::with_config(crate::HanConfig::default());
        let t_han = time_coll(&han, &preset, Coll::Barrier, 0, 0).unwrap();
        let t_tuned = time_coll(&TunedOpenMpi, &preset, Coll::Barrier, 0, 0).unwrap();
        assert!(
            t_han < t_tuned,
            "hierarchical barrier {t_han} vs flat {t_tuned}"
        );
    }

    #[test]
    fn allgather_assembles_everywhere() {
        let preset = mini(3, 2);
        let n = 6;
        let block = 4u64;
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(block * n as u64);
        let mut cx = BuildCtx::new(&mut b, &preset);
        build_allgather(
            &mut cx,
            &HanConfig::default(),
            &comm,
            &bufs,
            block,
            &Frontier::empty(n),
        );
        let prog = b.build();
        let mut m = Machine::from_preset(&preset);
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(
            &mut m,
            &prog,
            &ExecOpts::with_data(Flavor::OpenMpi.p2p()),
            |mm| {
                for r in 0..n {
                    let mine = bufs2[r].slice(r as u64 * block, block);
                    mm.write(r, mine, &[(r + 1) as u8; 4]);
                }
            },
        );
        let expect: Vec<u8> = (0..n).flat_map(|r| [(r + 1) as u8; 4]).collect();
        for r in 0..n {
            assert_eq!(mem.read(r, bufs[r]), expect.as_slice(), "rank {r}");
        }
    }
}
