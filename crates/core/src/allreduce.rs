//! Hierarchical task-pipelined `MPI_Allreduce` (paper Fig. 5).
//!
//! Four phases per segment — `sr` (intra-node reduce), `ir` (inter-node
//! reduce), `ib` (inter-node broadcast), `sb` (intra-node broadcast) —
//! with the inter-node allreduce deliberately broken into explicit `ir` +
//! `ib` "to further increase the pipeline" (section III-B), using the same
//! algorithm and root so the two overlap on opposite directions of the
//! full-duplex network (Fig. 6).
//!
//! The leader task sequence is `sr(0), irsr(1), ibirsr(2),
//! sbibirsr(3..u-1), sbibir, sbib, sb` — a 4-stage software pipeline.
//! Non-leaders run the `sbsr` chain. As in [`crate::bcast`], per-task
//! leader joins are emitted for the autotuner.

use crate::bcast::{descend_bcast, inter_bcast};
use crate::config::HanConfig;
use han_colls::stack::{sublocals, BuildCtx};
use han_colls::{Frontier, InterModule, IntraModule, Libnbc, Sm, Solo};
use han_machine::{LevelParams, LevelVec, Topology};
use han_mpi::{BufRange, Comm, DataType, OpId, ProgramBuilder, ReduceOp};

/// Result of building a hierarchical allreduce.
#[derive(Debug)]
pub struct AllreduceBuild {
    pub frontier: Frontier,
    /// `boundaries[t][ul]`: leader `ul`'s join after pipeline step `t`
    /// (`u + 3` steps: phase `sr` enters at `t`, `sb` drains at `t+3`).
    pub boundaries: Vec<Vec<OpId>>,
    pub segments: usize,
}

/// Dispatch an inter-node reduce (to up-local `root`) through the
/// configured submodule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn inter_reduce(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    up: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
) -> Frontier {
    match cfg.imod {
        InterModule::Libnbc => Libnbc.ireduce(b, up, root, bufs, deps, op, dtype),
        InterModule::Adapt => cfg.adapt().ireduce(b, up, root, bufs, deps, op, dtype),
    }
}

/// Flat shared-memory reduce (to local 0) through an explicit submodule —
/// the leaf operation of the level recursion.
#[allow(clippy::too_many_arguments)]
pub(crate) fn flat_reduce(
    b: &mut ProgramBuilder,
    smod: IntraModule,
    node: &han_machine::NodeParams,
    low: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
) -> Frontier {
    match smod {
        IntraModule::Sm => Sm.reduce(b, low, node, 0, bufs, deps, op, dtype),
        IntraModule::Solo => Solo.reduce(b, low, node, 0, bufs, deps, op, dtype),
    }
}

/// Dispatch an intra-node reduce (to local 0) through the configured
/// submodule, at the link parameters of one hierarchy level. On a
/// two-level topology this *is* the whole intra phase;
/// [`ascend_reduce`] generalizes it to arbitrary depth.
#[allow(clippy::too_many_arguments)]
pub(crate) fn intra_reduce(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    node: &han_machine::NodeParams,
    lvl: &LevelParams,
    low: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
) -> Frontier {
    flat_reduce(b, cfg.smod, &node.at_level(lvl), low, bufs, deps, op, dtype)
}

/// Reduce within a level-`level` group toward its local rank 0, recursing
/// through the remaining levels — the ascending mirror of
/// [`crate::bcast::descend_bcast`]: each subgroup first folds its own
/// partial down to its leader, then the leaders run a flat
/// `smod_at(level)` reduce across subgroup boundaries. On depth-2
/// topologies this collapses to exactly the classic intra reduce.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ascend_reduce(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    topo: &Topology,
    node: &han_machine::NodeParams,
    levels: &LevelVec,
    level: usize,
    gc: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
    op: ReduceOp,
    dtype: DataType,
) -> Frontier {
    if level + 1 >= topo.depth() {
        let lnode = node.at_level(levels.get(level));
        return flat_reduce(b, cfg.smod_at(level), &lnode, gc, bufs, deps, op, dtype);
    }
    let (subs, leaders) = gc.split_level(topo, level);
    if subs.len() == 1 {
        return ascend_reduce(
            b,
            cfg,
            topo,
            node,
            levels,
            level + 1,
            gc,
            bufs,
            deps,
            op,
            dtype,
        );
    }
    let mut out = Frontier::empty(gc.size());
    let glocals = sublocals(gc, &leaders);
    let mut ldeps = Frontier::empty(leaders.size());
    for (si, sc) in subs.iter().enumerate() {
        let locals = sublocals(gc, sc);
        let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
        let mut sdeps = Frontier::empty(sc.size());
        for (j, &l) in locals.iter().enumerate() {
            sdeps.set(j, deps.get(l).to_vec());
        }
        let f = ascend_reduce(
            b,
            cfg,
            topo,
            node,
            levels,
            level + 1,
            sc,
            &sub_bufs,
            &sdeps,
            op,
            dtype,
        );
        // The subgroup's partial (at its leader) feeds the cross-subgroup
        // reduce; non-leader members are done after their own phase.
        ldeps.set(si, f.get(0).to_vec());
        for (j, &l) in locals.iter().enumerate().skip(1) {
            out.set(l, f.get(j).to_vec());
        }
    }
    let leader_bufs: Vec<BufRange> = glocals.iter().map(|&l| bufs[l]).collect();
    let lnode = node.at_level(levels.get(level));
    let f_lead = flat_reduce(
        b,
        cfg.smod_at(level),
        &lnode,
        &leaders,
        &leader_bufs,
        &ldeps,
        op,
        dtype,
    );
    for (i, &l) in glocals.iter().enumerate() {
        out.set(l, f_lead.get(i).to_vec());
    }
    out
}

/// Build the HAN allreduce (in place over `bufs`, commutative `op`).
pub fn build_allreduce(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    bufs: &[BufRange],
    op: ReduceOp,
    dtype: DataType,
    deps: &Frontier,
) -> AllreduceBuild {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return AllreduceBuild {
            frontier: deps.clone(),
            boundaries: Vec::new(),
            segments: 1,
        };
    }
    let (low, up) = comm.split_node(&cx.topo);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = 0; // same root for ir and ib (paper section III-B)

    // Segment at datatype granularity: a reduction segment must hold a
    // whole number of elements.
    let node = cx.node;
    let topo = cx.topo;
    let levels = cx.levels;
    let el = dtype.size() as u64;
    let fs = han_machine::coarsen_fs((cfg.fs / el).max(1) * el, bufs[0].len, &node, &levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();
    let nl = up.size();

    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut child_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();

    // Per-segment phase completions needed by the next phase.
    let mut sr_leader: Vec<Vec<Vec<OpId>>> = vec![vec![Vec::new(); nl]; u]; // [seg][ul]
    let mut ir_f: Vec<Option<Frontier>> = vec![None; u]; // over up
    let mut ib_f: Vec<Option<Frontier>> = vec![None; u]; // over up
    let mut boundaries = Vec::with_capacity(u + 3);

    for t in 0..u + 3 {
        // Ops issued in this task, per leader and per non-leader rank.
        let mut issued_leader: Vec<Vec<OpId>> = vec![Vec::new(); nl];
        let mut issued_child: Vec<Vec<OpId>> = vec![Vec::new(); n];

        // sr(t): intra-node reduce of segment t.
        if t < u {
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][t]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                sub_deps.set(0, boundary[ni].clone());
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = ascend_reduce(
                    cx.b, cfg, &topo, &node, &levels, 1, lc, &sub_bufs, &sub_deps, op, dtype,
                );
                sr_leader[t][ni] = f.get(0).to_vec();
                issued_leader[ni].extend_from_slice(f.get(0));
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    issued_child[l].extend_from_slice(f.get(j));
                }
            }
        }

        // ir(t-1): inter-node reduce of segment t-1 to the up-root.
        if t >= 1 && t - 1 < u {
            let i = t - 1;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(&sr_leader[i][ul]);
                up_deps.set(ul, d);
            }
            let f = inter_reduce(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, op, dtype);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
            ir_f[i] = Some(f);
        }

        // ib(t-2): inter-node broadcast of the reduced segment t-2.
        if t >= 2 && t - 2 < u {
            let i = t - 2;
            let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
            let prev = ir_f[i].take().expect("ir before ib");
            let mut up_deps = Frontier::empty(nl);
            for ul in 0..nl {
                let mut d = boundary[ul].clone();
                d.extend_from_slice(prev.get(ul));
                up_deps.set(ul, d);
            }
            let f = inter_bcast(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, i as u64);
            for ul in 0..nl {
                issued_leader[ul].extend_from_slice(f.get(ul));
            }
            ib_f[i] = Some(f);
        }

        // sb(t-3): intra-node broadcast of the final segment t-3.
        if t >= 3 && t - 3 < u {
            let i = t - 3;
            let prev = ib_f[i].take().expect("ib before sb");
            for (ni, lc) in low.iter().enumerate() {
                let locals = &low_locals[ni];
                let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][i]).collect();
                let mut sub_deps = Frontier::empty(lc.size());
                let mut d = boundary[ni].clone();
                d.extend_from_slice(prev.get(ni));
                sub_deps.set(0, d);
                for (j, &l) in locals.iter().enumerate().skip(1) {
                    sub_deps.set(j, child_chain[l].clone());
                }
                let f = descend_bcast(
                    cx.b, cfg, &topo, &node, &levels, 1, lc, &sub_bufs, &sub_deps,
                );
                for (j, &l) in locals.iter().enumerate() {
                    if j == 0 {
                        issued_leader[ni].extend_from_slice(f.get(0));
                    } else {
                        issued_child[l].extend_from_slice(f.get(j));
                        // Leader's task joins the whole node's sb (bounce
                        // pool flow control), as in bcast.
                        issued_leader[ni].extend_from_slice(f.get(j));
                    }
                }
            }
        }

        // Task boundary joins.
        let mut joins = Vec::with_capacity(nl);
        for ul in 0..nl {
            if issued_leader[ul].is_empty() {
                // Degenerate (u < 3 drains some steps early): carry over.
                joins.push(cx.b.nop(up.world_rank(ul), &boundary[ul]));
            } else {
                joins.push(cx.b.nop(up.world_rank(ul), &issued_leader[ul]));
            }
            boundary[ul] = vec![joins[ul]];
        }
        boundaries.push(joins);
        for l in 0..n {
            if !issued_child[l].is_empty() {
                child_chain[l] = std::mem::take(&mut issued_child[l]);
            }
        }
    }

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, child_chain[l].clone());
        }
    }
    AllreduceBuild {
        frontier,
        boundaries,
        segments: u,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::{execute, execute_seeded, ExecOpts};

    fn build(
        preset: &han_machine::MachinePreset,
        cfg: &HanConfig,
        bytes: u64,
    ) -> (han_mpi::Program, Vec<BufRange>, AllreduceBuild) {
        let n = preset.topology.world_size();
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(bytes);
        let mut cx = BuildCtx::new(&mut b, preset);
        let built = build_allreduce(
            &mut cx,
            cfg,
            &comm,
            &bufs,
            ReduceOp::Sum,
            DataType::Int32,
            &Frontier::empty(n),
        );
        (b.build(), bufs, built)
    }

    fn check_sum(cfg: &HanConfig, nodes: usize, ppn: usize, bytes: u64) {
        let preset = mini(nodes, ppn);
        let n = nodes * ppn;
        let (prog, bufs, built) = build(&preset, cfg, bytes);
        assert_eq!(built.segments, cfg.segments(bytes) as usize);
        let mut m = Machine::from_preset(&preset);
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let nelem = (bytes / 4) as usize;
        let bufs2 = bufs.clone();
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| {
            for r in 0..n {
                let vals: Vec<u8> = (0..nelem)
                    .flat_map(|i| ((r * 7 + i) as i32).to_le_bytes())
                    .collect();
                mm.write(r, bufs2[r], &vals);
            }
        });
        let expect: Vec<u8> = (0..nelem)
            .flat_map(|i| {
                let s: i32 = (0..n).map(|r| (r * 7 + i) as i32).sum();
                s.to_le_bytes()
            })
            .collect();
        for r in 0..n {
            assert_eq!(
                mem.read(r, bufs[r]),
                expect.as_slice(),
                "cfg {cfg} rank {r} ({nodes}x{ppn}, {bytes}B)"
            );
        }
    }

    #[test]
    fn sums_across_configs() {
        use han_colls::{InterAlg, InterModule, IntraModule};
        for imod in InterModule::ALL {
            for smod in IntraModule::ALL {
                let cfg = HanConfig {
                    fs: 64,
                    imod,
                    smod,
                    ..HanConfig::default()
                };
                check_sum(&cfg, 3, 3, 256); // 4 segments: full pipeline
            }
        }
        for alg in InterAlg::ALL {
            let cfg = HanConfig {
                fs: 48,
                ibalg: alg,
                iralg: alg,
                irs: Some(16),
                ibs: Some(16),
                ..HanConfig::default()
            };
            check_sum(&cfg, 4, 2, 400);
        }
    }

    #[test]
    fn routed_configs_sum() {
        // The reduce direction always stays on `iralg`; only the ib phase
        // switches trees per segment. Sums must be exact either way.
        use han_colls::{InterAlg, InterModule};
        for alt in InterAlg::ALL {
            if alt == InterAlg::Binomial {
                continue;
            }
            let cfg = HanConfig {
                fs: 48,
                imod: InterModule::Adapt,
                ibalg: InterAlg::Binomial,
                iralg: InterAlg::Binomial,
                ..HanConfig::default()
            }
            .with_route(2, alt);
            check_sum(&cfg, 4, 2, 480); // 10 segments, both route windows
        }
    }

    #[test]
    fn short_pipelines_drain_correctly() {
        // u = 1 and u = 2 exercise the drain-only steps.
        let cfg = HanConfig::default().with_fs(1 << 20);
        check_sum(&cfg, 2, 2, 64); // u = 1
        let cfg = HanConfig::default().with_fs(64);
        check_sum(&cfg, 2, 2, 128); // u = 2
    }

    #[test]
    fn boundary_count_is_u_plus_3() {
        let preset = mini(3, 2);
        let cfg = HanConfig::default().with_fs(100);
        let (_, _, built) = build(&preset, &cfg, 600); // u = 6
        assert_eq!(built.segments, 6);
        assert_eq!(built.boundaries.len(), 9);
    }

    #[test]
    fn ir_ib_overlap_helps() {
        // Breaking inter-node allreduce into ir+ib and pipelining must beat
        // the unsegmented variant for large messages (paper section III-B).
        let preset = mini(4, 4);
        let bytes = 8 << 20;
        let time_of = |fs: u64| {
            let cfg = HanConfig {
                fs,
                smod: han_colls::IntraModule::Solo,
                ..HanConfig::default()
            };
            let (prog, _, _) = build(&preset, &cfg, bytes);
            let mut m = Machine::from_preset(&preset);
            execute(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let pipelined = time_of(512 * 1024);
        let monolithic = time_of(bytes);
        assert!(
            pipelined.as_ps() * 3 < monolithic.as_ps() * 2,
            "pipelined {pipelined} should be well under monolithic {monolithic}"
        );
    }

    #[test]
    fn single_rank_trivial() {
        let preset = mini(1, 1);
        let (prog, _, built) = build(&preset, &HanConfig::default(), 64);
        assert!(built.boundaries.is_empty());
        assert_eq!(prog.len(), 0);
    }
}
