//! Hierarchical task-pipelined `MPI_Bcast` (paper Fig. 1).
//!
//! Node leaders execute `ib(0), sbib(1), …, sbib(u-1), sb(u-1)`; every
//! other rank executes `sb(0) … sb(u-1)`. A task completes on a leader
//! when *all* of its component operations complete — `sbib(i)` joins the
//! intra-node broadcast of segment `i-1` (including the consumers' copies,
//! the shared bounce pool's flow control) with the inter-node broadcast of
//! segment `i` — and the next task starts from that join. The join ops are
//! returned as `boundaries` so the autotuner can time individual tasks
//! (Figs. 2 and 3).

use crate::config::HanConfig;
use han_colls::stack::{split_with_root, sublocals, BuildCtx};
use han_colls::{Frontier, InterModule, IntraModule, Libnbc, Sm, Solo};
use han_machine::{LevelParams, LevelVec, Topology};
use han_mpi::{BufRange, Comm, OpId, ProgramBuilder};

/// Result of building a hierarchical broadcast.
#[derive(Debug)]
pub struct BcastBuild {
    /// Completion frontier over the original communicator.
    pub frontier: Frontier,
    /// `boundaries[t][ul]` = leader `ul`'s join op after task `t`.
    /// Tasks are `ib(0), sbib(1), …, sbib(u-1), sb(u-1)` — `u+1` entries.
    pub boundaries: Vec<Vec<OpId>>,
    /// Number of HAN segments `u`.
    pub segments: usize,
}

/// Dispatch an inter-node broadcast of HAN segment `seg` through the
/// configured submodule. ADAPT honours the config's segment routing:
/// routed segments ride the alternate tree (see
/// [`HanConfig::adapt_for_segment`]); Libnbc and route-less configs are
/// segment-index-oblivious.
pub(crate) fn inter_bcast(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    up: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
    seg: u64,
) -> Frontier {
    match cfg.imod {
        InterModule::Libnbc => Libnbc.ibcast(b, up, root, bufs, deps),
        InterModule::Adapt => cfg.adapt_for_segment(seg).ibcast(b, up, root, bufs, deps),
    }
}

/// Flat shared-memory broadcast (root = local 0) through an explicit
/// submodule — the leaf operation of the level recursion.
pub(crate) fn flat_bcast(
    b: &mut ProgramBuilder,
    smod: IntraModule,
    node: &han_machine::NodeParams,
    low: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    match smod {
        IntraModule::Sm => Sm.bcast(b, low, node, 0, bufs, deps),
        IntraModule::Solo => Solo.bcast(b, low, node, 0, bufs, deps),
    }
}

/// Dispatch an intra-node broadcast (root = local 0) through the
/// configured submodule, at the link parameters of one hierarchy level.
/// On a two-level topology this *is* the whole intra phase;
/// [`descend_bcast`] generalizes it to arbitrary depth.
pub(crate) fn intra_bcast(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    node: &han_machine::NodeParams,
    lvl: &LevelParams,
    low: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    flat_bcast(b, cfg.smod, &node.at_level(lvl), low, bufs, deps)
}

/// Broadcast within a level-`level` group whose local rank 0 holds the
/// data, recursing through the remaining levels of the topology.
///
/// At the innermost level (`level == depth - 1`) this is exactly the flat
/// submodule broadcast of the two-level design — so on depth-2 topologies
/// the recursion is structurally identical to the classic intra phase.
/// Above it, the group splits into its level-`level` subgroups, the
/// subgroup leaders run a flat `smod_at(level)` broadcast, and each
/// subgroup recurses: the segment frontier chains leader-first through
/// the ordered level list, level by level.
#[allow(clippy::too_many_arguments)]
pub(crate) fn descend_bcast(
    b: &mut ProgramBuilder,
    cfg: &HanConfig,
    topo: &Topology,
    node: &han_machine::NodeParams,
    levels: &LevelVec,
    level: usize,
    gc: &Comm,
    bufs: &[BufRange],
    deps: &Frontier,
) -> Frontier {
    if level + 1 >= topo.depth() {
        let lnode = node.at_level(levels.get(level));
        return flat_bcast(b, cfg.smod_at(level), &lnode, gc, bufs, deps);
    }
    let (subs, leaders) = gc.split_level(topo, level);
    if subs.len() == 1 {
        // Degenerate level (one subgroup): nothing moves here.
        return descend_bcast(b, cfg, topo, node, levels, level + 1, gc, bufs, deps);
    }
    // Cross-subgroup hop among the leaders (gc-local 0 leads subgroup 0,
    // so the leader comm's root is the data holder).
    let glocals = sublocals(gc, &leaders);
    let leader_bufs: Vec<BufRange> = glocals.iter().map(|&l| bufs[l]).collect();
    let mut ldeps = Frontier::empty(leaders.size());
    for (i, &l) in glocals.iter().enumerate() {
        ldeps.set(i, deps.get(l).to_vec());
    }
    let lnode = node.at_level(levels.get(level));
    let f_lead = flat_bcast(
        b,
        cfg.smod_at(level),
        &lnode,
        &leaders,
        &leader_bufs,
        &ldeps,
    );
    // Recurse into each subgroup from its freshly supplied leader.
    let mut out = Frontier::empty(gc.size());
    for (si, sc) in subs.iter().enumerate() {
        let locals = sublocals(gc, sc);
        let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
        let mut sdeps = Frontier::empty(sc.size());
        sdeps.set(0, f_lead.get(si).to_vec());
        for (j, &l) in locals.iter().enumerate().skip(1) {
            sdeps.set(j, deps.get(l).to_vec());
        }
        let f = descend_bcast(b, cfg, topo, node, levels, level + 1, sc, &sub_bufs, &sdeps);
        for (j, &l) in locals.iter().enumerate() {
            out.set(l, f.get(j).to_vec());
        }
    }
    out
}

/// Build the HAN broadcast from comm-local `root` over `comm`.
pub fn build_bcast(
    cx: &mut BuildCtx,
    cfg: &HanConfig,
    comm: &Comm,
    root: usize,
    bufs: &[BufRange],
    deps: &Frontier,
) -> BcastBuild {
    let n = comm.size();
    assert_eq!(bufs.len(), n);
    if n == 1 {
        return BcastBuild {
            frontier: deps.clone(),
            boundaries: Vec::new(),
            segments: 1,
        };
    }
    let root_world = comm.world_rank(root);
    let (low, up) = split_with_root(comm, &cx.topo, root_world);
    let up_locals = sublocals(comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(comm, lc)).collect();
    let up_root = up.local_rank(root_world).expect("root leads its node");

    let node = cx.node;
    let topo = cx.topo;
    let levels = cx.levels;
    let fs = han_machine::coarsen_fs(cfg.fs, bufs[0].len, &node, &levels);
    let segs: Vec<Vec<BufRange>> = bufs.iter().map(|bf| bf.segments(fs)).collect();
    let u = segs[0].len();

    // Per-leader current boundary (dependency list for the next task) and
    // per-rank intra-broadcast chains.
    let mut boundary: Vec<Vec<OpId>> = up_locals.iter().map(|&l| deps.get(l).to_vec()).collect();
    let mut sb_chain: Vec<Vec<OpId>> = (0..n).map(|l| deps.get(l).to_vec()).collect();
    // All node ops of the previous segment's sb, per leader (flow control:
    // the leader's task joins the whole node's intra broadcast).
    let mut sb_node_prev: Vec<Vec<OpId>> = vec![Vec::new(); up.size()];
    let mut boundaries = Vec::with_capacity(u + 1);

    for i in 0..u {
        // ib(i) over the leaders, from each leader's current boundary.
        let mut up_deps = Frontier::empty(up.size());
        for (ul, dep) in boundary.iter().enumerate() {
            up_deps.set(ul, dep.clone());
        }
        let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| segs[l][i]).collect();
        let f_ib = inter_bcast(cx.b, cfg, &up, up_root, &up_bufs, &up_deps, i as u64);

        // Task boundary: join ib(i) with sb(i-1) on each leader.
        let mut joins = Vec::with_capacity(up.size());
        for ul in 0..up.size() {
            let mut ops: Vec<OpId> = f_ib.get(ul).to_vec();
            ops.extend_from_slice(&sb_node_prev[ul]);
            let j = cx.b.nop(up.world_rank(ul), &ops);
            boundary[ul] = vec![j];
            joins.push(j);
        }
        boundaries.push(joins);

        // sb(i) on each node: leader starts from the fresh boundary,
        // non-leaders from their own chains.
        for (ni, lc) in low.iter().enumerate() {
            let locals = &low_locals[ni];
            let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| segs[l][i]).collect();
            let mut sub_deps = Frontier::empty(lc.size());
            sub_deps.set(0, boundary[ni].clone());
            for (j, &l) in locals.iter().enumerate().skip(1) {
                sub_deps.set(j, sb_chain[l].clone());
            }
            let f_sb = descend_bcast(
                cx.b, cfg, &topo, &node, &levels, 1, lc, &sub_bufs, &sub_deps,
            );
            let mut node_ops = Vec::new();
            for (j, &l) in locals.iter().enumerate() {
                sb_chain[l] = f_sb.get(j).to_vec();
                node_ops.extend_from_slice(f_sb.get(j));
            }
            sb_node_prev[ni] = node_ops;
        }
    }

    // Final task sb(u-1): leaders join the last intra broadcast.
    let mut joins = Vec::with_capacity(up.size());
    for ul in 0..up.size() {
        let mut ops = boundary[ul].clone();
        ops.extend_from_slice(&sb_node_prev[ul]);
        let j = cx.b.nop(up.world_rank(ul), &ops);
        boundary[ul] = vec![j];
        joins.push(j);
    }
    boundaries.push(joins);

    let mut frontier = Frontier::empty(n);
    for (ul, &l) in up_locals.iter().enumerate() {
        frontier.set(l, boundary[ul].clone());
    }
    for l in 0..n {
        if frontier.get(l).is_empty() {
            frontier.set(l, sb_chain[l].clone());
        }
    }
    BcastBuild {
        frontier,
        boundaries,
        segments: u,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::{execute, execute_seeded, ExecOpts};

    fn build(
        preset: &han_machine::MachinePreset,
        cfg: &HanConfig,
        bytes: u64,
        root: usize,
    ) -> (han_mpi::Program, Vec<BufRange>, BcastBuild) {
        let n = preset.topology.world_size();
        let comm = Comm::world(n);
        let mut b = ProgramBuilder::new(n);
        let bufs = b.alloc_all(bytes);
        let mut cx = BuildCtx::new(&mut b, preset);
        let built = build_bcast(&mut cx, cfg, &comm, root, &bufs, &Frontier::empty(n));
        (b.build(), bufs, built)
    }

    fn check_delivery(cfg: &HanConfig, nodes: usize, ppn: usize, bytes: u64, root: usize) {
        let preset = mini(nodes, ppn);
        let (prog, bufs, built) = build(&preset, cfg, bytes, root);
        assert_eq!(built.segments, cfg.segments(bytes) as usize);
        let mut m = Machine::from_preset(&preset);
        let o = ExecOpts::with_data(Flavor::OpenMpi.p2p());
        let data: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        let root_buf = bufs[root];
        let (_, mem) = execute_seeded(&mut m, &prog, &o, |mm| mm.write(root, root_buf, &data));
        for r in 0..nodes * ppn {
            assert_eq!(
                mem.read(r, bufs[r]),
                data.as_slice(),
                "cfg {cfg} rank {r} root {root}"
            );
        }
    }

    #[test]
    fn delivers_across_configs() {
        use han_colls::{InterAlg, InterModule, IntraModule};
        for imod in InterModule::ALL {
            for smod in IntraModule::ALL {
                let cfg = HanConfig {
                    fs: 64,
                    imod,
                    smod,
                    ..HanConfig::default()
                };
                check_delivery(&cfg, 3, 3, 200, 0); // multi-segment, uneven tail
            }
        }
        for alg in InterAlg::ALL {
            let cfg = HanConfig {
                fs: 128,
                ibalg: alg,
                iralg: alg,
                ibs: Some(32),
                ..HanConfig::default()
            };
            check_delivery(&cfg, 4, 2, 500, 0);
        }
    }

    #[test]
    fn non_leader_root_works() {
        // Root 5 is not the lowest rank of its node.
        check_delivery(&HanConfig::default().with_fs(64), 3, 3, 150, 5);
    }

    #[test]
    fn routed_configs_deliver() {
        // Segment routing splits the ib traffic across two tree shapes;
        // every (primary, alternate) pairing must still deliver every byte.
        use han_colls::{InterAlg, InterModule};
        for pri_alg in InterAlg::ALL {
            for alt in InterAlg::ALL {
                if alt == pri_alg {
                    continue;
                }
                let cfg = HanConfig {
                    fs: 64,
                    imod: InterModule::Adapt,
                    ibalg: pri_alg,
                    ..HanConfig::default()
                }
                .with_route(3, alt);
                // 9 segments: both the primary window (i%8 < 3) and the
                // alternate window exercised, plus an uneven tail.
                check_delivery(&cfg, 4, 2, 550, 0);
            }
        }
        // pri = 0 sends everything down the alternate tree.
        let all_alt = HanConfig {
            fs: 64,
            imod: InterModule::Adapt,
            ibalg: InterAlg::Binomial,
            ..HanConfig::default()
        }
        .with_route(0, InterAlg::Chain);
        check_delivery(&all_alt, 3, 3, 500, 4);
    }

    #[test]
    fn boundary_count_matches_task_list() {
        let preset = mini(3, 2);
        let cfg = HanConfig::default().with_fs(100);
        let (_, _, built) = build(&preset, &cfg, 450, 0); // 5 segments
        assert_eq!(built.segments, 5);
        // ib(0), sbib(1..4), sb(4) = 6 boundaries, one per leader each.
        assert_eq!(built.boundaries.len(), 6);
        assert!(built.boundaries.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn boundaries_are_monotone_per_leader() {
        let preset = mini(4, 4);
        let cfg = HanConfig::default().with_fs(64 * 1024);
        let (prog, _, built) = build(&preset, &cfg, 512 * 1024, 0);
        let mut m = Machine::from_preset(&preset);
        let rep = execute(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p()));
        for ul in 0..4 {
            let times: Vec<_> = built.boundaries.iter().map(|t| rep.finish(t[ul])).collect();
            for w in times.windows(2) {
                assert!(w[0] <= w[1], "leader {ul}: boundaries must be ordered");
            }
        }
    }

    #[test]
    fn pipelining_beats_sequential_phases() {
        // The same message broadcast with one giant segment (no pipeline)
        // must be slower than with segments (overlapped ib/sb), for a
        // message large enough to amortize per-task overhead.
        let preset = mini(4, 8);
        let bytes = 8 << 20;
        let time_of = |fs: u64| {
            let cfg = HanConfig::default().with_fs(fs);
            let (prog, _, _) = build(&preset, &cfg, bytes, 0);
            let mut m = Machine::from_preset(&preset);
            execute(&mut m, &prog, &ExecOpts::timing(Flavor::OpenMpi.p2p())).makespan
        };
        let pipelined = time_of(512 * 1024);
        let monolithic = time_of(bytes);
        assert!(
            pipelined < monolithic,
            "pipelined {pipelined} should beat monolithic {monolithic}"
        );
    }

    #[test]
    fn single_rank_comm_is_trivial() {
        let preset = mini(1, 1);
        let (prog, _, built) = build(&preset, &HanConfig::default(), 1024, 0);
        assert!(built.boundaries.is_empty());
        assert_eq!(prog.len(), 0);
    }
}
