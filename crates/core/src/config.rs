//! HAN's tuned parameter set — the *output* of autotuning (paper Table II).

use han_colls::{Adapt, InterAlg, InterModule, IntraModule};
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// Maximum number of hierarchy levels below the first shared-memory level
/// (levels 2.. of a [`han_machine::Topology`]) a config can address.
pub const MAX_DEEP: usize = han_machine::MAX_LEVELS - 2;

/// Period of the segment-routing pattern: of every [`ROUTE_PERIOD`]
/// consecutive HAN segments, the first `pri` ride the primary `ibalg`
/// tree and the rest ride the alternate tree.
pub const ROUTE_PERIOD: u64 = 8;

/// SCCL-style multi-tree segment routing for the inter-node broadcast
/// phase — a schedule the Table-II menu cannot express. Striping the
/// segment stream across two trees splits the root's send load: segments
/// routed to the alternate tree leave through different first hops, so
/// the trees' wire occupancies overlap instead of serializing on one
/// root NIC schedule.
///
/// Only meaningful with `imod == Adapt` (Libnbc ignores it). The pattern
/// is periodic with period [`ROUTE_PERIOD`]: segment `i` rides the
/// primary `ibalg` tree iff `i % ROUTE_PERIOD < pri`, otherwise the
/// `alt` tree. `pri` is meaningful in `1..ROUTE_PERIOD`; the reduce
/// phase always keeps `iralg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegRoute {
    /// Segments per [`ROUTE_PERIOD`]-window on the primary tree.
    pub pri: u8,
    /// The tree carrying the remaining segments.
    pub alt: InterAlg,
}

impl Serialize for SegRoute {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("pri".to_string(), (self.pri as u64).to_value()),
            ("alt".to_string(), self.alt.to_value()),
        ])
    }
}

impl Deserialize for SegRoute {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        Ok(SegRoute {
            pri: u64::from_value(field("pri")?)? as u8,
            alt: InterAlg::from_value(field("alt")?)?,
        })
    }
}

impl fmt::Display for SegRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pri, self.alt)
    }
}

/// One complete HAN configuration (Table II):
///
/// | symbol  | meaning                                       |
/// |---------|-----------------------------------------------|
/// | `fs`    | segment size in the HAN module                |
/// | `imod`  | submodule used for inter-node                 |
/// | `smod`  | submodule used for intra-node                 |
/// | `ibalg` | inter-node bcast algorithm (ADAPT only)       |
/// | `iralg` | inter-node reduce algorithm (ADAPT only)      |
/// | `ibs`   | inter-node bcast segment size (ADAPT only)    |
/// | `irs`   | inter-node reduce segment size (ADAPT only)   |
///
/// On topologies deeper than two levels the intra-node phase is itself a
/// recursive hierarchy; `deep[k]` selects the submodule for absolute level
/// `k + 2` (level 1 stays `smod`). The all-`None` value — every two-level
/// configuration — falls back to `smod` at every depth and serializes in
/// the exact seven-field Table-II form above, so persisted tables and
/// cache fingerprints from the two-level era remain valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HanConfig {
    pub fs: u64,
    pub imod: InterModule,
    pub smod: IntraModule,
    pub ibalg: InterAlg,
    pub iralg: InterAlg,
    pub ibs: Option<u64>,
    pub irs: Option<u64>,
    /// Submodule overrides for levels deeper than the first shared-memory
    /// level: `deep[k]` configures level `k + 2` of the topology.
    pub deep: [Option<IntraModule>; MAX_DEEP],
    /// Multi-tree segment routing for the inter broadcast phase (synth
    /// output; `None` — every Table-II configuration — keeps the single
    /// `ibalg` tree and serializes exactly as before).
    pub route: Option<SegRoute>,
}

// Hand-written serde: the historical seven-field Table-II map, with a
// trailing "deep" list only when some deep level is configured. This is
// the lossless compatibility view — two-level configs are byte-identical
// to their pre-N-level serialization.
impl Serialize for HanConfig {
    fn to_value(&self) -> Value {
        let mut map = vec![
            ("fs".to_string(), self.fs.to_value()),
            ("imod".to_string(), self.imod.to_value()),
            ("smod".to_string(), self.smod.to_value()),
            ("ibalg".to_string(), self.ibalg.to_value()),
            ("iralg".to_string(), self.iralg.to_value()),
            ("ibs".to_string(), self.ibs.to_value()),
            ("irs".to_string(), self.irs.to_value()),
        ];
        if let Some(last) = self.deep.iter().rposition(|d| d.is_some()) {
            map.push((
                "deep".to_string(),
                Value::Seq(self.deep[..=last].iter().map(|d| d.to_value()).collect()),
            ));
        }
        if let Some(route) = &self.route {
            map.push(("route".to_string(), route.to_value()));
        }
        Value::Map(map)
    }
}

impl Deserialize for HanConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("missing field {key}")))
        };
        let mut deep = [None; MAX_DEEP];
        if let Some(Value::Seq(items)) = v.get("deep") {
            if items.len() > MAX_DEEP {
                return Err(Error::custom("too many deep levels"));
            }
            for (k, item) in items.iter().enumerate() {
                deep[k] = Option::<IntraModule>::from_value(item)?;
            }
        }
        let route = match v.get("route") {
            Some(r) => Some(SegRoute::from_value(r)?),
            None => None,
        };
        Ok(HanConfig {
            fs: u64::from_value(field("fs")?)?,
            imod: InterModule::from_value(field("imod")?)?,
            smod: IntraModule::from_value(field("smod")?)?,
            ibalg: InterAlg::from_value(field("ibalg")?)?,
            iralg: InterAlg::from_value(field("iralg")?)?,
            ibs: Option::<u64>::from_value(field("ibs")?)?,
            irs: Option::<u64>::from_value(field("irs")?)?,
            deep,
            route,
        })
    }
}

impl Default for HanConfig {
    /// A reasonable untuned starting point: 128 KB segments, ADAPT
    /// binomial inter-node, SM intra-node.
    fn default() -> Self {
        HanConfig {
            fs: 128 * 1024,
            imod: InterModule::Adapt,
            smod: IntraModule::Sm,
            ibalg: InterAlg::Binomial,
            iralg: InterAlg::Binomial,
            ibs: None,
            irs: None,
            deep: [None; MAX_DEEP],
            route: None,
        }
    }
}

impl HanConfig {
    /// The ADAPT submodule instance this configuration selects (only
    /// meaningful when `imod == Adapt`).
    pub fn adapt(&self) -> Adapt {
        Adapt {
            balg: self.ibalg,
            ralg: self.iralg,
            ibs: self.ibs,
            irs: self.irs,
        }
    }

    /// Whether HAN segment `seg` rides the alternate routed tree in the
    /// inter broadcast phase (always `false` without a route).
    pub fn routed(&self, seg: u64) -> bool {
        match self.route {
            Some(r) => seg % ROUTE_PERIOD >= r.pri as u64,
            None => false,
        }
    }

    /// The ADAPT instance broadcasting HAN segment `seg`: the primary
    /// [`HanConfig::adapt`] tree, or — for routed segments — the same
    /// sub-segmentation over the alternate tree. The reduce direction is
    /// unaffected by routing.
    pub fn adapt_for_segment(&self, seg: u64) -> Adapt {
        let mut a = self.adapt();
        if let Some(r) = self.route {
            if self.routed(seg) {
                a.balg = r.alt;
            }
        }
        a
    }

    /// Number of HAN segments for a message of `bytes`.
    pub fn segments(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.fs.max(1))
        }
    }

    pub fn with_fs(mut self, fs: u64) -> Self {
        self.fs = fs;
        self
    }

    pub fn with_inter(mut self, imod: InterModule, alg: InterAlg) -> Self {
        self.imod = imod;
        self.ibalg = alg;
        self.iralg = alg;
        self
    }

    pub fn with_intra(mut self, smod: IntraModule) -> Self {
        self.smod = smod;
        self
    }

    /// The intra submodule for hierarchy level `level` (≥ 1): level 1 is
    /// `smod`, deeper levels use their `deep` entry, falling back to
    /// `smod` when unset — so a two-level config is valid at any depth.
    pub fn smod_at(&self, level: usize) -> IntraModule {
        debug_assert!(level >= 1, "level 0 is inter-node");
        if level <= 1 {
            self.smod
        } else {
            self.deep
                .get(level - 2)
                .copied()
                .flatten()
                .unwrap_or(self.smod)
        }
    }

    /// Set the submodule for a deep level (`level` ≥ 2).
    pub fn with_deep(mut self, level: usize, smod: IntraModule) -> Self {
        self.deep[level - 2] = Some(smod);
        self
    }

    /// Stripe the inter broadcast segment stream across two trees:
    /// `pri` of every [`ROUTE_PERIOD`] segments on `ibalg`, the rest on
    /// `alt`.
    pub fn with_route(mut self, pri: u8, alt: InterAlg) -> Self {
        self.route = Some(SegRoute { pri, alt });
        self
    }
}

impl fmt::Display for HanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fs={} imod={} smod={} ibalg={} iralg={}",
            human_size(self.fs),
            self.imod,
            self.smod,
            self.ibalg,
            self.iralg
        )?;
        if let Some(ibs) = self.ibs {
            write!(f, " ibs={}", human_size(ibs))?;
        }
        if let Some(irs) = self.irs {
            write!(f, " irs={}", human_size(irs))?;
        }
        if let Some(last) = self.deep.iter().rposition(|d| d.is_some()) {
            write!(f, " deep=")?;
            for (k, d) in self.deep[..=last].iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                match d {
                    Some(m) => write!(f, "{m}")?,
                    None => write!(f, "-")?,
                }
            }
        }
        if let Some(route) = &self.route {
            write!(f, " route={route}")?;
        }
        Ok(())
    }
}

/// Render a byte count compactly (4K, 2M, ...).
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes % (1 << 20) == 0 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes % (1 << 10) == 0 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_count() {
        let c = HanConfig::default().with_fs(64 * 1024);
        assert_eq!(c.segments(0), 1);
        assert_eq!(c.segments(64 * 1024), 1);
        assert_eq!(c.segments(64 * 1024 + 1), 2);
        assert_eq!(c.segments(4 << 20), 64);
    }

    #[test]
    fn builder_helpers() {
        let c = HanConfig::default()
            .with_fs(1 << 20)
            .with_inter(InterModule::Libnbc, InterAlg::Chain)
            .with_intra(IntraModule::Solo);
        assert_eq!(c.fs, 1 << 20);
        assert_eq!(c.imod, InterModule::Libnbc);
        assert_eq!(c.ibalg, InterAlg::Chain);
        assert_eq!(c.smod, IntraModule::Solo);
    }

    #[test]
    fn display_is_compact() {
        let c = HanConfig::default();
        let s = c.to_string();
        assert!(s.contains("fs=128K"), "{s}");
        assert!(s.contains("imod=adapt"), "{s}");
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(2 << 20), "2M");
        assert_eq!(human_size(1000), "1000");
    }

    #[test]
    fn serde_roundtrip() {
        let c = HanConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: HanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn two_level_serde_keeps_table_two_form() {
        // The compatibility view: no "deep" key, the seven Table-II fields
        // in declaration order — byte-identical to the pre-N-level form.
        let c = HanConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("deep"), "{json}");
        assert!(json.starts_with("{\"fs\":"), "{json}");
    }

    #[test]
    fn route_roundtrip_and_segment_dispatch() {
        let c = HanConfig::default().with_route(5, InterAlg::Chain);
        // Segments 0..4 of each 8-window ride ibalg, 5..7 ride the alt.
        assert!(!c.routed(0));
        assert!(!c.routed(4));
        assert!(c.routed(5));
        assert!(c.routed(7));
        assert!(!c.routed(8), "pattern is periodic");
        assert_eq!(c.adapt_for_segment(0).balg, InterAlg::Binomial);
        assert_eq!(c.adapt_for_segment(6).balg, InterAlg::Chain);
        assert_eq!(
            c.adapt_for_segment(6).ralg,
            c.iralg,
            "reduce tree unaffected"
        );
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("route"), "{json}");
        let back: HanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert!(c.to_string().contains("route=5/chain"), "{c}");
        // Route-less configs keep the byte-stable Table-II serialization.
        let plain = HanConfig::default();
        assert!(!serde_json::to_string(&plain).unwrap().contains("route"));
        assert!(!plain.routed(3));
    }

    #[test]
    fn deep_levels_roundtrip_and_fall_back() {
        let c = HanConfig::default()
            .with_intra(IntraModule::Sm)
            .with_deep(2, IntraModule::Solo);
        assert_eq!(c.smod_at(1), IntraModule::Sm);
        assert_eq!(c.smod_at(2), IntraModule::Solo);
        assert_eq!(c.smod_at(3), IntraModule::Sm, "unset deep falls back");
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("deep"), "{json}");
        let back: HanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        assert!(c.to_string().contains("deep=solo"), "{c}");
    }
}
