//! HAN's tuned parameter set — the *output* of autotuning (paper Table II).

use han_colls::{Adapt, InterAlg, InterModule, IntraModule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One complete HAN configuration (Table II):
///
/// | symbol  | meaning                                       |
/// |---------|-----------------------------------------------|
/// | `fs`    | segment size in the HAN module                |
/// | `imod`  | submodule used for inter-node                 |
/// | `smod`  | submodule used for intra-node                 |
/// | `ibalg` | inter-node bcast algorithm (ADAPT only)       |
/// | `iralg` | inter-node reduce algorithm (ADAPT only)      |
/// | `ibs`   | inter-node bcast segment size (ADAPT only)    |
/// | `irs`   | inter-node reduce segment size (ADAPT only)   |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HanConfig {
    pub fs: u64,
    pub imod: InterModule,
    pub smod: IntraModule,
    pub ibalg: InterAlg,
    pub iralg: InterAlg,
    pub ibs: Option<u64>,
    pub irs: Option<u64>,
}

impl Default for HanConfig {
    /// A reasonable untuned starting point: 128 KB segments, ADAPT
    /// binomial inter-node, SM intra-node.
    fn default() -> Self {
        HanConfig {
            fs: 128 * 1024,
            imod: InterModule::Adapt,
            smod: IntraModule::Sm,
            ibalg: InterAlg::Binomial,
            iralg: InterAlg::Binomial,
            ibs: None,
            irs: None,
        }
    }
}

impl HanConfig {
    /// The ADAPT submodule instance this configuration selects (only
    /// meaningful when `imod == Adapt`).
    pub fn adapt(&self) -> Adapt {
        Adapt {
            balg: self.ibalg,
            ralg: self.iralg,
            ibs: self.ibs,
            irs: self.irs,
        }
    }

    /// Number of HAN segments for a message of `bytes`.
    pub fn segments(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.fs.max(1))
        }
    }

    pub fn with_fs(mut self, fs: u64) -> Self {
        self.fs = fs;
        self
    }

    pub fn with_inter(mut self, imod: InterModule, alg: InterAlg) -> Self {
        self.imod = imod;
        self.ibalg = alg;
        self.iralg = alg;
        self
    }

    pub fn with_intra(mut self, smod: IntraModule) -> Self {
        self.smod = smod;
        self
    }
}

impl fmt::Display for HanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fs={} imod={} smod={} ibalg={} iralg={}",
            human_size(self.fs),
            self.imod,
            self.smod,
            self.ibalg,
            self.iralg
        )?;
        if let Some(ibs) = self.ibs {
            write!(f, " ibs={}", human_size(ibs))?;
        }
        if let Some(irs) = self.irs {
            write!(f, " irs={}", human_size(irs))?;
        }
        Ok(())
    }
}

/// Render a byte count compactly (4K, 2M, ...).
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 && bytes % (1 << 20) == 0 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 && bytes % (1 << 10) == 0 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_count() {
        let c = HanConfig::default().with_fs(64 * 1024);
        assert_eq!(c.segments(0), 1);
        assert_eq!(c.segments(64 * 1024), 1);
        assert_eq!(c.segments(64 * 1024 + 1), 2);
        assert_eq!(c.segments(4 << 20), 64);
    }

    #[test]
    fn builder_helpers() {
        let c = HanConfig::default()
            .with_fs(1 << 20)
            .with_inter(InterModule::Libnbc, InterAlg::Chain)
            .with_intra(IntraModule::Solo);
        assert_eq!(c.fs, 1 << 20);
        assert_eq!(c.imod, InterModule::Libnbc);
        assert_eq!(c.ibalg, InterAlg::Chain);
        assert_eq!(c.smod, IntraModule::Solo);
    }

    #[test]
    fn display_is_compact() {
        let c = HanConfig::default();
        let s = c.to_string();
        assert!(s.contains("fs=128K"), "{s}");
        assert!(s.contains("imod=adapt"), "{s}");
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(4096), "4K");
        assert_eq!(human_size(2 << 20), "2M");
        assert_eq!(human_size(1000), "1000");
    }

    #[test]
    fn serde_roundtrip() {
        let c = HanConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: HanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
