//! # han-core — HAN: Hierarchical AutotuNed collective operations
//!
//! The paper's primary contribution, reproduced over the simulated
//! substrate: hierarchical collectives decomposed into *tasks* whose
//! fine-grained operations come from interchangeable submodules
//! (Libnbc/ADAPT inter-node, SM/SOLO intra-node), pipelined over message
//! segments so communication on different hardware levels overlaps.
//!
//! ## Task structure (paper section III)
//!
//! `MPI_Bcast` (Fig. 1): each segment flows through an inter-node
//! broadcast (`ib`) to the node leaders, then an intra-node broadcast
//! (`sb`). Node leaders execute `ib(0), sbib(1), …, sbib(u-1), sb(u-1)`
//! where task `sbib(i)` runs `sb(i-1)` and `ib(i)` *concurrently* and
//! joins them before the next task; other ranks execute `sb(0) … sb(u-1)`.
//!
//! `MPI_Allreduce` (Fig. 5): four phases per segment — intra-node reduce
//! (`sr`), inter-node reduce (`ir`), inter-node broadcast (`ib`),
//! intra-node broadcast (`sb`) — with `ir` and `ib` deliberately using the
//! same algorithm and root so they overlap on opposite directions of the
//! full-duplex network. The steady-state leader task is `sbibirsr(i)`:
//! `sb(i-3) ∥ ib(i-2) ∥ ir(i-1) ∥ sr(i)`.
//!
//! Both builders emit explicit per-task join ops ("boundaries") on each
//! node leader; the autotuner's task benchmarks (`han-tuner`) read their
//! completion times directly, exactly as the paper benchmarks tasks rather
//! than whole collectives.
//!
//! ## N-level hierarchy
//!
//! The pipeline's intra phase is generalized beyond the paper's two
//! levels: a topology is an ordered extent vector (`[nodes, sockets,
//! cores]`, …) and the `sb`/`sr` phases recurse through levels `1..depth`
//! via `descend_bcast`/`ascend_reduce` — each level moves segments across
//! its subgroup leaders with a per-level submodule
//! ([`config::HanConfig::smod_at`]), then recurses into the subgroups.
//! On two-level machines the recursion is structurally identical to the
//! classic intra phase; [`classic`] preserves the pre-refactor builders
//! verbatim and `tests/hierarchy_equivalence.rs` pins bit-identical
//! virtual times against them. See [`levels`] for the design.
//!
//! ## Modules
//!
//! * [`config`] — [`config::HanConfig`], the tuned parameter set of
//!   Table II (`fs`, `imod`, `smod`, `ibalg`, `iralg`, `ibs`, `irs`).
//! * [`bcast`] / [`allreduce`] — the task-pipelined builders.
//! * [`extend`] — Reduce / Gather / Scatter / Allgather via the same
//!   two-level composition (the paper: "similar designs can be extended to
//!   other collective operations").
//! * [`task`] — standalone single-task programs for the autotuner's
//!   benchmarks (Figs. 2, 3, 6).
//! * [`han`] — the [`han::Han`] facade implementing
//!   [`han_colls::MpiStack`], with either a fixed configuration or a
//!   pluggable decision source (the autotuner's lookup table).
//! * [`levels`] — the ordered hierarchy-level list and how it threads
//!   through splitting, composition, configuration and cost.
//! * [`classic`] — the pre-generalization two-level builders, kept
//!   verbatim as regression oracles.
//! * [`composed`] — composed reference collectives (Reduce+Bcast,
//!   Scatter+Allgather) backing `han-verify`'s composition guidelines.

// Collective builders iterate ranks/leaders by index into several
// parallel per-rank buffer arrays at once; iterator rewrites of those
// loops obscure the rank arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod allreduce;
pub mod bcast;
pub mod classic;
pub mod composed;
pub mod config;
pub mod extend;
pub mod han;
pub mod levels;
pub mod task;

pub use config::{HanConfig, SegRoute, MAX_DEEP, ROUTE_PERIOD};
pub use han::{ConfigSource, Han};
