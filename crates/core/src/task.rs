//! Standalone task programs for the autotuner's benchmarks.
//!
//! The paper's key idea is to benchmark *tasks* rather than whole
//! collectives (section III-A2): `ib(0)` and `sb(0)` are timed directly;
//! composite tasks like `sbib` or `sbibirsr` are timed by issuing their
//! component operations concurrently (each on its own segment-sized
//! buffer) and joining them per node leader — optionally with per-rank
//! start skews to "simulate the different starting time" left by previous
//! tasks (the red bars of Fig. 2).
//!
//! A task is described by a [`TaskSpec`] — which of the four phase
//! components (`sb`, `ib`, `ir`, `sr`) it contains — which covers every
//! task in the paper's Bcast (3 kinds) and Allreduce (8 kinds: `sr`, `sb`,
//! `irsr`, `ibirsr`, `sbibirsr`, `sbibir`, `sbib`, `sbsr`) designs plus
//! the overlap probes of Figs. 2 and 6 (`ib∥sb`, `ib∥ir`).

use crate::allreduce::{ascend_reduce, inter_reduce};
use crate::bcast::{descend_bcast, inter_bcast};
use crate::config::HanConfig;
use han_colls::stack::{split_with_root, sublocals, BuildCtx};
use han_colls::Frontier;
use han_machine::MachinePreset;
use han_mpi::{BufRange, Comm, DataType, OpId, Program, ProgramBuilder, ReduceOp};

/// Which phase components a task contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TaskSpec {
    pub sb: bool,
    pub ib: bool,
    pub ir: bool,
    pub sr: bool,
}

impl TaskSpec {
    pub const IB: TaskSpec = TaskSpec {
        ib: true,
        ..TaskSpec::NONE
    };
    pub const SB: TaskSpec = TaskSpec {
        sb: true,
        ..TaskSpec::NONE
    };
    pub const SR: TaskSpec = TaskSpec {
        sr: true,
        ..TaskSpec::NONE
    };
    pub const IR: TaskSpec = TaskSpec {
        ir: true,
        ..TaskSpec::NONE
    };
    pub const SBIB: TaskSpec = TaskSpec {
        sb: true,
        ib: true,
        ..TaskSpec::NONE
    };
    pub const IBIR: TaskSpec = TaskSpec {
        ib: true,
        ir: true,
        ..TaskSpec::NONE
    };
    pub const IRSR: TaskSpec = TaskSpec {
        ir: true,
        sr: true,
        ..TaskSpec::NONE
    };
    pub const IBIRSR: TaskSpec = TaskSpec {
        ib: true,
        ir: true,
        sr: true,
        ..TaskSpec::NONE
    };
    pub const SBIBIR: TaskSpec = TaskSpec {
        sb: true,
        ib: true,
        ir: true,
        ..TaskSpec::NONE
    };
    pub const SBIBIRSR: TaskSpec = TaskSpec {
        sb: true,
        ib: true,
        ir: true,
        sr: true,
    };
    pub const SBSR: TaskSpec = TaskSpec {
        sb: true,
        sr: true,
        ..TaskSpec::NONE
    };
    const NONE: TaskSpec = TaskSpec {
        sb: false,
        ib: false,
        ir: false,
        sr: false,
    };

    /// Paper-style task name, e.g. `sbibirsr`.
    pub fn name(&self) -> String {
        let mut s = String::new();
        if self.sb {
            s.push_str("sb");
        }
        if self.ib {
            s.push_str("ib");
        }
        if self.ir {
            s.push_str("ir");
        }
        if self.sr {
            s.push_str("sr");
        }
        if s.is_empty() {
            s.push_str("nop");
        }
        s
    }

    /// How many distinct segment buffers the task touches.
    pub fn components(&self) -> usize {
        [self.sb, self.ib, self.ir, self.sr]
            .iter()
            .filter(|&&x| x)
            .count()
    }
}

/// A built task program plus the observation points the tuner reads.
#[derive(Debug)]
pub struct TaskProgram {
    pub program: Program,
    /// `(leader world rank, join op)` per node leader, in node order.
    pub observers: Vec<(usize, OpId)>,
}

/// Build a standalone program that executes one task over the whole
/// machine: each enabled component runs on its own `seg`-byte buffers,
/// all components start concurrently (no cross dependencies), and a join
/// nop per node leader observes the task completion time — "issue an ib
/// with an sb simultaneously and wait for them to complete".
pub fn task_program(
    preset: &MachinePreset,
    cfg: &HanConfig,
    spec: TaskSpec,
    seg: u64,
    root_world: usize,
) -> TaskProgram {
    let n = preset.topology.world_size();
    let comm = Comm::world(n);
    let mut b = ProgramBuilder::new(n);
    let mut cx = BuildCtx::new(&mut b, preset);
    let levels = cx.levels;
    let (low, up) = split_with_root(&comm, &cx.topo, root_world);
    let up_locals = sublocals(&comm, &up);
    let low_locals: Vec<Vec<usize>> = low.iter().map(|lc| sublocals(&comm, lc)).collect();
    let up_root = up.local_rank(root_world).expect("root leads its node");
    let nl = up.size();
    let node = preset.node;
    let empty_up = Frontier::empty(nl);

    // Per-leader accumulated ops to join; per-node intra ops included for
    // sb/sr (the leader waits for the node, as in the real pipeline).
    let mut leader_ops: Vec<Vec<OpId>> = vec![Vec::new(); nl];

    let alloc_bufs = |cx: &mut BuildCtx| -> Vec<BufRange> {
        (0..n)
            .map(|r| cx.b.alloc(r, seg.max(1)).slice(0, seg))
            .collect()
    };

    if spec.sr {
        let bufs = alloc_bufs(&mut cx);
        for (ni, lc) in low.iter().enumerate() {
            let locals = &low_locals[ni];
            let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
            let sub_deps = Frontier::empty(lc.size());
            let f = ascend_reduce(
                cx.b,
                cfg,
                &preset.topology,
                &node,
                &levels,
                1,
                lc,
                &sub_bufs,
                &sub_deps,
                ReduceOp::Sum,
                DataType::Float32,
            );
            for j in 0..lc.size() {
                leader_ops[ni].extend_from_slice(f.get(j));
            }
        }
    }
    if spec.ir {
        let bufs = alloc_bufs(&mut cx);
        let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| bufs[l]).collect();
        let f = inter_reduce(
            cx.b,
            cfg,
            &up,
            up_root,
            &up_bufs,
            &empty_up,
            ReduceOp::Sum,
            DataType::Float32,
        );
        for ul in 0..nl {
            leader_ops[ul].extend_from_slice(f.get(ul));
        }
    }
    if spec.ib {
        let bufs = alloc_bufs(&mut cx);
        let up_bufs: Vec<BufRange> = up_locals.iter().map(|&l| bufs[l]).collect();
        // Task benchmarking probes the primary tree; route-dependent
        // alternates differ only in shape, which the ib task model
        // already captures through the tree-cost terms.
        let f = inter_bcast(cx.b, cfg, &up, up_root, &up_bufs, &empty_up, 0);
        for ul in 0..nl {
            leader_ops[ul].extend_from_slice(f.get(ul));
        }
    }
    if spec.sb {
        let bufs = alloc_bufs(&mut cx);
        for (ni, lc) in low.iter().enumerate() {
            let locals = &low_locals[ni];
            let sub_bufs: Vec<BufRange> = locals.iter().map(|&l| bufs[l]).collect();
            let sub_deps = Frontier::empty(lc.size());
            let f = descend_bcast(
                cx.b,
                cfg,
                &preset.topology,
                &node,
                &levels,
                1,
                lc,
                &sub_bufs,
                &sub_deps,
            );
            for j in 0..lc.size() {
                leader_ops[ni].extend_from_slice(f.get(j));
            }
        }
    }

    let mut observers = Vec::with_capacity(nl);
    for ul in 0..nl {
        let w = up.world_rank(ul);
        let j = cx.b.nop(w, &leader_ops[ul]);
        observers.push((w, j));
    }
    TaskProgram {
        program: b.build(),
        observers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use han_machine::{mini, Flavor, Machine};
    use han_mpi::{execute, ExecOpts};
    use han_sim::Time;

    #[test]
    fn names_match_paper() {
        assert_eq!(TaskSpec::IB.name(), "ib");
        assert_eq!(TaskSpec::SB.name(), "sb");
        assert_eq!(TaskSpec::SBIB.name(), "sbib");
        assert_eq!(TaskSpec::IRSR.name(), "irsr");
        assert_eq!(TaskSpec::IBIRSR.name(), "ibirsr");
        assert_eq!(TaskSpec::SBIBIRSR.name(), "sbibirsr");
        assert_eq!(TaskSpec::SBIBIR.name(), "sbibir");
        assert_eq!(TaskSpec::SBSR.name(), "sbsr");
        assert_eq!(TaskSpec::SBIBIRSR.components(), 4);
    }

    fn run_task(spec: TaskSpec, seg: u64) -> Vec<Time> {
        let preset = mini(4, 4);
        let cfg = HanConfig::default();
        let tp = task_program(&preset, &cfg, spec, seg, 0);
        let mut m = Machine::from_preset(&preset);
        let rep = execute(
            &mut m,
            &tp.program,
            &ExecOpts::timing(Flavor::OpenMpi.p2p()),
        );
        tp.observers.iter().map(|&(_, op)| rep.finish(op)).collect()
    }

    #[test]
    fn ib_cost_varies_per_leader() {
        // A binomial ib finishes at different times on different leaders
        // (the paper's Fig. 2 observation).
        let times = run_task(TaskSpec::IB, 64 * 1024);
        assert_eq!(times.len(), 4);
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        assert!(max > min, "leaders should finish ib at different times");
    }

    #[test]
    fn overlap_is_significant_but_not_perfect() {
        // T(sbib) < T(ib) + T(sb) (overlap exists) but
        // T(sbib) > max(T(ib), T(sb)) (not perfect) — paper section III-A2.
        let seg = 512 * 1024;
        let ib: Vec<_> = run_task(TaskSpec::IB, seg);
        let sb: Vec<_> = run_task(TaskSpec::SB, seg);
        let sbib: Vec<_> = run_task(TaskSpec::SBIB, seg);
        // Compare on the slowest leader.
        let tib = *ib.iter().max().unwrap();
        let tsb = *sb.iter().max().unwrap();
        let tsbib = *sbib.iter().max().unwrap();
        assert!(
            tsbib < tib + tsb,
            "no overlap at all: sbib={tsbib} ib={tib} sb={tsb}"
        );
        assert!(
            tsbib > tib.max(tsb),
            "perfect overlap is unrealistic: sbib={tsbib} ib={tib} sb={tsb}"
        );
    }

    #[test]
    fn ir_ib_overlap_on_full_duplex() {
        // Fig. 6: concurrent ib and ir overlap highly (opposite directions).
        let seg = 1 << 20;
        let ib = *run_task(TaskSpec::IB, seg).iter().max().unwrap();
        let ir = *run_task(TaskSpec::IR, seg).iter().max().unwrap();
        let both = *run_task(TaskSpec::IBIR, seg).iter().max().unwrap();
        assert!(both < ib + ir, "some overlap required");
        // High overlap: within 1.5x of the slower component.
        let floor = ib.max(ir);
        assert!(
            both.as_ps() < floor.as_ps() * 3 / 2,
            "expected strong ib/ir overlap: both={both} floor={floor}"
        );
    }

    #[test]
    fn start_skew_changes_task_cost() {
        // The red vs green bars of Fig. 2: delaying each leader by its
        // ib(0) completion time changes the measured sbib cost.
        let preset = mini(4, 4);
        let cfg = HanConfig::default();
        let seg = 256 * 1024;
        let tp_ib = task_program(&preset, &cfg, TaskSpec::IB, seg, 0);
        let mut m = Machine::from_preset(&preset);
        let rep = execute(
            &mut m,
            &tp_ib.program,
            &ExecOpts::timing(Flavor::OpenMpi.p2p()),
        );
        let mut skew = vec![Time::ZERO; preset.topology.world_size()];
        for &(w, op) in &tp_ib.observers {
            skew[w] = rep.finish(op);
        }
        let tp = task_program(&preset, &cfg, TaskSpec::SBIB, seg, 0);
        let plain = execute(
            &mut m,
            &tp.program,
            &ExecOpts::timing(Flavor::OpenMpi.p2p()),
        );
        let skewed = execute(
            &mut m,
            &tp.program,
            &ExecOpts::timing(Flavor::OpenMpi.p2p()).with_skew(skew.clone()),
        );
        let t_plain: Vec<_> = tp.observers.iter().map(|&(_, o)| plain.finish(o)).collect();
        let t_skewed: Vec<_> = tp
            .observers
            .iter()
            .map(|&(w, o)| skewed.finish(o).saturating_sub(skew[w]))
            .collect();
        assert_ne!(t_plain, t_skewed, "skew must affect per-leader task costs");
    }
}
