//! The skip gate, end to end: an explicitly requested stack/collective
//! combination the stack does not implement must fail the `hansim`
//! invocation with the gate's exit code, while the `--stack all`
//! comparison (where skips are informational) stays green.

use han_bench::gate::GATE_EXIT_CODE;
use std::process::Command;

fn hansim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hansim"))
        .args(args)
        .args(["--nodes", "2", "--ppn", "2", "--bytes", "4096"])
        .output()
        .expect("run hansim")
}

#[test]
fn explicitly_requested_unsupported_stack_exits_nonzero() {
    let out = hansim(&["--stack", "cray", "--coll", "gather"]);
    assert_eq!(out.status.code(), Some(GATE_EXIT_CODE), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unsupported"), "stdout: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("UNEXPECTED"), "stderr: {stderr}");
}

#[test]
fn all_stack_comparison_tolerates_unsupported() {
    // The same combination is an expected skip inside the `all` sweep.
    let out = hansim(&["--stack", "all", "--coll", "gather"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("unsupported"));
}

#[test]
fn supported_combination_exits_zero() {
    let out = hansim(&["--stack", "cray", "--coll", "bcast"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
