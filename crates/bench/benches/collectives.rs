//! Criterion benches over the collective stacks — the wall-clock cost of
//! *simulating* each paper-figure family at mini scale. These guard the
//! engine's performance (the tuning experiments run thousands of these
//! simulations) and pin the relative build/execute costs of each stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use han_colls::stack::{build_coll, time_coll_on, Coll, MpiStack};
use han_colls::{TunedOpenMpi, VendorMpi};
use han_core::{Han, HanConfig};
use han_machine::{mini, Machine};
use han_mpi::{execute, ExecOpts};
use std::hint::black_box;

/// Fig. 10/12 family: broadcast across stacks.
fn bench_bcast_stacks(c: &mut Criterion) {
    let preset = mini(4, 8);
    let mut group = c.benchmark_group("fig10_fig12_bcast");
    group.sample_size(20);
    let han = Han::with_config(HanConfig::default().with_fs(128 * 1024));
    let stacks: Vec<(&str, &dyn MpiStack)> = vec![("han", &han), ("tuned", &TunedOpenMpi)];
    let cray = VendorMpi::cray();
    let mut stacks = stacks;
    stacks.push(("cray", &cray));
    for (name, stack) in stacks {
        for bytes in [64 * 1024u64, 4 << 20] {
            let mut machine = Machine::from_preset(&preset);
            group.bench_with_input(BenchmarkId::new(name, bytes), &bytes, |b, &bytes| {
                b.iter(|| {
                    black_box(time_coll_on(
                        stack,
                        &mut machine,
                        &preset,
                        Coll::Bcast,
                        bytes,
                        0,
                    ))
                })
            });
        }
    }
    group.finish();
}

/// Fig. 13/14 family: allreduce across stacks.
fn bench_allreduce_stacks(c: &mut Criterion) {
    let preset = mini(4, 8);
    let mut group = c.benchmark_group("fig13_fig14_allreduce");
    group.sample_size(20);
    let han = Han::with_config(
        HanConfig::default()
            .with_fs(512 * 1024)
            .with_intra(han_colls::IntraModule::Solo),
    );
    let mvapich = VendorMpi::mvapich2();
    let stacks: Vec<(&str, &dyn MpiStack)> = vec![
        ("han", &han),
        ("tuned", &TunedOpenMpi),
        ("mvapich2", &mvapich),
    ];
    for (name, stack) in stacks {
        let mut machine = Machine::from_preset(&preset);
        group.bench_function(BenchmarkId::new(name, 4 << 20), |b| {
            b.iter(|| {
                black_box(time_coll_on(
                    stack,
                    &mut machine,
                    &preset,
                    Coll::Allreduce,
                    4 << 20,
                    0,
                ))
            })
        });
    }
    group.finish();
}

/// Engine microbenchmarks: program build vs execute split.
fn bench_engine(c: &mut Criterion) {
    let preset = mini(8, 8);
    let han = Han::with_config(HanConfig::default().with_fs(256 * 1024));
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("build_bcast_4M", |b| {
        b.iter(|| black_box(build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0)))
    });
    let prog = build_coll(&han, &preset, Coll::Bcast, 4 << 20, 0).expect("bcast");
    let mut machine = Machine::from_preset(&preset);
    let opts = ExecOpts::timing(han_machine::Flavor::OpenMpi.p2p());
    group.throughput(criterion::Throughput::Elements(prog.len() as u64));
    group.bench_function("execute_bcast_4M_ops", |b| {
        b.iter(|| black_box(execute(&mut machine, &prog, &opts).makespan))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bcast_stacks,
    bench_allreduce_stacks,
    bench_engine
);
criterion_main!(benches);
