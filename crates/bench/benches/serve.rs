//! The tuning-service benchmark: sustained lookup throughput and tail
//! latency of the `han-serve` daemon as a decision cache sees it.
//!
//! Three tables (mini / mini3 / dgx-like) are tuned and published, then:
//!
//! * **throughput** — several client threads hammer the daemon with
//!   batched queries over a pseudo-random size stream; the bucket cache
//!   turns almost all of them into local answers, so the figure of
//!   merit is end-to-end lookups per second across all clients. Halfway
//!   through, a re-tuned table hot-swaps in under one fingerprint, so
//!   the number includes a generation flush.
//! * **latency** — one client issues single-query lookups and records
//!   per-call wall time; the report keeps the p50/p99 of the steady
//!   state (cache warm, occasional server round-trips).
//!
//! Results land in `BENCH_serve.json` as `[name, value]` pairs.

use han_decide::preset_fingerprint;
use han_machine::{dgx_like, mini, mini3};
use han_serve::{serve, tune_table, Client, Query, TableStore, SERVE_COLLS};
use std::sync::Arc;
use std::time::Instant;

const CLIENT_THREADS: usize = 4;
const BATCH: usize = 256;
const BATCHES_PER_THREAD: usize = 1500;
const LATENCY_SAMPLES: usize = 100_000;

/// Deterministic size stream (xorshift64*), no external RNG.
struct Sizes(u64);

impl Sizes {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A message size in [1, 64 MiB), log-uniform-ish.
    fn size(&mut self) -> u64 {
        let bits = 1 + self.next() % 26;
        1 + self.next() % (1u64 << bits)
    }
}

fn main() {
    let presets = [mini(4, 4), mini3(2, 2, 2), dgx_like(2, 4)];
    let t0 = Instant::now();
    let tables: Vec<_> = presets.iter().map(tune_table).collect();
    let fingerprints: Vec<u64> = presets.iter().map(preset_fingerprint).collect();
    println!(
        "[serve] tuned {} tables in {:.2}s",
        tables.len(),
        t0.elapsed().as_secs_f64()
    );

    let store = Arc::new(TableStore::new());
    for (fp, table) in fingerprints.iter().zip(&tables) {
        store.publish(*fp, table.clone());
    }
    let mut server = serve("127.0.0.1:0", Arc::clone(&store)).expect("bind");
    let addr = server.addr();

    // --- Throughput: CLIENT_THREADS caching clients, batched queries. ---
    let t0 = Instant::now();
    let swap_at = BATCHES_PER_THREAD / 2;
    let workers: Vec<_> = (0..CLIENT_THREADS)
        .map(|w| {
            let fingerprints = fingerprints.clone();
            let store = Arc::clone(&store);
            let table_v2 = tables[0].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut sizes = Sizes(0x9e3779b97f4a7c15 ^ (w as u64 + 1));
                let mut lookups = 0u64;
                for batch in 0..BATCHES_PER_THREAD {
                    if batch == swap_at && w == 0 {
                        // Hot-swap a re-tuned table mid-run; every client
                        // takes a generation flush on its next miss.
                        store.publish(fingerprints[0], table_v2.clone());
                    }
                    let queries: Vec<Query> = (0..BATCH)
                        .map(|_| Query {
                            fingerprint: fingerprints[(sizes.next() % 3) as usize],
                            coll: SERVE_COLLS[(sizes.next() % 3) as usize],
                            m: sizes.size(),
                        })
                        .collect();
                    let answers = client.resolve_batch(&queries).expect("resolve");
                    lookups += answers.len() as u64;
                }
                (lookups, client.hits(), client.misses())
            })
        })
        .collect();
    let mut lookups = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for worker in workers {
        let (l, h, m) = worker.join().expect("worker");
        lookups += l;
        hits += h;
        misses += m;
    }
    let throughput_s = t0.elapsed().as_secs_f64();
    let lookups_per_sec = lookups as f64 / throughput_s;
    let client_cache_hit_rate = hits as f64 / (hits + misses).max(1) as f64;

    // --- Latency: single client, single-query calls, steady state. ---
    let mut client = Client::connect(addr).expect("connect");
    let mut sizes = Sizes(0xdeadbeefcafef00d);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(LATENCY_SAMPLES);
    for _ in 0..LATENCY_SAMPLES {
        let q = Query {
            fingerprint: fingerprints[(sizes.next() % 3) as usize],
            coll: SERVE_COLLS[(sizes.next() % 3) as usize],
            m: sizes.size(),
        };
        let t = Instant::now();
        client.resolve(q).expect("resolve");
        lat_ns.push(t.elapsed().as_nanos() as u64);
    }
    lat_ns.sort_unstable();
    let p50_us = lat_ns[LATENCY_SAMPLES / 2] as f64 / 1e3;
    let p99_us = lat_ns[LATENCY_SAMPLES * 99 / 100] as f64 / 1e3;

    let stats = client.server_stats().expect("stats");
    server.shutdown();

    let rows: Vec<(String, f64)> = vec![
        ("lookups_per_sec".into(), lookups_per_sec),
        ("throughput_wall_s".into(), throughput_s),
        ("client_cache_hit_rate".into(), client_cache_hit_rate),
        ("p50_us".into(), p50_us),
        ("p99_us".into(), p99_us),
        ("client_threads".into(), CLIENT_THREADS as f64),
        ("server_batches".into(), stats.batches as f64),
        ("server_lookups".into(), stats.lookups as f64),
        ("tables_served".into(), stats.tables as f64),
    ];
    // cargo runs benches with cwd = the package dir; anchor the report at
    // the workspace root where the other results live.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(text) => {
            if let Err(e) = std::fs::write(out, text) {
                eprintln!("[serve] could not write BENCH_serve.json: {e}");
            } else {
                println!(
                    "[serve] {:.2}M lookups/s across {CLIENT_THREADS} clients \
                     (hit rate {:.4}), p50 {p50_us:.2}us p99 {p99_us:.2}us \
                     -> BENCH_serve.json",
                    lookups_per_sec / 1e6,
                    client_cache_hit_rate,
                );
            }
        }
        Err(e) => eprintln!("[serve] could not serialize results: {e}"),
    }
}
