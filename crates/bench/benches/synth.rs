//! The schedule-synthesis benchmark: search throughput and search
//! quality of `han-synth` on the standard small presets.
//!
//! Three machines (mini / mini3 / dgx-like) run the full synthesis —
//! bound-guided search over the Table-II menu plus the beyond-menu axes
//! (decoupled trees, explicit sub-segmentation, segment routing,
//! non-pow2 splits) — and the report captures:
//!
//! * **synth_candidates_per_sec** — end-to-end search throughput:
//!   candidates *disposed of* (simulated or bound-pruned) per wall
//!   second, across all presets. The bound prune and delta
//!   re-simulation both push this number up; regressions in either show
//!   here first.
//! * **synth_win_ratio** — the fraction of `(preset, coll, m)` groups
//!   whose synthesized winner strictly beats the best Table-II menu
//!   schedule — the headline "was the search worth it" number.
//! * **pareto_points** — total emitted front points; a collapsing front
//!   means the latency/bandwidth trade-off stopped being explored.
//!
//! Results land in `BENCH_synth.json` as `[name, value]` pairs.

use han_colls::Coll;
use han_machine::{dgx_like, mini, mini3};
use han_synth::{default_space, synthesize, SynthOpts};
use std::time::Instant;

fn main() {
    let presets = [mini(4, 4), mini3(2, 2, 2), dgx_like(2, 4)];
    let colls = [Coll::Bcast, Coll::Allreduce, Coll::Reduce];
    let space = default_space();

    let t0 = Instant::now();
    let results: Vec<_> = presets
        .iter()
        .map(|p| synthesize(p, &space, &colls, SynthOpts::default()))
        .collect();
    let wall_s = t0.elapsed().as_secs_f64();

    let groups: usize = results.iter().map(|r| r.fronts.len()).sum();
    let wins: usize = results.iter().map(|r| r.strict_wins()).sum();
    let pareto_points: usize = results
        .iter()
        .map(|r| r.fronts.iter().map(|f| f.points.len()).sum::<usize>())
        .sum();
    let candidates: u64 = results.iter().map(|r| r.candidates).sum();
    let simulated: u64 = results.iter().map(|r| r.simulated).sum();
    let pruned: u64 = results.iter().map(|r| r.pruned).sum();
    let disposed = simulated + pruned;
    let synth_candidates_per_sec = disposed as f64 / wall_s.max(1e-9);
    let synth_win_ratio = wins as f64 / groups.max(1) as f64;

    let rows: Vec<(String, f64)> = vec![
        ("synth_candidates_per_sec".into(), synth_candidates_per_sec),
        ("synth_win_ratio".into(), synth_win_ratio),
        ("pareto_points".into(), pareto_points as f64),
        ("groups".into(), groups as f64),
        ("strict_wins".into(), wins as f64),
        ("candidates".into(), candidates as f64),
        ("simulated".into(), simulated as f64),
        ("pruned".into(), pruned as f64),
        ("wall_s".into(), wall_s),
    ];
    // cargo runs benches with cwd = the package dir; anchor the report at
    // the workspace root where the other results live.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(text) => {
            if let Err(e) = std::fs::write(out, text) {
                eprintln!("[synth] could not write BENCH_synth.json: {e}");
            } else {
                println!(
                    "[synth] {disposed} candidates disposed in {wall_s:.2}s \
                     ({synth_candidates_per_sec:.0}/s), win ratio {synth_win_ratio:.2} \
                     over {groups} groups, {pareto_points} pareto points \
                     -> BENCH_synth.json"
                );
            }
        }
        Err(e) => eprintln!("[synth] could not serialize results: {e}"),
    }
}
