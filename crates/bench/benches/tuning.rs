//! Criterion benches for the autotuning paths (the Fig. 8 cost structure,
//! measured in wall-clock simulation time at mini scale): one whole-
//! collective exhaustive probe vs one task-benchmark probe vs a cached
//! model prediction, plus the Netpipe (Fig. 11) and application probes
//! (Table III / Fig. 15).

use criterion::{criterion_group, criterion_main, Criterion};
use han_bench::netpipe::ping_pong;
use han_colls::stack::{time_coll_on, Coll};
use han_colls::TunedOpenMpi;
use han_core::task::TaskSpec;
use han_core::{Han, HanConfig};
use han_machine::{mini, Flavor, Machine};
use han_tuner::TaskBench;
use std::hint::black_box;

fn bench_tuning_probes(c: &mut Criterion) {
    let preset = mini(4, 8);
    let cfg = HanConfig::default().with_fs(256 * 1024);
    let mut group = c.benchmark_group("fig8_tuning_probes");
    group.sample_size(20);

    // One exhaustive probe: simulate the whole collective.
    let han = Han::with_config(cfg);
    let mut machine = Machine::from_preset(&preset);
    group.bench_function("exhaustive_probe_4M", |b| {
        b.iter(|| {
            black_box(time_coll_on(
                &han,
                &mut machine,
                &preset,
                Coll::Bcast,
                4 << 20,
                0,
            ))
        })
    });

    // One task probe: simulate a single sbib task (fresh bench each time
    // so the cache cannot short-circuit the measurement).
    group.bench_function("task_probe_sbib", |b| {
        b.iter(|| {
            let mut tb = TaskBench::new(&preset);
            black_box(tb.first_cost(&cfg, TaskSpec::SBIB, cfg.fs))
        })
    });

    // Model prediction with a warm cache: this is what scanning a new
    // message size costs the task-based tuner — effectively nothing.
    let mut tb = TaskBench::new(&preset);
    han_tuner::model::predict(&mut tb, &cfg, Coll::Bcast, 4 << 20).expect("modelled");
    group.bench_function("model_predict_cached", |b| {
        b.iter(|| {
            black_box(han_tuner::model::predict(
                &mut tb,
                &cfg,
                Coll::Bcast,
                8 << 20,
            ))
        })
    });
    group.finish();
}

fn bench_netpipe(c: &mut Criterion) {
    let preset = mini(2, 2);
    let mut group = c.benchmark_group("fig11_netpipe");
    group.sample_size(30);
    group.bench_function("ping_pong_1M", |b| {
        b.iter(|| black_box(ping_pong(&preset, Flavor::OpenMpi, 1 << 20)))
    });
    group.finish();
}

fn bench_apps(c: &mut Criterion) {
    let preset = mini(2, 4);
    let mut group = c.benchmark_group("table3_fig15_apps");
    group.sample_size(10);
    group.bench_function("asp_iteration", |b| {
        let cfg = han_apps::AspConfig {
            vertices: 1024,
            flops: 1e9,
            iterations: Some(1),
        };
        b.iter(|| black_box(han_apps::run_asp(&TunedOpenMpi, &preset, &cfg)))
    });
    group.bench_function("horovod_step", |b| {
        let cfg = han_apps::HorovodConfig {
            grad_bytes: 4 << 20,
            fusion_bytes: 4 << 20,
            time_per_image: han_sim::Time::from_ms(10),
            batch_per_rank: 2,
        };
        b.iter(|| black_box(han_apps::run_horovod(&TunedOpenMpi, &preset, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_tuning_probes, bench_netpipe, bench_apps);
criterion_main!(benches);
